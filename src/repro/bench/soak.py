"""``repro soak``: a seeded replay workload that emits trend artifacts.

The serving smoke proves one burst of traffic works; the soak proves
the *temporal* story: seeded skewed/bursty clients drive one
:class:`~repro.serve.service.QueryService` for N wall-clock seconds
with the whole observability stack live — time-series sampler, SLO
alert evaluation, sampling profiler, slow-query log — and the run is
summarized into a ``BENCH_soak.json`` artifact with time-bucketed
p50/p95/p99 latency, throughput, cache behavior, the alert transition
log and the profiler's attribution statistics.

Workload shape (all randomness comes from one seeded ``Random``, so a
rerun with the same seed replays the same request schedule):

- each client loops until the deadline, picking the paper's Query 1/2/3
  with skewed weights (hot query dominates, like a real dashboard);
- think times are drawn per request, with occasional zero-think
  *bursts* so admission and queueing see pressure spikes;
- a churn writer periodically overwrites one cell, invalidating the
  result cache so engine misses (and their spans, WAL fsyncs and chunk
  traffic) keep flowing — a soak that serves 100% cache hits after the
  first second would measure nothing but the cache.

``inject_breach=True`` demonstrates the alert lifecycle end to end: at
40% of the run an intentionally-impossible SLO rule (engine p50 above
zero) is installed and one cell write forces cache misses, so the rule
fires; once the result cache repopulates the rule's window drains and
it resolves.  The artifact must then show *exactly one* firing→resolved
cycle for the injected rule — and zero transitions for every default
rule, which is also the healthy-path assertion CI's soak-smoke makes.
"""

from __future__ import annotations

import json
import tempfile
import threading
import time

from repro.bench.harness import (
    _percentile,
    bench_settings,
    build_cube_engine,
    query1_for,
    query2_for,
    query3_for,
)
from repro.data.datasets import dataset1
from repro.data.generator import generate_fact_rows

#: the deliberately-unsatisfiable rule ``inject_breach`` installs
INJECTED_RULE = "soak-injected-latency"

#: skewed pick weights for Query 1 / Query 2 / Query 3
_QUERY_WEIGHTS = (0.6, 0.3, 0.1)

#: one request in ``_BURST_EVERY`` starts a zero-think burst this long
_BURST_LENGTH = 5
_BURST_EVERY = 12


def _bucketize(
    events: list[tuple[float, float, bool]], bucket_s: float, seconds: float
) -> list[dict]:
    """Time-bucketed latency/throughput rows from (t, latency, hit)."""
    n_buckets = max(1, int(seconds / bucket_s + 0.999))
    grouped: list[list[tuple[float, bool]]] = [[] for _ in range(n_buckets)]
    for t, latency, hit in events:
        index = min(n_buckets - 1, int(t / bucket_s))
        grouped[index].append((latency, hit))
    buckets = []
    for index, group in enumerate(grouped):
        latencies = sorted(latency for latency, _ in group)
        hits = sum(1 for _, hit in group if hit)
        buckets.append(
            {
                "t_s": index * bucket_s,
                "count": len(group),
                "qps": len(group) / bucket_s,
                "p50_s": _percentile(latencies, 0.50),
                "p95_s": _percentile(latencies, 0.95),
                "p99_s": _percentile(latencies, 0.99),
                "hit_rate": hits / len(group) if group else 0.0,
            }
        )
    return buckets


def run_soak(
    scale: str | None = None,
    seconds: float = 10.0,
    seed: int = 0,
    clients: int = 4,
    bucket_s: float = 1.0,
    inject_breach: bool = False,
    sample_interval_s: float = 0.25,
    churn_every_s: float = 2.0,
    shards: int = 1,
    executor: str = "local",
    memory_budget: int = 0,
) -> dict:
    """Run the soak; returns the ``BENCH_soak.json`` payload.

    ``failures`` in the returned dict is empty on success; the CLI (and
    CI's soak-smoke) exits non-zero when it is not.  ``shards > 1``
    scatters every engine miss over ``shards`` chunk-range shards on the
    given ``executor`` — the churn writer keeps misses flowing, so a
    sharded soak exercises scatter/gather under sustained concurrent
    traffic and the artifact's ``shard_counters`` must show it.

    ``memory_budget > 0`` enforces a resident-set budget via the
    service's :class:`~repro.obs.memory.MemoryAccountant`; the recorded
    ``memory`` trajectory (one enforce-then-read sample per bucket) is
    gated so no sample may exceed the budget.
    """
    import random

    from repro.obs.alerts import SloRule
    from repro.obs.tracer import Tracer, thread_tracing
    from repro.serve import QueryService, ServiceConfig

    settings = bench_settings(scale)
    config = dataset1(settings.scale)[1]  # the x100 cube
    queries = [query1_for(config), query2_for(config), query3_for(config)]
    failures: list[str] = []
    events: list[tuple[float, float, bool]] = []  # (t_rel, latency_s, hit)
    events_lock = threading.Lock()
    rng = random.Random(seed)
    # per-client generators seeded up front so the schedule replays no
    # matter how threads interleave
    client_rngs = [
        random.Random(rng.randrange(2**31)) for _ in range(clients)
    ]

    with tempfile.TemporaryDirectory(prefix="repro-soak-") as wal_dir:
        engine = build_cube_engine(config, settings, wal_dir=wal_dir)
        if shards > 1:
            # pay the one-time scatter setup (worker-pool spawn, volume
            # image save) before the service starts its profiler and
            # TSDB sampler: that cost is deployment, not workload, and
            # would otherwise land in the serve p99 SLO window and the
            # profiler's unattributed busy samples
            engine.query(
                queries[0], backend="array", shards=shards, executor=executor
            )
        write_row = next(iter(generate_fact_rows(config)))
        write_keys = tuple(write_row[: config.ndim])
        write_measures = tuple(write_row[config.ndim :])
        service = QueryService(
            engine,
            ServiceConfig(
                max_workers=clients,
                max_in_flight=4 * clients * len(queries),
                slowlog_threshold_s=0.0,  # profile everything
                timeseries_interval_s=sample_interval_s,
                profile_sampling_s=0.005,
                shards=shards,
                executor=executor,
                memory_budget_bytes=memory_budget,
            ),
        )
        start = time.monotonic()
        deadline = start + seconds
        inject_at = start + 0.4 * seconds
        stop_churn = threading.Event()
        stop_mem = threading.Event()
        writes = 0
        memory_track: list[dict] = []
        memory_lock = threading.Lock()

        def sample_memory() -> None:
            # enforce-then-read: each trajectory point proves the budget
            # held at that instant, not merely that a reclaim happened
            snap = service.memory.sample("soak")
            point = {"t_s": round(time.monotonic() - start, 3), **snap}
            with memory_lock:
                memory_track.append(point)

        def memory_sampler() -> None:
            while not stop_mem.wait(bucket_s):
                sample_memory()

        def client(index: int) -> None:
            crng = client_rngs[index]
            tracer = Tracer()
            burst_left = 0
            # think via an Event wait, not time.sleep: a C-level sleep
            # has no Python frame, so the profiler would blame the
            # caller as busy; a parked Event wait classifies as idle
            pause = threading.Event()
            with thread_tracing(tracer):
                while time.monotonic() < deadline:
                    pick = crng.random()
                    if pick < _QUERY_WEIGHTS[0]:
                        query = queries[0]
                    elif pick < _QUERY_WEIGHTS[0] + _QUERY_WEIGHTS[1]:
                        query = queries[1]
                    else:
                        query = queries[2]
                    issued = time.monotonic()
                    with tracer.span("soak_client", client=index):
                        try:
                            result = service.execute(query)
                        except Exception:
                            # admission pressure / degraded windows are
                            # workload data, not harness errors
                            result = None
                    latency = time.monotonic() - issued
                    hit = bool(
                        result is not None
                        and result.stats.get("result_cache_hit")
                    )
                    with events_lock:
                        events.append((issued - start, latency, hit))
                    if burst_left > 0:
                        burst_left -= 1
                        continue  # zero think time inside a burst
                    if crng.randrange(_BURST_EVERY) == 0:
                        burst_left = _BURST_LENGTH
                        continue
                    pause.wait(crng.uniform(0.0, 0.02))

        def churn() -> None:
            # periodic cell overwrites keep engine misses (and their
            # spans) flowing; stops before the injection so the
            # injected rule's single firing cannot flap
            nonlocal writes
            while not stop_churn.wait(churn_every_s):
                if inject_breach and time.monotonic() >= inject_at:
                    return
                if time.monotonic() >= deadline:
                    return
                tracer = Tracer()
                with thread_tracing(tracer), tracer.span("soak_churn"):
                    service.write_cell(
                        config.name, write_keys, write_measures
                    )
                writes += 1

        try:
            threads = [
                threading.Thread(
                    target=client, args=(i,), name=f"soak-client-{i}"
                )
                for i in range(clients)
            ]
            writer = threading.Thread(
                target=churn, name="soak-churn", daemon=True
            )
            # "repro-obs" prefix: the profiler excludes observability
            # machinery threads, and budget enforcement is exactly that
            mem_thread = threading.Thread(
                target=memory_sampler, name="repro-obs-soak-mem", daemon=True
            )
            for thread in threads:
                thread.start()
            writer.start()
            mem_thread.start()
            if inject_breach:
                threading.Event().wait(
                    max(0.0, inject_at - time.monotonic())
                )
                # impossible ceiling: the very next engine observation
                # breaches it; installed only now, after warmup, so the
                # cold-start misses cannot fire it early
                service.alerts.add_rule(
                    SloRule(
                        name=INJECTED_RULE,
                        kind="latency_quantile_ceiling",
                        description="soak-injected breach (must fire "
                        "exactly once and resolve)",
                        severity="test",
                        metric="engine.query_seconds",
                        quantile=0.5,
                        ceiling=0.0,
                        window_s=max(2.0, 0.2 * seconds),
                        min_count=1,
                    )
                )
                tracer = Tracer()
                with thread_tracing(tracer), tracer.span("soak_churn"):
                    service.write_cell(
                        config.name, write_keys, write_measures
                    )
                writes += 1
            for thread in threads:
                thread.join()
            stop_churn.set()
            stop_mem.set()
            writer.join(timeout=5)
            mem_thread.join(timeout=5)
            sample_memory()  # the drained end-state closes the trajectory
            # a final tick so the artifact reflects the drained state
            # (the injected rule's window must have emptied by now)
            point = service.timeseries.sample()
            service.alerts.evaluate(point)
            payload = _summarize(
                service, settings, config, events, failures,
                seconds=seconds, seed=seed, clients=clients,
                bucket_s=bucket_s, inject_breach=inject_breach,
                writes=writes, shards=shards, executor=executor,
                memory_budget=memory_budget, memory_track=memory_track,
            )
        finally:
            stop_churn.set()
            stop_mem.set()
            service.close()
    return payload


def _summarize(
    service, settings, config, events, failures, *, seconds, seed,
    clients, bucket_s, inject_breach, writes, shards, executor,
    memory_budget, memory_track,
) -> dict:
    buckets = _bucketize(events, bucket_s, seconds)
    latencies = sorted(latency for _, latency, _ in events)
    hits = sum(1 for _, _, hit in events if hit)
    alert_events = service.alerts.events()
    unexpected = sorted(
        {e["rule"] for e in alert_events if e["rule"] != INJECTED_RULE}
    )
    injected = None
    if inject_breach:
        cycle = [e for e in alert_events if e["rule"] == INJECTED_RULE]
        injected = {
            "rule": INJECTED_RULE,
            "firings": service.alerts.firings(INJECTED_RULE),
            "resolved": bool(cycle) and cycle[-1]["state"] == "resolved",
            "transitions": [e["state"] for e in cycle],
        }
    profile = service.profiler.stats()
    shard_totals = (
        service.engine.shard_coordinator.counters.snapshot()
        if shards > 1
        else {}
    )
    payload = {
        "scale": settings.scale,
        "cube": config.name,
        "seconds": seconds,
        "seed": seed,
        "clients": clients,
        "shards": shards,
        "executor": executor,
        "shard_counters": {
            name: value for name, value in sorted(shard_totals.items())
        },
        "bucket_s": bucket_s,
        "queries": len(events),
        "writes": writes,
        "hit_rate": hits / len(events) if events else 0.0,
        "latency": {
            "p50_s": _percentile(latencies, 0.50),
            "p95_s": _percentile(latencies, 0.95),
            "p99_s": _percentile(latencies, 0.99),
            "p95_exemplar": _latency_exemplar(service, 0.95),
        },
        "buckets": buckets,
        "timeseries": {
            "samples_taken": service.timeseries.samples_taken,
            "metrics": len(service.timeseries.metric_names()),
        },
        "alerts": {
            "evaluations": service.alerts.evaluations,
            "events": alert_events,
            "firing_at_end": service.alerts.firing(),
            "unexpected_rules": unexpected,
            "injected": injected,
        },
        "profiler": {
            **profile,
            "hottest": [
                {"stack": stack, "samples": count}
                for stack, count in service.profiler.hottest(10)
            ],
        },
        "slowlog_entries": len(service.slowlog),
        "memory": _memory_section(service, memory_budget, memory_track),
        "failures": failures,
    }
    _gate(payload, failures)
    return payload


def _memory_section(service, memory_budget, memory_track) -> dict:
    """The artifact's resident-set trajectory block."""
    counters = service.memory.counters.snapshot()
    return {
        "budget_bytes": int(memory_budget),
        "high_water_bytes": max(
            (int(s["total_resident_bytes"]) for s in memory_track),
            default=0,
        ),
        "pressure_events": counters.get("memory.pressure_events", 0.0),
        "reclaimed_bytes": counters.get("memory.reclaimed_bytes", 0.0),
        "samples": memory_track,
    }


def _latency_exemplar(service, q: float) -> dict | None:
    """The trace linked to the ``q``-quantile latency bucket, so the
    artifact's headline percentile points at a concrete, inspectable
    query (``repro trace --id <trace_id>``)."""
    histogram = service._histograms.get("serve.query_latency_seconds")
    if histogram is None:
        return None
    exemplar = histogram.exemplar_for_quantile(q)
    if exemplar is None:
        return None
    trace_id, value = exemplar
    return {"trace_id": trace_id, "value_s": value}


def _gate(payload: dict, failures: list[str]) -> None:
    """The soak's own acceptance checks; appends into ``failures``."""
    if not payload["queries"]:
        failures.append("workload issued no queries")
    if payload.get("shards", 1) > 1 and not payload.get(
        "shard_counters", {}
    ).get("shard.queries"):
        failures.append(
            f"shards={payload['shards']} but no engine miss went "
            "through the shard coordinator"
        )
    populated = [b for b in payload["buckets"] if b["count"] > 0]
    if not populated:
        failures.append("no time bucket saw traffic (p95 series empty)")
    if payload["timeseries"]["samples_taken"] < 4:
        failures.append(
            "time-series store took fewer than 4 samples "
            f"({payload['timeseries']['samples_taken']})"
        )
    if payload["alerts"]["unexpected_rules"]:
        failures.append(
            "unexpected alert transitions on the healthy path: "
            + ", ".join(payload["alerts"]["unexpected_rules"])
        )
    injected = payload["alerts"]["injected"]
    if injected is not None:
        if injected["firings"] != 1:
            failures.append(
                f"injected rule fired {injected['firings']} times "
                "(expected exactly 1)"
            )
        if not injected["resolved"]:
            failures.append("injected rule never resolved")
        if injected["transitions"] != ["firing", "resolved"]:
            failures.append(
                "injected rule transitions "
                f"{injected['transitions']} != ['firing', 'resolved']"
            )
    profiler = payload["profiler"]
    busy = profiler["span_samples"] + profiler["other_samples"]
    if busy >= 20 and profiler["attributed_fraction"] < 0.8:
        failures.append(
            f"profiler attributed only "
            f"{profiler['attributed_fraction']:.0%} of busy samples "
            "to named spans (floor 80%)"
        )
    memory = payload.get("memory")
    if memory and memory["budget_bytes"] > 0:
        over = [
            s
            for s in memory["samples"]
            if s["total_resident_bytes"] > memory["budget_bytes"]
        ]
        if over:
            worst = max(s["total_resident_bytes"] for s in over)
            failures.append(
                f"memory trajectory exceeded the "
                f"{memory['budget_bytes']}-byte budget in {len(over)} of "
                f"{len(memory['samples'])} samples (high water {worst})"
            )
        if not memory["samples"]:
            failures.append(
                "memory budget set but no trajectory sample recorded"
            )


def write_soak_artifact(payload: dict, path: str) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
