"""Experiment harness: builds workloads, runs cold queries, renders tables."""

from repro.bench.harness import (
    BenchSettings,
    ConcurrentReport,
    WarmReport,
    aggregate_stats,
    bench_settings,
    build_cube_engine,
    query1_for,
    query2_for,
    query3_for,
    run_cold,
    run_cold_traced,
    run_concurrent,
    run_warm,
)
from repro.bench.report import ExperimentTable, results_dir, write_trace

__all__ = [
    "BenchSettings",
    "ConcurrentReport",
    "WarmReport",
    "aggregate_stats",
    "bench_settings",
    "build_cube_engine",
    "query1_for",
    "query2_for",
    "query3_for",
    "run_cold",
    "run_cold_traced",
    "run_concurrent",
    "run_warm",
    "ExperimentTable",
    "results_dir",
    "write_trace",
]
