"""Experiment harness: builds workloads, runs cold queries, renders tables."""

from repro.bench.harness import (
    BenchSettings,
    bench_settings,
    build_cube_engine,
    query1_for,
    query2_for,
    query3_for,
    run_cold,
)
from repro.bench.report import ExperimentTable, results_dir

__all__ = [
    "BenchSettings",
    "bench_settings",
    "build_cube_engine",
    "query1_for",
    "query2_for",
    "query3_for",
    "run_cold",
    "ExperimentTable",
    "results_dir",
]
