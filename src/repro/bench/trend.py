"""``repro bench-trend``: the latency trajectory across archived runs.

``bench-smoke`` archives every run as a timestamped artifact under
``benchmarks/results/``; ``bench-diff`` compares exactly two of them.
This module walks the whole archive instead, grouping artifacts by
scale (cross-scale latencies are not comparable) and rendering each
scale's concurrent p50/p95 trajectory oldest-to-newest with a sparkline
— the long-run answer to "is serving getting slower?".

The gate compares the newest run's p95 against the *median* of every
earlier run at the same scale: a single noisy historical run cannot
poison the baseline the way bench-diff's newest-previous pairing can.
Scales with fewer than two artifacts render without gating.
"""

from __future__ import annotations

import json
import os

#: eight-level sparkline ramp, lowest to highest
_SPARKS = "▁▂▃▄▅▆▇█"

#: p95 windows narrower than this are noise, not signal (matches
#: repro.bench.diff.MIN_COMPARABLE_S)
_MIN_COMPARABLE_S = 1e-6


def load_trend(
    results_dir: str, notes: list[str] | None = None
) -> dict[str, list[dict]]:
    """Archived artifacts grouped by scale, oldest first (by mtime).

    Each entry keeps the file name, the concurrent p50/p95/p99, the hit
    rate and the shard count; unreadable or shapeless files are skipped
    (an interrupted CI upload must not wedge the trend forever).  Pass
    ``notes`` to collect one line per skipped file and per legacy
    artifact predating the shard-aware keys — old archives stay in the
    trend as 1-shard runs instead of raising ``KeyError``.
    """
    if not os.path.isdir(results_dir):
        return {}
    paths = [
        os.path.join(results_dir, name)
        for name in os.listdir(results_dir)
        if name.startswith("BENCH_serving.") and name.endswith(".json")
    ]
    paths.sort(key=os.path.getmtime)
    by_scale: dict[str, list[dict]] = {}
    for path in paths:
        try:
            with open(path, encoding="utf-8") as handle:
                payload = json.load(handle)
            concurrent = payload["concurrent"]
            entry = {
                "file": os.path.basename(path),
                "scale": payload.get("scale", "unknown"),
                "p50_s": float(concurrent["p50_s"]),
                "p95_s": float(concurrent["p95_s"]),
                "p99_s": float(concurrent["p99_s"]),
                "hit_rate": float(concurrent["hit_rate"]),
                "shards": int(payload.get("shards", 1)),
                "resident_bytes": int(
                    (payload.get("memory") or {}).get(
                        "total_resident_bytes", 0
                    )
                ),
            }
        except (OSError, ValueError, KeyError, TypeError) as exc:
            if notes is not None:
                notes.append(
                    f"skipped {os.path.basename(path)}: "
                    f"{type(exc).__name__}: {exc}"
                )
            continue
        if "shards" not in payload or "shard_counters" not in payload:
            if notes is not None:
                notes.append(
                    f"{os.path.basename(path)}: predates shard-aware "
                    "artifacts (no 'shards'/'shard_counters' keys); "
                    "treated as a 1-shard run"
                )
        if "memory" not in payload:
            if notes is not None:
                notes.append(
                    f"{os.path.basename(path)}: predates memory "
                    "accounting (no 'memory' key); resident bytes "
                    "reported as 0"
                )
        by_scale.setdefault(entry["scale"], []).append(entry)
    return by_scale


def sparkline(values: list[float], width: int = 0) -> str:
    """A one-line trend of ``values`` (most recent last)."""
    if not values:
        return ""
    if width and len(values) > width:
        values = values[-width:]
    low, high = min(values), max(values)
    span = high - low
    if span <= 0:
        return _SPARKS[0] * len(values)
    return "".join(
        _SPARKS[min(len(_SPARKS) - 1, int((v - low) / span * len(_SPARKS)))]
        for v in values
    )


def gate_trend(
    entries: list[dict], max_p95_regress: float
) -> tuple[str, bool]:
    """``(verdict line, failed)`` for one scale's trajectory.

    Gates the newest p95 against the median of all earlier runs; below
    two entries (or a sub-microsecond baseline) there is nothing to
    gate and the verdict says so.
    """
    import statistics

    if len(entries) < 2:
        return "trend: fewer than 2 artifacts, nothing to gate", False
    baseline = statistics.median(e["p95_s"] for e in entries[:-1])
    candidate = entries[-1]["p95_s"]
    if baseline < _MIN_COMPARABLE_S:
        return (
            f"trend: baseline median p95 {baseline * 1e6:.3f}µs below "
            "comparison floor, nothing to gate",
            False,
        )
    ratio = candidate / baseline
    line = (
        f"trend: newest p95 {candidate * 1000:.3f}ms vs median of "
        f"{len(entries) - 1} earlier runs {baseline * 1000:.3f}ms "
        f"(x{ratio:.2f}, limit x{max_p95_regress:.2f})"
    )
    if ratio > max_p95_regress:
        return "FAIL " + line, True
    return "ok   " + line, False


def render_trend(
    by_scale: dict[str, list[dict]], max_p95_regress: float = 1.5
) -> tuple[str, bool]:
    """``(report text, any gate failed)`` over the whole archive."""
    if not by_scale:
        return "no archived artifacts found", False
    lines: list[str] = []
    failed = False
    for scale in sorted(by_scale):
        entries = by_scale[scale]
        lines.append(
            f"[{scale}] {len(entries)} archived run"
            f"{'s' if len(entries) != 1 else ''}"
        )
        lines.append(
            "  p95 " + sparkline([e["p95_s"] for e in entries], width=60)
        )
        for entry in entries:
            lines.append(
                f"  {entry['file']:<44} "
                f"p50={entry['p50_s'] * 1000:8.3f}ms "
                f"p95={entry['p95_s'] * 1000:8.3f}ms "
                f"hit={entry['hit_rate']:5.0%}"
            )
        verdict, scale_failed = gate_trend(entries, max_p95_regress)
        failed = failed or scale_failed
        lines.append("  " + verdict)
    return "\n".join(lines), failed
