"""Table rendering for the experiments.

Each benchmark module accumulates an :class:`ExperimentTable` — one row
per x-axis point, one column per algorithm series, cells holding the
cost metric (CPU seconds + simulated 1997 I/O seconds) — and writes it
to ``benchmarks/results/<experiment>.txt`` together with the paper's
expected shape, so EXPERIMENTS.md can quote paper-vs-measured directly.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from repro.obs.exporters import trace_to_json
from repro.obs.tracer import Span
from repro.olap.engine import QueryResult


def results_dir() -> str:
    """Directory for rendered experiment tables (created on demand)."""
    path = os.environ.get(
        "REPRO_RESULTS_DIR",
        os.path.join(os.path.dirname(__file__), "..", "..", "..", "benchmarks", "results"),
    )
    path = os.path.abspath(path)
    os.makedirs(path, exist_ok=True)
    return path


@dataclass
class _Point:
    cost_s: float
    elapsed_s: float
    sim_io_s: float
    rows: int
    stats: dict


@dataclass
class ExperimentTable:
    """Cost table for one figure/table of the paper."""

    experiment_id: str
    title: str
    x_label: str
    expected: str = ""
    _series: dict[str, dict[object, _Point]] = field(default_factory=dict)
    _x_order: list = field(default_factory=list)

    def add(self, series: str, x, result: QueryResult) -> None:
        """Record one measured point."""
        if x not in self._x_order:
            self._x_order.append(x)
        self._series.setdefault(series, {})[x] = _Point(
            cost_s=result.cost_s,
            elapsed_s=result.elapsed_s,
            sim_io_s=result.sim_io_s,
            rows=len(result.rows),
            stats=dict(result.stats),
        )

    def add_value(self, series: str, x, value: float) -> None:
        """Record a raw value (storage bytes, counts) instead of a query."""
        if x not in self._x_order:
            self._x_order.append(x)
        self._series.setdefault(series, {})[x] = _Point(
            cost_s=value, elapsed_s=0.0, sim_io_s=0.0, rows=0, stats={}
        )

    def value(self, series: str, x) -> float:
        """Recorded cost for one cell (for assertions)."""
        return self._series[series][x].cost_s

    def series_names(self) -> list[str]:
        return list(self._series)

    def render(self) -> str:
        """Format the table as aligned text."""
        names = self.series_names()
        header = [self.x_label] + names
        rows = []
        for x in self._x_order:
            row = [str(x)]
            for name in names:
                point = self._series[name].get(x)
                row.append("-" if point is None else f"{point.cost_s:.4f}")
            rows.append(row)
        widths = [
            max(len(str(r[i])) for r in [header] + rows)
            for i in range(len(header))
        ]
        lines = [
            f"# {self.experiment_id}: {self.title}",
        ]
        if self.expected:
            lines.append(f"# paper expectation: {self.expected}")
        lines.append(
            "# cell metric: cost seconds = measured CPU + simulated 1997 I/O"
        )
        lines.append(
            "  ".join(h.ljust(w) for h, w in zip(header, widths))
        )
        lines.append("  ".join("-" * w for w in widths))
        for row in rows:
            lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
        return "\n".join(lines) + "\n"

    def save(self) -> str:
        """Write the rendered table; returns the file path."""
        path = os.path.join(results_dir(), f"{self.experiment_id}.txt")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.render())
        return path


def write_trace(experiment_id: str, spans: Span | list[Span]) -> str:
    """Write a span tree (or several) as a per-experiment trace artifact.

    The file lands next to the experiment's cost table as
    ``<experiment_id>.trace.json``; returns the file path.
    """
    if isinstance(spans, Span):
        spans = [spans]
    path = os.path.join(results_dir(), f"{experiment_id}.trace.json")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(trace_to_json(spans))
        handle.write("\n")
    return path
