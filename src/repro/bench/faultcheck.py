"""Crash-recovery property harness (``python -m repro faultcheck``).

The paper's systems inherited recovery from SHORE and never tested it;
our substrate proves its own.  For every registered crash point the
harness

1. builds a tiny cube on a :class:`~repro.storage.faults.FaultyDisk` +
   file-backed :class:`~repro.storage.faults.FaultyWAL` and checkpoints
   it (the baseline volume image),
2. runs a write workload — each transaction inserts one new cell — with
   a :class:`~repro.storage.crashpoints.FaultPlan` installed that
   "kills the process" at the crash point under test (a mid-workload
   checkpoint makes the checkpoint path itself crashable),
3. restarts: :meth:`Database.open
   <repro.relational.catalog.Database.open>` loads the checkpoint image
   and replays the WAL (tail-scanning away a torn final record), and
4. asserts the **committed-prefix property**: the surviving cells are
   exactly transactions ``0..k-1`` for some ``k`` at least the number
   of transactions confirmed before the crash (atomicity + durability),
   and every query result — array and star-join backends — equals a
   serial no-crash oracle with exactly those ``k`` transactions applied,
5. **aftershocks**: the recovered process finishes the workload, then
   crashes too, and a third recovery must equal the full-workload
   oracle — proving the survivor's commits never retroactively commit
   records the first crash orphaned past its last commit marker.

Everything is deterministic from the seed, so a failing scenario
replays bit-identically from its ``(crash_point, seed)`` pair.
"""

from __future__ import annotations

import os
import random
from dataclasses import dataclass, field

from repro.errors import SimulatedCrash
from repro.olap.engine import OlapEngine
from repro.olap.model import CubeSchema, DimensionDef, MeasureDef
from repro.olap.query import ConsolidationQuery
from repro.relational.catalog import Database
from repro.storage.crashpoints import (
    FaultPlan,
    fault_plan,
    registered_crash_points,
)
from repro.storage.faults import FaultyDisk, FaultyWAL

CUBE = "crashcube"
N_TXNS = 10
_PAGE_SIZE = 1024
_POOL_BYTES = 1024 * 256
_X_SIZE, _Y_SIZE = 6, 4

#: crash points whose scenario must surface a torn final WAL record
TORN_TAIL_POINTS = ("wal.torn_sync",)

#: points hit often enough to vary *which* occurrence crashes by seed,
#: so the crash lands mid-workload rather than always at transaction 0
_VARIED_HIT_POINTS = frozenset(
    {
        "wal.append",
        "wal.commit",
        "wal.sync",
        "lob.write",
        "pool.flush_page",
        "disk.write",
    }
)


def _crash_on_hit(crash_at: str, seed: int) -> int:
    """Seed-derived 1-based occurrence of ``crash_at`` that crashes."""
    if crash_at not in _VARIED_HIT_POINTS:
        return 1
    # str-seeded Random is stable across processes (unlike hash())
    return 1 + random.Random(f"{seed}:{crash_at}").randrange(4)


def _schema() -> CubeSchema:
    return CubeSchema(
        CUBE,
        dimensions=(
            DimensionDef("x", key="xk", levels=(("xg", "str:4"),)),
            DimensionDef("y", key="yk", levels=(("yg", "str:4"),)),
        ),
        measures=(MeasureDef("m", "int64"),),
    )


def _dimension_rows() -> dict[str, list[tuple]]:
    return {
        "x": [(i, f"g{i % 2}") for i in range(_X_SIZE)],
        "y": [(j, f"h{j % 2}") for j in range(_Y_SIZE)],
    }


def _base_facts() -> list[tuple]:
    # base cells live at x=0 so workload transactions never overwrite them
    return [(0, j, (j + 1) * 10) for j in range(_Y_SIZE)]


def _txn_cell(i: int) -> tuple[tuple[int, int], int]:
    """Transaction ``i``'s target cell and its unique measure value."""
    return (2 + i % 4, i // 4), 100 + i


def _queries() -> list[ConsolidationQuery]:
    full = (
        ConsolidationQuery.builder(CUBE)
        .group_by("x", "xk")
        .group_by("y", "yk")
        .aggregate("m")
        .build()
    )
    rollup = (
        ConsolidationQuery.builder(CUBE)
        .group_by("y", "yg")
        .where_between("x", "xk", low=1)
        .aggregate("m")
        .build()
    )
    return [full, rollup]


def _load(engine: OlapEngine) -> None:
    engine.load_cube(
        _schema(),
        _dimension_rows(),
        _base_facts(),
        chunk_shape=(3, 2),
        backends=("array", "relational"),
        bitmap_attrs=[],
    )


def _query_rows(engine: OlapEngine, backend: str) -> list[list]:
    out = []
    for query in _queries():
        result = engine.query(query, backend=backend, cold=False)
        out.append(sorted(result.rows))
    return out


@dataclass
class CrashOutcome:
    """Result of one crash-recovery scenario."""

    crash_point: str
    seed: int
    crashed: bool
    confirmed: int  # transactions acknowledged before the crash
    recovered: int  # transactions present after recovery (k)
    replayed_pages: int
    torn_tail: bool
    prefix_ok: bool
    durable_ok: bool
    oracle_ok: bool
    aftershock_ok: bool = True
    errors: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Whether the scenario upheld the crash-recovery property."""
        return (
            self.prefix_ok
            and self.durable_ok
            and self.oracle_ok
            and self.aftershock_ok
            and not self.errors
        )


def run_crash_scenario(
    crash_at: str, seed: int, workdir: str, n_txns: int = N_TXNS
) -> CrashOutcome:
    """Crash one write workload at ``crash_at``, recover, check the property."""
    waldir = os.path.join(workdir, f"wal-{crash_at.replace('.', '-')}-{seed}")

    # -- phase 1: build + baseline checkpoint (fault-free) -----------------
    disk = FaultyDisk(page_size=_PAGE_SIZE)
    wal = FaultyWAL(waldir, segment_bytes=1 << 16)
    db = Database(pool_bytes=_POOL_BYTES, disk=disk, wal=wal)
    engine = OlapEngine(db)
    _load(engine)
    image_path = db.checkpoint()
    assert image_path is not None

    # -- phase 2: write workload under the fault plan ----------------------
    plan = FaultPlan(
        seed=seed,
        crash_at=crash_at,
        crash_on_hit=_crash_on_hit(crash_at, seed),
    )
    confirmed = 0
    crashed = False
    with fault_plan(plan):
        try:
            for i in range(n_txns):
                if i == n_txns // 2:
                    db.checkpoint()  # mid-workload: crashable itself
                keys, measure = _txn_cell(i)
                engine.write_cell(CUBE, keys, (measure,))
                confirmed += 1
        except SimulatedCrash:
            crashed = True
    # The "process" is dead: the in-memory disk, pool, and WAL mirror are
    # abandoned; only the image + segment files on real disk survive.
    del engine, db, disk

    # -- phase 3: restart + recover ----------------------------------------
    errors: list[str] = []
    db2 = Database.open(
        os.path.join(waldir, "checkpoint.img"),
        wal_dir=waldir,
        pool_bytes=_POOL_BYTES,
    )
    assert db2.wal is not None
    replayed = int(db2.wal.counters.get("wal_pages_replayed"))
    torn_tail = db2.wal.torn_tail_detected
    engine2 = OlapEngine(db2)
    engine2.attach_cube(_schema())

    # -- phase 4: the committed-prefix property -----------------------------
    full_rows = sorted(
        engine2.query(_queries()[0], backend="array", cold=False).rows
    )
    cells = {tuple(row[:2]): row[2] for row in full_rows}
    present = set()
    for i in range(n_txns):
        keys, measure = _txn_cell(i)
        if cells.get(keys) == measure:
            present.add(i)
    k = len(present)
    prefix_ok = present == set(range(k))
    durable_ok = k >= confirmed
    if not prefix_ok:
        errors.append(f"non-prefix survivors: {sorted(present)}")
    if not durable_ok:
        errors.append(f"lost committed transactions: k={k} < {confirmed}")

    # -- phase 5: serial no-crash oracle ------------------------------------
    oracle = OlapEngine(Database(page_size=_PAGE_SIZE, pool_bytes=_POOL_BYTES))
    _load(oracle)
    for i in sorted(present):
        keys, measure = _txn_cell(i)
        oracle.write_cell(CUBE, keys, (measure,))
    oracle_rows = _query_rows(oracle, "array")
    oracle_ok = True
    for backend in ("array", "starjoin"):
        recovered_rows = _query_rows(engine2, backend)
        if recovered_rows != oracle_rows:
            oracle_ok = False
            errors.append(f"backend {backend!r} diverges from oracle")

    # -- phase 6: aftershock — commit after recovery, crash again ------------
    # The survivor finishes the workload (transactions k..n-1), then
    # "crashes" too (abandoned, never closed) and a third process
    # recovers.  This is the double-crash the single-crash phases never
    # reach: the survivor's first commit marker must not retroactively
    # commit records the first crash orphaned, or the second recovery
    # replays an aborted transaction's page images.
    for i in range(k, n_txns):
        keys, measure = _txn_cell(i)
        engine2.write_cell(CUBE, keys, (measure,))
    del engine2, db2
    db3 = Database.open(
        os.path.join(waldir, "checkpoint.img"),
        wal_dir=waldir,
        pool_bytes=_POOL_BYTES,
    )
    engine3 = OlapEngine(db3)
    engine3.attach_cube(_schema())
    for i in range(k, n_txns):
        keys, measure = _txn_cell(i)
        oracle.write_cell(CUBE, keys, (measure,))
    oracle_rows = _query_rows(oracle, "array")
    aftershock_ok = True
    for backend in ("array", "starjoin"):
        if _query_rows(engine3, backend) != oracle_rows:
            aftershock_ok = False
            errors.append(
                f"aftershock: backend {backend!r} diverges from oracle "
                "after commit-then-second-crash"
            )
    db3.close()

    return CrashOutcome(
        crash_point=crash_at,
        seed=seed,
        crashed=crashed,
        confirmed=confirmed,
        recovered=k,
        replayed_pages=replayed,
        torn_tail=torn_tail,
        prefix_ok=prefix_ok,
        durable_ok=durable_ok,
        oracle_ok=oracle_ok,
        aftershock_ok=aftershock_ok,
        errors=errors,
    )


def run_crash_matrix(
    seed: int, workdir: str, points: tuple[str, ...] | None = None
) -> list[CrashOutcome]:
    """Run one scenario per crash point (the full matrix)."""
    if points is None:
        points = registered_crash_points()
    outcomes = []
    for point in points:
        outcome = run_crash_scenario(point, seed, workdir)
        if point in TORN_TAIL_POINTS and not outcome.torn_tail:
            outcome.errors.append(
                "expected a torn final WAL record to be detected"
            )
        outcomes.append(outcome)
    return outcomes
