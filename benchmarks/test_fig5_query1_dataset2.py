"""Figure 5 — Query 1 on Data Set 2.

Fixed 40×40×40×100-shaped cube, density swept 0.5 %–20 %.  Series: the
OLAP Array consolidation vs the relational Starjoin.

Paper shape: the array outperforms the relational algorithm by a wide
margin across the density range, with the gap growing as density (and
thus fact-table size) grows.
"""

import pytest

from repro.bench import (
    ExperimentTable,
    bench_settings,
    build_cube_engine,
    query1_for,
    run_cold,
)
from repro.data import dataset2

SETTINGS = bench_settings()
CONFIGS = dataset2(SETTINGS.scale)
BACKENDS = ["array", "starjoin"]


@pytest.fixture(scope="module")
def engines():
    return {c.name: build_cube_engine(c, SETTINGS) for c in CONFIGS}


@pytest.fixture(scope="module")
def table():
    t = ExperimentTable(
        "fig5",
        "Query 1 on Data Set 2 (fixed dims, density 0.5%-20%)",
        "density",
        expected="array < starjoin, gap growing with density",
    )
    yield t
    t.save()


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("config", CONFIGS, ids=lambda c: c.name)
def test_fig5(benchmark, engines, table, config, backend):
    engine = engines[config.name]
    query = query1_for(config)
    result = benchmark.pedantic(
        lambda: run_cold(engine, query, backend), rounds=2, iterations=1
    )
    table.add(backend, round(config.density, 4), result)
    benchmark.extra_info["cost_s"] = result.cost_s
