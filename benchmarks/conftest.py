"""Benchmark-suite configuration.

Every module reproduces one figure/table of the paper and writes its
cost table to ``benchmarks/results/<experiment>.txt``.  Scale comes
from ``REPRO_SCALE`` (default ``medium``); ``paper`` runs the full
640 000-cell configurations.
"""

import pytest

from repro.bench import bench_settings


def pytest_report_header(config):
    settings = bench_settings()
    return (
        f"repro experiments: scale={settings.scale} "
        f"page_size={settings.page_size} pool_bytes={settings.pool_bytes}"
    )


@pytest.fixture(scope="session")
def settings():
    return bench_settings()
