"""Ablation abl4 — fact file vs slotted-page heap file (§4.4).

The fact file exists to (1) eliminate slotted-page overhead and
(2) give positional access.  Same fact data in both layouts; Starjoin
consolidation over each, plus footprints.

Expected shape: the heap file is larger (slot entries + page headers)
and its scan correspondingly slower; positional access is only possible
on the fact file.
"""

import pytest

from repro.bench import ExperimentTable, bench_settings
from repro.data import (
    cube_schema_for,
    dataset1,
    generate_dimension_rows,
    generate_fact_rows,
)
from repro.olap.star_schema import dimension_table_schema, fact_table_schema
from repro.relational import Database, DimensionJoinSpec, star_join_consolidate

SETTINGS = bench_settings()
CONFIG = dataset1(SETTINGS.scale)[1]
LAYOUTS = ["fact_file", "heap_file"]


@pytest.fixture(scope="module")
def tables():
    schema = cube_schema_for(CONFIG)
    db = Database(
        page_size=SETTINGS.page_size,
        pool_bytes=SETTINGS.pool_bytes,
        disk_model=SETTINGS.disk_model,
    )
    fact_rows = generate_fact_rows(CONFIG)
    dim_rows = generate_dimension_rows(CONFIG)
    dims = {}
    for dim in schema.dimensions:
        table = db.create_heap_table(
            f"dim.{dim.name}", dimension_table_schema(dim)
        )
        table.insert_many(dim_rows[dim.name])
        dims[dim.name] = table
    fact_schema = fact_table_schema(schema)
    fact = db.create_fact_table("fact.flat", fact_schema)
    fact.append_many(fact_rows)
    heap = db.create_heap_table("fact.heap", fact_schema)
    heap.insert_many(fact_rows)
    specs = [
        DimensionJoinSpec(dims[d.name], d.key, d.key, f"h{i}1")
        for i, d in enumerate(schema.dimensions)
    ]
    return db, {"fact_file": fact, "heap_file": heap}, specs


@pytest.fixture(scope="module")
def table():
    t = ExperimentTable(
        "abl4",
        "Fact file vs slotted-page heap file for the fact table",
        "layout",
        expected="heap file larger and slower to scan (slot overhead)",
    )
    yield t
    t.save()


@pytest.mark.parametrize("layout", LAYOUTS)
def test_ablation_fact_file(benchmark, tables, table, layout):
    db, facts, specs = tables
    fact = facts[layout]

    def run():
        db.cold_cache()
        import time

        start = time.perf_counter()
        rows = star_join_consolidate(fact, specs, "volume")
        elapsed = time.perf_counter() - start
        return rows, elapsed, db.sim_io_seconds()

    rows, elapsed, sim_io = benchmark.pedantic(run, rounds=2, iterations=1)
    table.add_value(f"cost_s", layout, elapsed + sim_io)
    table.add_value("bytes", layout, fact.size_bytes())
    benchmark.extra_info["cost_s"] = elapsed + sim_io
    benchmark.extra_info["bytes"] = fact.size_bytes()
    assert rows  # both layouts produce the consolidation


def test_heap_layout_is_larger(tables):
    _, facts, _ = tables
    assert facts["heap_file"].size_bytes() > facts["fact_file"].size_bytes()
