"""Ablation abl8 — the §4.4 selection-technique bake-off.

"We implemented and tested several algorithms for these selections,
including standard B-tree indexing, a specialized 'skipping
multi-attribute B-tree' algorithm, and bitmap indexing.  Here we
present only bitmap indexing, since our tests showed that it dominated
the other techniques over the full range of queries tested."

This experiment re-runs that bake-off: Query 2 across the selectivity
sweep through the bitmap algorithm, the per-dimension B-tree baseline
and our reconstruction of the skipping multi-attribute B-tree.

Expected shape: bitmap dominates both B-tree variants everywhere; the
skipping scan beats the plain B-tree at low selectivity (it touches a
handful of index ranges instead of unioning full per-key position
lists).
"""

import pytest

from repro.bench import (
    ExperimentTable,
    bench_settings,
    build_cube_engine,
    query2_for,
    run_cold,
)
from repro.data import selectivity_configs

SETTINGS = bench_settings()
CONFIGS = selectivity_configs(
    SETTINGS.scale, fourth_dim="small", fanouts=(2, 5, 10)
)
BACKENDS = ["bitmap", "btree", "mbtree"]


@pytest.fixture(scope="module")
def engines():
    return {
        c.name: build_cube_engine(
            c, SETTINGS, fact_btrees=True, fact_mbtree=True
        )
        for c in CONFIGS
    }


@pytest.fixture(scope="module")
def table():
    t = ExperimentTable(
        "abl8",
        "Selection baselines: bitmap vs B-tree vs skipping multi-attr B-tree",
        "S",
        expected="bitmap dominates both B-tree variants (the §4.4 finding)",
    )
    yield t
    t.save()


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("config", CONFIGS, ids=lambda c: f"f{c.fanout1}")
def test_ablation_select_baselines(benchmark, engines, table, config, backend):
    engine = engines[config.name]
    query = query2_for(config)
    result = benchmark.pedantic(
        lambda: run_cold(engine, query, backend), rounds=2, iterations=1
    )
    selectivity = round((1 / config.fanout1) ** 4, 6)
    table.add(backend, selectivity, result)
    benchmark.extra_info["cost_s"] = result.cost_s


def test_backends_agree(engines):
    config = CONFIGS[0]
    engine = engines[config.name]
    query = query2_for(config)
    rows = {
        backend: run_cold(engine, query, backend).rows for backend in BACKENDS
    }
    assert rows["btree"] == rows["bitmap"]
    assert rows["mbtree"] == rows["bitmap"]
