"""Ablation abl7 — the one-pass CUBE operator vs 2ⁿ consolidations.

The paper's companion algorithm ([ZDN97]) computes all group-bys of a
cube simultaneously from the chunked array.  This ablation compares
one shared chunk scan against running a separate §4.1 consolidation per
subset (16 scans for the 4-D cube).

Expected shape: the shared scan wins by roughly the ratio of chunk
I/O + decode paid once vs 2ⁿ times.
"""

import pytest

from repro.bench import ExperimentTable, bench_settings, build_cube_engine
from repro.core import ConsolidationSpec, compute_cube, consolidate
from repro.data import dataset1
from repro.util.stats import Counters

SETTINGS = bench_settings()
CONFIG = dataset1(SETTINGS.scale)[1]
STRATEGIES = ["one_pass_cube", "separate_consolidations"]


@pytest.fixture(scope="module")
def array():
    engine = build_cube_engine(CONFIG, SETTINGS, backends=("array",))
    return engine, engine.cube(CONFIG.name).array


@pytest.fixture(scope="module")
def table():
    t = ExperimentTable(
        "abl7",
        "CUBE: one shared scan vs separate consolidations per subset",
        "strategy",
        expected="one pass pays chunk I/O + decode once instead of 2^n times",
    )
    yield t
    t.save()


def specs(array):
    return [ConsolidationSpec.level(f"h{d}1") for d in range(4)]


def all_subset_specs(array):
    from itertools import combinations

    ndim = array.geometry.ndim
    out = []
    for size in range(ndim + 1):
        for subset in combinations(range(ndim), size):
            if not subset:
                subset_specs = [ConsolidationSpec.drop()] * ndim
            else:
                subset_specs = [
                    ConsolidationSpec.level(f"h{d}1")
                    if d in subset
                    else ConsolidationSpec.drop()
                    for d in range(ndim)
                ]
            out.append(subset_specs)
    return out


@pytest.mark.parametrize("strategy", STRATEGIES)
def test_ablation_cube(benchmark, array, table, strategy):
    engine, olap_array = array

    def run_one_pass():
        engine.db.cold_cache()
        olap_array.invalidate_caches()
        counters = Counters()
        compute_cube(olap_array, specs(olap_array), counters=counters)
        return counters, engine.db.sim_io_seconds()

    def run_separate():
        # sixteen independent queries, each cold (the paper's protocol)
        counters = Counters()
        sim_io = 0.0
        for subset_specs in all_subset_specs(olap_array):
            engine.db.cold_cache()
            olap_array.invalidate_caches()
            if all(s.kind == "drop" for s in subset_specs):
                olap_array.sum_region([None] * 4)  # the grand total
            else:
                consolidate(
                    olap_array,
                    subset_specs,
                    mode="vectorized",
                    counters=counters,
                )
            sim_io += engine.db.sim_io_seconds()
        return counters, sim_io

    run = run_one_pass if strategy == "one_pass_cube" else run_separate
    import time

    def timed():
        start = time.perf_counter()
        counters, sim_io = run()
        return time.perf_counter() - start, sim_io, counters

    elapsed, sim_io, counters = benchmark.pedantic(timed, rounds=2, iterations=1)
    table.add_value("cost_s", strategy, elapsed + sim_io)
    table.add_value("chunks_read", strategy, counters.get("chunks_read"))
    benchmark.extra_info["cost_s"] = elapsed + sim_io
