"""Table S2 (§3.2) — the uncompressed-array storage crossover.

§3.2 derives that an *uncompressed* array needs less space than the
relational table once density ρ exceeds p/(n+p) — 20 % for our n = 4,
p = 1 cube (25 % in the paper's 3-D retail example).  We build the same
cube with the dense codec at densities straddling 20 % and compare real
footprints; the chunk-offset codec is included to show compression
pushes the break-even far lower (§3.3).
"""

import pytest

from repro.bench import ExperimentTable, bench_settings, build_cube_engine
from repro.data import dataset2

SETTINGS = bench_settings()
DENSITIES = (0.05, 0.10, 0.20, 0.40)
CONFIGS = dataset2(SETTINGS.scale, densities=DENSITIES)


@pytest.fixture(scope="module")
def table():
    t = ExperimentTable(
        "tabS2",
        "Storage crossover: dense array vs fact file vs chunk-offset",
        "density",
        expected=(
            "dense array beats the table only above density p/(n+p) = 0.2; "
            "chunk-offset beats both at every density here"
        ),
    )
    yield t
    t.save()


@pytest.mark.parametrize("config", CONFIGS, ids=lambda c: c.name)
def test_storage_crossover(benchmark, table, config):
    def build_both():
        dense = build_cube_engine(config, SETTINGS, codec="dense")
        sparse = build_cube_engine(config, SETTINGS, codec="chunk-offset")
        return dense, sparse

    dense_engine, sparse_engine = benchmark.pedantic(
        build_both, rounds=1, iterations=1
    )
    dense_report = dense_engine.storage_report(config.name)
    sparse_report = sparse_engine.storage_report(config.name)
    x = round(config.density, 3)
    table.add_value("fact_file_bytes", x, dense_report["fact_file"])
    table.add_value("dense_array_bytes", x, dense_report["array_chunks"])
    table.add_value("chunk_offset_bytes", x, sparse_report["array_chunks"])
    benchmark.extra_info["density"] = x

    # chunk-offset compression always beats the fact file on this sweep
    assert sparse_report["array_chunks"] < sparse_report["fact_file"]
    # the dense array only wins above the analytic break-even
    if config.density >= 0.4:
        assert dense_report["array_chunks"] < dense_report["fact_file"]
    if config.density <= 0.05:
        assert dense_report["array_chunks"] > dense_report["fact_file"]
