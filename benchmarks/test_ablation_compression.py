"""Ablation abl1 — chunk codec choice (§3.1/§3.3).

Paradise's generic array tiles use LZW; the OLAP Array ADT replaces it
with chunk-offset compression.  Same cube, four codecs: storage bytes
and Query 1 consolidation cost per codec.

Expected shape: chunk-offset smallest and fastest to scan at OLAP
densities; LZW compresses the dense tile well but pays decompression
CPU; plain dense is largest; adaptive tracks chunk-offset at low
density.
"""

import pytest

from repro.bench import (
    ExperimentTable,
    bench_settings,
    build_cube_engine,
    query1_for,
    run_cold,
)
from repro.data import dataset2

SETTINGS = bench_settings()
CONFIG = dataset2(SETTINGS.scale, densities=(0.05,))[0]
CODECS = ["chunk-offset", "dense", "lzw-dense", "adaptive"]


@pytest.fixture(scope="module")
def engines():
    return {codec: build_cube_engine(CONFIG, SETTINGS, codec=codec) for codec in CODECS}


@pytest.fixture(scope="module")
def table():
    t = ExperimentTable(
        "abl1",
        "Chunk codec ablation (5% density)",
        "codec",
        expected=(
            "chunk-offset smallest/fastest; lzw small but CPU-heavy; "
            "dense largest"
        ),
    )
    yield t
    t.save()


@pytest.mark.parametrize("codec", CODECS)
def test_ablation_compression(benchmark, engines, table, codec):
    engine = engines[codec]
    query = query1_for(CONFIG)
    result = benchmark.pedantic(
        lambda: run_cold(engine, query, "array"), rounds=2, iterations=1
    )
    report = engine.storage_report(CONFIG.name)
    table.add("query1_cost_s", codec, result)
    table.add_value("array_chunk_bytes", codec, report["array_chunks"])
    benchmark.extra_info["array_chunk_bytes"] = report["array_chunks"]
    benchmark.extra_info["cost_s"] = result.cost_s


def test_codec_size_ordering(engines, table):
    sizes = {
        codec: engines[codec].storage_report(CONFIG.name)["array_chunks"]
        for codec in CODECS
    }
    assert sizes["chunk-offset"] <= sizes["dense"]
    assert sizes["lzw-dense"] <= sizes["dense"]
    assert sizes["adaptive"] <= sizes["dense"]
