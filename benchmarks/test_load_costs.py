"""Table S3 — ahead-of-time build costs of every physical structure.

§4.5: "This bitmap creation is done ahead of time, not as part of the
query evaluation."  This experiment makes the ahead-of-time investment
visible: wall-clock build time and on-disk footprint of each structure
(fact file, dimension tables, bitmap indices, fact B-trees, the
compressed array with all its indices) for one Data Set 1 cube.
"""

import time

import pytest

from repro.bench import ExperimentTable, bench_settings
from repro.data import (
    cube_schema_for,
    dataset1,
    generate_dimension_rows,
    generate_fact_rows,
)
from repro.olap import OlapEngine

SETTINGS = bench_settings()
CONFIG = dataset1(SETTINGS.scale)[1]
DESIGNS = ["relational", "relational+btrees", "array"]


@pytest.fixture(scope="module")
def table():
    t = ExperimentTable(
        "tabS3",
        "Ahead-of-time build cost per physical design",
        "design",
        expected="bitmaps/B-trees are a real ahead-of-time investment",
    )
    yield t
    t.save()


def build(design):
    engine = OlapEngine(
        page_size=SETTINGS.page_size,
        pool_bytes=SETTINGS.pool_bytes,
        disk_model=SETTINGS.disk_model,
    )
    engine.load_cube(
        cube_schema_for(CONFIG),
        generate_dimension_rows(CONFIG),
        generate_fact_rows(CONFIG),
        chunk_shape=CONFIG.chunk_shape,
        backends=("relational",) if design.startswith("relational") else ("array",),
        fact_btrees=design == "relational+btrees",
    )
    return engine


@pytest.mark.parametrize("design", DESIGNS)
def test_load_costs(benchmark, table, design):
    def timed():
        start = time.perf_counter()
        engine = build(design)
        return time.perf_counter() - start, engine

    elapsed, engine = benchmark.pedantic(timed, rounds=1, iterations=1)
    report = engine.storage_report(CONFIG.name)
    table.add_value("build_seconds", design, elapsed)
    table.add_value("total_bytes", design, sum(report.values()))
    benchmark.extra_info["build_seconds"] = elapsed
    benchmark.extra_info.update(report)
