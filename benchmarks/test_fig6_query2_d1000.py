"""Figure 6 — Query 2 on the 40×40×40×1000-shaped array.

Selection on all four dimensions' hX1 attributes with the per-dimension
fanout swept 2…10, so the star-join selectivity S sweeps 0.0625 down to
0.0001.  Series: the §4.2 array algorithm (both execution modes) vs the
§4.5 bitmap + fact-file algorithm.

Paper shape: the array is faster while S > 0.00024; the relational cost
falls steeply as selectivity shrinks (fewer tuples to fetch) while the
array cost stays chunk-bound.
"""

import pytest

from repro.bench import (
    ExperimentTable,
    bench_settings,
    build_cube_engine,
    query2_for,
    run_cold,
    run_cold_traced,
    write_trace,
)
from repro.data import selectivity_configs

SETTINGS = bench_settings()
CONFIGS = selectivity_configs(SETTINGS.scale, fourth_dim="large")
SERIES = [
    ("array", "interpreted"),
    ("array", "vectorized"),
    ("bitmap", "interpreted"),
]


@pytest.fixture(scope="module")
def engines():
    return {c.name: build_cube_engine(c, SETTINGS) for c in CONFIGS}


@pytest.fixture(scope="module")
def table():
    t = ExperimentTable(
        "fig6",
        "Query 2 on the x1000 array (selectivity sweep)",
        "S",
        expected=(
            "array < bitmap for S > ~0.00024; bitmap cost falls steeply "
            "with S while array stays chunk-bound"
        ),
    )
    yield t
    t.save()


@pytest.mark.parametrize("series", SERIES, ids=lambda s: f"{s[0]}-{s[1]}")
@pytest.mark.parametrize("config", CONFIGS, ids=lambda c: c.name)
def test_fig6(benchmark, engines, table, config, series):
    backend, mode = series
    engine = engines[config.name]
    query = query2_for(config)
    result = benchmark.pedantic(
        lambda: run_cold(engine, query, backend, mode=mode),
        rounds=2,
        iterations=1,
    )
    selectivity = round((1 / config.fanout1) ** 4, 6)
    table.add(f"{backend}-{mode}", selectivity, result)
    benchmark.extra_info["cost_s"] = result.cost_s
    benchmark.extra_info["selectivity"] = selectivity


def test_fig6_trace_artifact(benchmark, engines):
    """One traced cold run per series, saved next to the cost table."""
    config = CONFIGS[0]
    engine = engines[config.name]
    query = query2_for(config)
    spans = benchmark.pedantic(
        lambda: [
            run_cold_traced(engine, query, backend, mode=mode)[1]
            for backend, mode in SERIES
        ],
        rounds=1,
        iterations=1,
    )
    write_trace("fig6", spans)
