"""Figure 8 — the low-selectivity crossover on the x1000 array.

The tail of the Figure 6 sweep (S = 0.0039 … 0.0001).  With very few
qualifying tuples the bitmap algorithm fetches a handful of fact-file
tuples while the array must still fetch every candidate chunk.

Paper shape: bitmap + fact file beats the array slightly once
S < 0.00024 (at S = 0.0001 only ~80 bits survive the AND: 80 tuple
fetches vs ~80 scattered chunk fetches).
"""

import pytest

from repro.bench import (
    ExperimentTable,
    bench_settings,
    build_cube_engine,
    query2_for,
    run_cold,
)
from repro.data import selectivity_configs

SETTINGS = bench_settings()
CONFIGS = selectivity_configs(
    SETTINGS.scale, fourth_dim="large", fanouts=(4, 5, 8, 10)
)
BACKENDS = ["array", "bitmap", "btree"]


@pytest.fixture(scope="module")
def engines():
    return {
        c.name: build_cube_engine(c, SETTINGS, fact_btrees=True)
        for c in CONFIGS
    }


@pytest.fixture(scope="module")
def table():
    t = ExperimentTable(
        "fig8",
        "Query 2 low-selectivity tail on the x1000 array",
        "S",
        expected="bitmap < array below S ~ 0.00024; btree baseline dominated",
    )
    yield t
    t.save()


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("config", CONFIGS, ids=lambda c: c.name)
def test_fig8(benchmark, engines, table, config, backend):
    engine = engines[config.name]
    query = query2_for(config)
    result = benchmark.pedantic(
        lambda: run_cold(engine, query, backend), rounds=2, iterations=1
    )
    selectivity = round((1 / config.fanout1) ** 4, 6)
    table.add(backend, selectivity, result)
    benchmark.extra_info["cost_s"] = result.cost_s
    benchmark.extra_info["selected_tuples"] = result.stats.get(
        "selected_tuples", 0
    )
