"""Ablation abl6 — interpreted vs vectorized array kernels.

The figures run the per-cell loops the paper's pseudo-code describes so
that both physical designs pay symmetric Python overhead; the library
also ships numpy kernels.  This ablation quantifies the gap on Query 1.

Expected shape: identical rows; vectorized CPU a large factor lower;
identical simulated I/O (same pages touched).
"""

import pytest

from repro.bench import (
    ExperimentTable,
    bench_settings,
    build_cube_engine,
    query1_for,
    run_cold,
)
from repro.data import dataset1

SETTINGS = bench_settings()
CONFIG = dataset1(SETTINGS.scale)[1]
MODES = ["interpreted", "vectorized"]


@pytest.fixture(scope="module")
def engine():
    return build_cube_engine(CONFIG, SETTINGS)


@pytest.fixture(scope="module")
def table():
    t = ExperimentTable(
        "abl6",
        "Array consolidation: interpreted vs vectorized kernels",
        "mode",
        expected="same rows and I/O; vectorized CPU far lower",
    )
    yield t
    t.save()


@pytest.mark.parametrize("mode", MODES)
def test_ablation_modes(benchmark, engine, table, mode):
    query = query1_for(CONFIG)
    result = benchmark.pedantic(
        lambda: run_cold(engine, query, "array", mode=mode),
        rounds=2,
        iterations=1,
    )
    table.add("query1_cost_s", mode, result)
    table.add_value("cpu_s", mode, result.elapsed_s)
    benchmark.extra_info["cost_s"] = result.cost_s


def test_modes_agree(engine):
    query = query1_for(CONFIG)
    a = run_cold(engine, query, "array", mode="interpreted")
    b = run_cold(engine, query, "array", mode="vectorized")
    assert a.rows == b.rows
    assert a.sim_io_s == pytest.approx(b.sim_io_s, rel=0.05)
