"""Serving-mode numbers next to the cold tables: the fig4 query, warm.

A result-cache hit answers the fig4 query (Query 1 on Data Set 1)
without touching the engine; the speedup over the paper-protocol cold
run is the serving layer's headline number.  The >= 5x bound is the
acceptance bar — observed speedups are orders of magnitude larger.
"""

import pytest

from repro.bench import (
    bench_settings,
    build_cube_engine,
    query1_for,
    run_concurrent,
    run_warm,
)
from repro.data import dataset1

SETTINGS = bench_settings()
CONFIGS = dataset1(SETTINGS.scale)


@pytest.fixture(scope="module")
def engine():
    return build_cube_engine(CONFIGS[0], SETTINGS)


def test_fig4_warm_speedup(benchmark, engine):
    query = query1_for(CONFIGS[0])
    report = benchmark.pedantic(
        lambda: run_warm(engine, query, backend="array"),
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info["cold_cost_s"] = report.cold.cost_s
    benchmark.extra_info["warm_cost_s"] = report.warm_cost_s
    benchmark.extra_info["speedup"] = report.speedup
    assert report.hit_rate == 1.0
    assert report.speedup >= 5.0


def test_fig4_concurrent_clients(benchmark, engine):
    query = query1_for(CONFIGS[0])
    report = benchmark.pedantic(
        lambda: run_concurrent(engine, [query], n_threads=8, rounds=2),
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info["hit_rate"] = report.hit_rate
    benchmark.extra_info["p50_s"] = report.p50_s
    benchmark.extra_info["p95_s"] = report.p95_s
    assert report.hit_rate > 0.5
    assert report.stats.get("serve.rejected", 0) == 0
