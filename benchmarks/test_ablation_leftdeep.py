"""Ablation abl3 — Starjoin operator vs pipelined left-deep plan (§4.3).

The paper implements the single-operator Starjoin because left-deep
hash plans must build a hash table on a fact-sized input after the
first join.  Query 1 through both.

Expected shape: starjoin < leftdeep, with leftdeep's gap explained by
the fact-sized intermediate hash builds.
"""

import pytest

from repro.bench import (
    ExperimentTable,
    bench_settings,
    build_cube_engine,
    query1_for,
    run_cold,
)
from repro.data import dataset1

SETTINGS = bench_settings()
CONFIG = dataset1(SETTINGS.scale)[1]  # the x100 cube
BACKENDS = ["starjoin", "leftdeep"]


@pytest.fixture(scope="module")
def engine():
    return build_cube_engine(CONFIG, SETTINGS)


@pytest.fixture(scope="module")
def table():
    t = ExperimentTable(
        "abl3",
        "Starjoin operator vs pipelined left-deep hash-join plan",
        "backend",
        expected="starjoin < leftdeep (fact-sized intermediate hash builds)",
    )
    yield t
    t.save()


@pytest.mark.parametrize("backend", BACKENDS)
def test_ablation_leftdeep(benchmark, engine, table, backend):
    query = query1_for(CONFIG)
    result = benchmark.pedantic(
        lambda: run_cold(engine, query, backend), rounds=2, iterations=1
    )
    table.add("query1_cost_s", backend, result)
    benchmark.extra_info["cost_s"] = result.cost_s
