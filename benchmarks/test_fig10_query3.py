"""Figure 10 — Query 3 on the 40×40×40×100-shaped array.

Selection and group-by on three dimensions only; the fourth dimension
is aggregated away.  Series: array vs bitmap (plus the starjoin scan
for reference).

Paper shape: 90 % of the relational time is tuple retrieval, so
dropping one bitmap AND barely changes relational cost — the Figure 10
relational curve tracks Figure 7's.
"""

import pytest

from repro.bench import (
    ExperimentTable,
    bench_settings,
    build_cube_engine,
    query3_for,
    run_cold,
)
from repro.data import selectivity_configs

SETTINGS = bench_settings()
CONFIGS = selectivity_configs(SETTINGS.scale, fourth_dim="small")
BACKENDS = ["array", "bitmap", "starjoin"]


@pytest.fixture(scope="module")
def engines():
    return {c.name: build_cube_engine(c, SETTINGS) for c in CONFIGS}


@pytest.fixture(scope="module")
def table():
    t = ExperimentTable(
        "fig10",
        "Query 3 (3-dimension selection) on the x100 array",
        "per_dim_s",
        expected=(
            "relational cost tracks fig7's (tuple fetch dominates; one "
            "fewer bitmap AND changes little)"
        ),
    )
    yield t
    t.save()


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("config", CONFIGS, ids=lambda c: c.name)
def test_fig10(benchmark, engines, table, config, backend):
    engine = engines[config.name]
    query = query3_for(config)
    result = benchmark.pedantic(
        lambda: run_cold(engine, query, backend), rounds=2, iterations=1
    )
    table.add(backend, round(1 / config.fanout1, 4), result)
    benchmark.extra_info["cost_s"] = result.cost_s
