"""Figure 9 — the low-selectivity crossover on the x100 array.

Same as Figure 8 on the 80-chunk array.  Paper shape: bitmap + fact
file slightly ahead of the array below S ≈ 0.00024.
"""

import pytest

from repro.bench import (
    ExperimentTable,
    bench_settings,
    build_cube_engine,
    query2_for,
    run_cold,
)
from repro.data import selectivity_configs

SETTINGS = bench_settings()
CONFIGS = selectivity_configs(
    SETTINGS.scale, fourth_dim="small", fanouts=(4, 5, 8, 10)
)
BACKENDS = ["array", "bitmap"]


@pytest.fixture(scope="module")
def engines():
    return {c.name: build_cube_engine(c, SETTINGS) for c in CONFIGS}


@pytest.fixture(scope="module")
def table():
    t = ExperimentTable(
        "fig9",
        "Query 2 low-selectivity tail on the x100 array",
        "S",
        expected="bitmap < array below S ~ 0.00024",
    )
    yield t
    t.save()


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("config", CONFIGS, ids=lambda c: c.name)
def test_fig9(benchmark, engines, table, config, backend):
    engine = engines[config.name]
    query = query2_for(config)
    result = benchmark.pedantic(
        lambda: run_cold(engine, query, backend), rounds=2, iterations=1
    )
    selectivity = round((1 / config.fanout1) ** 4, 6)
    table.add(backend, selectivity, result)
    benchmark.extra_info["cost_s"] = result.cost_s
