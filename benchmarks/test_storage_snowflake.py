"""Table S4 — star vs snowflake dimension storage and query cost (§2.2).

The paper mentions the snowflake schema as the star's "slightly more
complex variant".  Classic folklore holds that snowflaking shrinks
dimension storage (normalized hierarchies) while barely moving query
time (dimension tables are dwarfed by the fact table) — this experiment
measures both on the same cube.
"""

import pytest

from repro.bench import (
    ExperimentTable,
    bench_settings,
    query1_for,
    run_cold,
)
from repro.data import (
    cube_schema_for,
    dataset1,
    generate_dimension_rows,
    generate_fact_rows,
)
from repro.olap import OlapEngine

SETTINGS = bench_settings()
CONFIG = dataset1(SETTINGS.scale)[1]
LAYOUTS = ["star", "snowflake"]


def build(layout):
    engine = OlapEngine(
        page_size=SETTINGS.page_size,
        pool_bytes=SETTINGS.pool_bytes,
        disk_model=SETTINGS.disk_model,
    )
    engine.load_cube(
        cube_schema_for(CONFIG),
        generate_dimension_rows(CONFIG),
        generate_fact_rows(CONFIG),
        chunk_shape=CONFIG.chunk_shape,
        backends=("relational",),
        relational_layout=layout,
    )
    return engine


@pytest.fixture(scope="module")
def engines():
    return {layout: build(layout) for layout in LAYOUTS}


@pytest.fixture(scope="module")
def table():
    t = ExperimentTable(
        "tabS4",
        "Star vs snowflake: dimension storage and Query 1 cost",
        "layout",
        expected=(
            "snowflake shrinks dimension tables; query cost barely moves "
            "(the fact table dominates)"
        ),
    )
    yield t
    t.save()


@pytest.mark.parametrize("layout", LAYOUTS)
def test_storage_snowflake(benchmark, engines, table, layout):
    engine = engines[layout]
    query = query1_for(CONFIG)
    result = benchmark.pedantic(
        lambda: run_cold(engine, query, "starjoin"), rounds=2, iterations=1
    )
    report = engine.storage_report(CONFIG.name)
    table.add("query1_cost_s", layout, result)
    table.add_value("dimension_bytes", layout, report["dimension_tables"])
    benchmark.extra_info["cost_s"] = result.cost_s
    benchmark.extra_info["dimension_bytes"] = report["dimension_tables"]


def test_layouts_agree(engines):
    query = query1_for(CONFIG)
    assert (
        run_cold(engines["star"], query, "starjoin").rows
        == run_cold(engines["snowflake"], query, "starjoin").rows
    )
