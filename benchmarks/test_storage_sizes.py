"""Table S1 (§5.5.1 text) — storage sizes: compressed array vs fact file.

The paper reports, for Data Set 1 at 1 % density, a relational fact
file of ~18.5 MB against ~6.5 MB for the chunk-offset-compressed array
(ratio ≈ 0.35).  This experiment measures both designs' real on-disk
footprints (every byte goes through the page layer) across Data Set 1.

Expected shape: compressed array chunks < fact file at every density
tested; the per-cell ratio approaches 12/24 bytes = 0.5 plus chunk
page-rounding overhead that grows with chunk count.
"""

import pytest

from repro.bench import ExperimentTable, bench_settings, build_cube_engine
from repro.data import dataset1

SETTINGS = bench_settings()
CONFIGS = dataset1(SETTINGS.scale)


@pytest.fixture(scope="module")
def table():
    t = ExperimentTable(
        "tabS1",
        "Storage: compressed array vs fact file (Data Set 1)",
        "fourth_dim",
        expected=(
            "array chunks < fact file at every density (paper: 6.5 MB "
            "vs 18.5 MB at 1%)"
        ),
    )
    yield t
    t.save()


@pytest.mark.parametrize("config", CONFIGS, ids=lambda c: c.name)
def test_storage_sizes(benchmark, table, config):
    engine = benchmark.pedantic(
        lambda: build_cube_engine(config, SETTINGS), rounds=1, iterations=1
    )
    report = engine.storage_report(config.name)
    x = config.dim_sizes[-1]
    table.add_value("fact_file_bytes", x, report["fact_file"])
    table.add_value("array_chunk_bytes", x, report["array_chunks"])
    table.add_value("array_total_bytes", x, report["array_total"])
    table.add_value(
        "ratio_chunks_to_fact", x, report["array_chunks"] / report["fact_file"]
    )
    benchmark.extra_info.update(report)
    assert report["array_chunks"] < report["fact_file"]
