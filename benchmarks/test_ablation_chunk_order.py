"""Ablation abl5 — chunk-ordered vs naive cross-product enumeration (§4.2).

The paper generates cross-product elements "according to the chunk
number" so each chunk is read once, in disk order.  The naive order
streams elements in global index order, re-deriving (and re-fetching,
modulo the buffer pool) the chunk per element.

Expected shape: chunk order strictly cheaper; the gap grows with the
cross-product size.
"""

import pytest

from repro.bench import (
    ExperimentTable,
    bench_settings,
    build_cube_engine,
    query2_for,
    run_cold,
)
from repro.data import selectivity_configs

# Low fanouts make the cross-product large, so the naive order pays a
# chunk fetch + decode per element instead of one per chunk.
SETTINGS = bench_settings()
CONFIGS = selectivity_configs(
    SETTINGS.scale, fourth_dim="small", fanouts=(2, 3)
)
ORDERS = ["chunk", "naive"]


@pytest.fixture(scope="module")
def engines():
    return {c.name: build_cube_engine(c, SETTINGS) for c in CONFIGS}


@pytest.fixture(scope="module")
def table():
    t = ExperimentTable(
        "abl5",
        "Cross-product enumeration order in select-consolidate",
        "fanout",
        expected="chunk order < naive order",
    )
    yield t
    t.save()


@pytest.mark.parametrize("order", ORDERS)
@pytest.mark.parametrize("config", CONFIGS, ids=lambda c: f"f{c.fanout1}")
def test_ablation_chunk_order(benchmark, engines, table, config, order):
    engine = engines[config.name]
    query = query2_for(config)
    result = benchmark.pedantic(
        lambda: run_cold(engine, query, "array", order=order),
        rounds=2,
        iterations=1,
    )
    table.add(order, config.fanout1, result)
    benchmark.extra_info["cost_s"] = result.cost_s
