"""Figure 4 — Query 1 on Data Set 1.

Three 4-D cubes with a fixed number of valid cells and a growing fourth
dimension (densities 20 %, 10 %, 1 %; 40/80/800 chunks).  Series: the
OLAP Array consolidation (§4.1) vs the relational Starjoin (§4.3).

Paper shape: the array wins by a wide margin at every density, and the
array's own time grows mildly with the fourth dimension (more, smaller
chunks to fetch for the same bytes).
"""

import pytest

from repro.bench import (
    ExperimentTable,
    bench_settings,
    build_cube_engine,
    query1_for,
    run_cold,
    run_cold_traced,
    write_trace,
)
from repro.data import dataset1

SETTINGS = bench_settings()
CONFIGS = dataset1(SETTINGS.scale)
BACKENDS = ["array", "starjoin"]


@pytest.fixture(scope="module")
def engines():
    return {c.name: build_cube_engine(c, SETTINGS) for c in CONFIGS}


@pytest.fixture(scope="module")
def table():
    t = ExperimentTable(
        "fig4",
        "Query 1 on Data Set 1 (fixed valid cells, growing 4th dimension)",
        "fourth_dim",
        expected=(
            "array < starjoin at every density; array cost grows with "
            "chunk count (40 -> 80 -> 800)"
        ),
    )
    yield t
    t.save()


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("config", CONFIGS, ids=lambda c: c.name)
def test_fig4(benchmark, engines, table, config, backend):
    engine = engines[config.name]
    query = query1_for(config)
    result = benchmark.pedantic(
        lambda: run_cold(engine, query, backend), rounds=2, iterations=1
    )
    table.add(backend, config.dim_sizes[-1], result)
    benchmark.extra_info["cost_s"] = result.cost_s
    benchmark.extra_info["sim_io_s"] = result.sim_io_s
    benchmark.extra_info["rows"] = len(result.rows)


def test_fig4_trace_artifact(benchmark, engines):
    """One traced cold run per series, saved next to the cost table."""
    config = CONFIGS[0]
    engine = engines[config.name]
    query = query1_for(config)
    spans = benchmark.pedantic(
        lambda: [
            run_cold_traced(engine, query, backend)[1] for backend in BACKENDS
        ],
        rounds=1,
        iterations=1,
    )
    write_trace("fig4", spans)
