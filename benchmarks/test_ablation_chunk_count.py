"""Ablation abl2 — the chunk-count effect (§5.5.1).

"Even though the storage for each is about the same ... it takes SHORE
more time to scan 800 6400-byte chunks than 80 64000-byte chunks."
Same cube contents, the fourth dimension's chunk width swept so the
array splits into few large or many small chunks; Query 1 cost per
chunking.

Expected shape: consolidation cost rises with chunk count at roughly
constant stored bytes.
"""

import dataclasses

import pytest

from repro.bench import (
    ExperimentTable,
    bench_settings,
    build_cube_engine,
    query1_for,
    run_cold,
)
from repro.core import ChunkGeometry
from repro.data import dataset2

SETTINGS = bench_settings()
BASE = dataset2(SETTINGS.scale, densities=(0.10,))[0]
# sweep the 4th-dimension chunk width: wider chunks -> fewer chunks
WIDTHS = [50, 10, 2]


def config_for(width):
    chunk = BASE.chunk_shape[:3] + (width,)
    return dataclasses.replace(
        BASE, name=f"{BASE.name}_w{width}", chunk_shape=chunk
    )


CONFIGS = [config_for(w) for w in WIDTHS]


@pytest.fixture(scope="module")
def engines():
    return {c.name: build_cube_engine(c, SETTINGS) for c in CONFIGS}


@pytest.fixture(scope="module")
def table():
    t = ExperimentTable(
        "abl2",
        "Chunk-count effect: same data, varying chunk width",
        "n_chunks",
        expected="Query 1 cost rises with chunk count at ~constant bytes",
    )
    yield t
    t.save()


@pytest.mark.parametrize("config", CONFIGS, ids=lambda c: f"w{c.chunk_shape[-1]}")
def test_ablation_chunk_count(benchmark, engines, table, config):
    engine = engines[config.name]
    query = query1_for(config)
    result = benchmark.pedantic(
        lambda: run_cold(engine, query, "array"), rounds=2, iterations=1
    )
    n_chunks = ChunkGeometry(config.dim_sizes, config.chunk_shape).n_chunks
    table.add("query1_cost_s", n_chunks, result)
    table.add_value(
        "array_chunk_bytes",
        n_chunks,
        engine.storage_report(config.name)["array_chunks"],
    )
    benchmark.extra_info["n_chunks"] = n_chunks
    benchmark.extra_info["cost_s"] = result.cost_s
