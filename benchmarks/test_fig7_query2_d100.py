"""Figure 7 — Query 2 on the 40×40×40×100-shaped array.

Same selectivity sweep as Figure 6 on the smaller (80-chunk, 10 %-dense)
array.  Paper shape: as Figure 6 — array ahead at high selectivity, the
relational algorithm catching up as S shrinks.
"""

import pytest

from repro.bench import (
    ExperimentTable,
    bench_settings,
    build_cube_engine,
    query2_for,
    run_cold,
)
from repro.data import selectivity_configs

SETTINGS = bench_settings()
CONFIGS = selectivity_configs(SETTINGS.scale, fourth_dim="small")
SERIES = [
    ("array", "interpreted"),
    ("array", "vectorized"),
    ("bitmap", "interpreted"),
]


@pytest.fixture(scope="module")
def engines():
    return {c.name: build_cube_engine(c, SETTINGS) for c in CONFIGS}


@pytest.fixture(scope="module")
def table():
    t = ExperimentTable(
        "fig7",
        "Query 2 on the x100 array (selectivity sweep)",
        "S",
        expected="as fig6 on the 80-chunk array",
    )
    yield t
    t.save()


@pytest.mark.parametrize("series", SERIES, ids=lambda s: f"{s[0]}-{s[1]}")
@pytest.mark.parametrize("config", CONFIGS, ids=lambda c: c.name)
def test_fig7(benchmark, engines, table, config, series):
    backend, mode = series
    engine = engines[config.name]
    query = query2_for(config)
    result = benchmark.pedantic(
        lambda: run_cold(engine, query, backend, mode=mode),
        rounds=2,
        iterations=1,
    )
    selectivity = round((1 / config.fanout1) ** 4, 6)
    table.add(f"{backend}-{mode}", selectivity, result)
    benchmark.extra_info["cost_s"] = result.cost_s
