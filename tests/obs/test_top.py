"""Dashboard math: parsing a scrape back into quantiles, QPS, hit rates.

``repro top`` never sees registry objects — only exposition text — so
these tests round-trip: observe into a real registry, export with
:func:`prometheus_text`, parse with :class:`MetricsView`, and check the
derived numbers agree with the source histograms.
"""

import pytest

from repro.obs.exporters import prometheus_text
from repro.obs.registry import MetricsRegistry
from repro.obs.top import MetricsView, qps, render_dashboard
from repro.util.stats import Counters


def _registry(admitted: int = 40) -> MetricsRegistry:
    registry = MetricsRegistry()
    serve = Counters()
    serve.add("serve.admitted", admitted)
    serve.add("result_cache.hits", 30)
    serve.add("result_cache.misses", 10)
    registry.register("serve:service", serve)
    registry.register_gauge("serve.in_flight", lambda: 4.0)
    for i in range(100):
        registry.observe("serve.query_latency_seconds", 0.0001 * (i + 1))
    return registry


class TestMetricsView:
    def test_counters_summed_across_sources(self):
        registry = _registry()
        other = Counters()
        other.add("serve.admitted", 2)
        registry.register("serve:other", other)
        view = MetricsView.from_text(prometheus_text(registry))
        assert view.counter("repro_serve_admitted") == 42.0

    def test_gauges_and_missing_names(self):
        view = MetricsView.from_text(prometheus_text(_registry()))
        assert view.gauge("repro_serve_in_flight") == 4.0
        assert view.counter("repro_nope") == 0.0
        assert view.gauge("repro_nope") == 0.0
        assert view.quantile("repro_nope", 0.5) == 0.0

    def test_quantiles_survive_the_text_round_trip(self):
        """Scraped-and-parsed quantiles equal the source histogram's."""
        registry = _registry()
        histogram = registry.histogram("serve.query_latency_seconds")
        view = MetricsView.from_text(prometheus_text(registry))
        name = "repro_serve_query_latency_seconds"
        assert view.histogram_counts[name] == 100.0
        assert view.histogram_sums[name] == pytest.approx(histogram.sum)
        for q in (0.5, 0.95, 0.99):
            assert view.quantile(name, q) == pytest.approx(
                histogram.quantile(q)
            )

    def test_hit_rate(self):
        view = MetricsView.from_text(prometheus_text(_registry()))
        assert view.hit_rate(
            "repro_result_cache_hits", "repro_result_cache_misses"
        ) == pytest.approx(0.75)
        assert view.hit_rate("repro_none_hits", "repro_none_misses") == 0.0


class TestQps:
    def test_qps_from_counter_delta(self):
        before = MetricsView.from_text(prometheus_text(_registry(40)))
        after = MetricsView.from_text(prometheus_text(_registry(100)))
        assert qps(before, after, interval_s=2.0) == pytest.approx(30.0)

    def test_qps_never_negative_and_zero_interval_safe(self):
        before = MetricsView.from_text(prometheus_text(_registry(100)))
        after = MetricsView.from_text(prometheus_text(_registry(40)))
        assert qps(before, after, interval_s=2.0) == 0.0
        assert qps(before, after, interval_s=0.0) == 0.0


class TestRender:
    def test_dashboard_frame_headlines(self):
        view = MetricsView.from_text(prometheus_text(_registry()))
        frame = render_dashboard(None, view, interval_s=1.0)
        assert "query latency" in frame
        assert "p50" in frame and "p95" in frame and "p99" in frame
        assert "in-flight    4" in frame
        assert "result  75.0%" in frame
        # no WAL observations in this registry: the fsync line is absent
        assert "wal fsync" not in frame

    def test_dashboard_includes_wal_line_when_observed(self):
        registry = _registry()
        registry.observe("wal.fsync_seconds", 0.002)
        view = MetricsView.from_text(prometheus_text(registry))
        frame = render_dashboard(None, view, interval_s=1.0)
        assert "wal fsync" in frame


class TestMinimalRegistry:
    """A scrape without the serving families must degrade, not crash."""

    def _minimal_view(self) -> MetricsView:
        # an engine-only registry: one counter source, nothing else —
        # no serve histograms, no cache counters, no pool gauge
        registry = MetricsRegistry()
        registry.register("disk", Counters()).add("pages_read", 3)
        return MetricsView.from_text(prometheus_text(registry))

    def test_absent_families_render_as_dash(self):
        frame = render_dashboard(None, self._minimal_view(), interval_s=1.0)
        assert "—" in frame
        # absent latency families must not masquerade as 0.000ms
        assert "0.000ms" not in frame
        lines = frame.splitlines()
        latency = next(line for line in lines if "query latency" in line)
        assert latency.count("—") == 3  # p50, p95, p99
        cache = next(line for line in lines if "cache hit-rate" in line)
        assert cache.count("—") == 3  # result, chunk, pool

    def test_empty_scrape_renders(self):
        view = MetricsView.from_text(
            prometheus_text(MetricsRegistry())
        )
        frame = render_dashboard(None, view, interval_s=1.0)
        assert "qps" in frame and "—" in frame

    def test_present_families_still_render_numbers(self):
        view = MetricsView.from_text(prometheus_text(_registry()))
        frame = render_dashboard(None, view, interval_s=1.0)
        latency = next(
            line for line in frame.splitlines() if "query latency" in line
        )
        assert "—" not in latency
        assert "ms" in latency

    def test_quantile_with_only_inf_bucket_is_zero(self):
        view = MetricsView()
        view.histogram_buckets["h"] = {"+Inf": 5.0}
        view.histogram_counts["h"] = 5.0
        assert view.quantile("h", 0.5) == 0.0
