"""The distributed-trace layer: context identity, propagation, store.

The in-process :class:`Tracer` is covered by ``test_tracer.py``; this
file covers the cross-domain layer added on top — :class:`TraceContext`
minting/adoption, the thread-local ``trace_context`` installation and
its per-block link buffer, and the :class:`TraceStore` flight-recorder
contract (sampling policy, merge-by-trace_id, bounded ring).
"""

import re
import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.obs.tracing import (
    TraceContext,
    TraceStore,
    add_trace_link,
    adopt_trace_id,
    current_trace_context,
    current_trace_links,
    new_trace_context,
    trace_context,
)

HEX32 = re.compile(r"^[0-9a-f]{32}$")
HEX16 = re.compile(r"^[0-9a-f]{16}$")


class TestTraceContext:
    def test_mint_shapes_ids(self):
        ctx = new_trace_context(origin="test")
        assert HEX32.match(ctx.trace_id)
        assert HEX16.match(ctx.span_id)
        assert ctx.parent_span_id is None
        assert ctx.sampled
        assert ctx.origin == "test"

    def test_mints_are_unique(self):
        ids = {new_trace_context().trace_id for _ in range(64)}
        assert len(ids) == 64

    def test_child_keeps_trace_changes_span(self):
        root = new_trace_context(origin="api")
        child = root.child()
        assert child.trace_id == root.trace_id
        assert child.span_id != root.span_id
        assert child.parent_span_id == root.span_id
        assert child.sampled == root.sampled
        assert child.origin == "api"

    def test_dict_round_trip(self):
        ctx = new_trace_context(origin="service").child()
        assert TraceContext.from_dict(ctx.to_dict()) == ctx

    def test_adopt_normalizes_well_formed_ids(self):
        inbound = "AB" * 16
        ctx = adopt_trace_id(inbound, origin="api")
        assert ctx is not None
        assert ctx.trace_id == inbound.lower()
        assert ctx.sampled  # explicit ids are always kept

    @pytest.mark.parametrize(
        "bad",
        [None, "", "zz" * 16, "ab" * 8, "ab" * 17, "../../etc/passwd"],
    )
    def test_adopt_rejects_malformed_ids(self, bad):
        assert adopt_trace_id(bad) is None


class TestThreadLocalPropagation:
    def test_install_and_restore(self):
        assert current_trace_context() is None
        ctx = new_trace_context()
        with trace_context(ctx):
            assert current_trace_context() is ctx
        assert current_trace_context() is None

    def test_nested_blocks_restore_outer(self):
        outer, inner = new_trace_context(), new_trace_context()
        with trace_context(outer):
            with trace_context(inner):
                assert current_trace_context() is inner
            assert current_trace_context() is outer

    def test_links_are_per_block(self):
        with trace_context(new_trace_context()):
            add_trace_link("schedules", "ab" * 16, detail="outer")
            with trace_context(new_trace_context()):
                assert current_trace_links() == []
                add_trace_link("follows_from", "cd" * 16)
                assert len(current_trace_links()) == 1
            assert [link["detail"] for link in current_trace_links()] == [
                "outer"
            ]

    def test_links_noop_outside_any_context(self):
        add_trace_link("schedules", "ab" * 16)
        assert current_trace_links() == []

    def test_context_does_not_leak_across_threads(self):
        ctx = new_trace_context()
        seen = {}
        with trace_context(ctx):
            thread = threading.Thread(
                target=lambda: seen.update(other=current_trace_context())
            )
            thread.start()
            thread.join()
        assert seen["other"] is None

    def test_explicit_capture_survives_pool_hop(self):
        # the serving pattern: capture on the submitting thread, install
        # inside the worker
        ctx = new_trace_context()
        with ThreadPoolExecutor(max_workers=1) as pool:
            def work(captured):
                with trace_context(captured):
                    return current_trace_context().trace_id

            assert pool.submit(work, ctx).result() == ctx.trace_id


class TestTraceStoreSampling:
    def test_rate_one_always_samples(self):
        assert all(TraceStore(sample_rate=1.0).mint().sampled for _ in range(8))

    def test_rate_zero_never_samples(self):
        store = TraceStore(sample_rate=0.0)
        assert not any(store.mint().sampled for _ in range(8))

    def test_seeded_rate_is_deterministic(self):
        flips = []
        for _ in range(2):
            store = TraceStore(sample_rate=0.5, seed=42)
            flips.append(tuple(store.should_sample() for _ in range(32)))
        assert flips[0] == flips[1]
        assert True in flips[0] and False in flips[0]

    def test_sampled_out_trace_not_stored(self):
        store = TraceStore(sample_rate=0.0, slow_threshold_s=10.0)
        ctx = store.mint()
        assert not store.record(ctx, name="q", latency_s=0.001)
        assert store.get(ctx.trace_id) is None
        assert store.counters.snapshot()["traces.sampled_out"] == 1

    def test_slow_trace_kept_despite_sampling(self):
        store = TraceStore(sample_rate=0.0, slow_threshold_s=0.25)
        ctx = store.mint()
        assert store.record(ctx, name="q", latency_s=0.3)
        assert store.get(ctx.trace_id) is not None

    def test_error_trace_kept_despite_sampling(self):
        store = TraceStore(sample_rate=0.0, slow_threshold_s=10.0)
        ctx = store.mint()
        assert store.record(ctx, name="q", status="QueryError")
        assert store.get(ctx.trace_id).status == "QueryError"

    def test_force_keeps_fast_ok_unsampled(self):
        store = TraceStore(sample_rate=0.0, slow_threshold_s=10.0)
        ctx = store.mint()
        assert store.record(ctx, name="q", force=True)
        assert store.get(ctx.trace_id) is not None

    @pytest.mark.parametrize("rate", [-0.1, 1.5])
    def test_rate_validated(self, rate):
        with pytest.raises(ValueError):
            TraceStore(sample_rate=rate)

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            TraceStore(capacity=0)


class TestTraceStoreMerge:
    def test_contributions_merge_into_one_record(self):
        # the API handler and the query service both record the same
        # trace_id; the store must present one merged record
        store = TraceStore()
        ctx = store.mint(origin="api")
        store.record(
            ctx, name="GET /cube", latency_s=0.01,
            roots=[{"name": "api.request", "children": []}],
            attrs={"path": "/cube"},
        )
        store.record(
            ctx, name="query:c", origin="service", latency_s=0.008,
            roots=[{"name": "serve_query", "children": []}],
            attrs={"fingerprint": "abc"},
        )
        record = store.get(ctx.trace_id)
        assert record.name == "GET /cube"  # first writer names the trace
        assert record.origin == "api"
        assert [r["name"] for r in record.roots] == [
            "api.request", "serve_query",
        ]
        assert record.attrs == {"path": "/cube", "fingerprint": "abc"}
        assert record.latency_s == 0.01  # max of the contributions
        assert store.counters.snapshot()["traces.merged"] == 1

    def test_error_status_wins_over_ok(self):
        store = TraceStore()
        ctx = store.mint()
        store.record(ctx, status="QueryError")
        store.record(ctx, status="ok")
        assert store.get(ctx.trace_id).status == "QueryError"

    def test_links_deduplicate(self):
        store = TraceStore()
        ctx = store.mint()
        link = {"kind": "schedules", "trace_id": "ab" * 16, "detail": "d"}
        store.record(ctx, links=[link, dict(link)])
        store.record(ctx, links=[dict(link)])
        assert store.get(ctx.trace_id).links == [link]

    def test_retro_link_onto_resident_trace(self):
        store = TraceStore()
        ctx = store.mint()
        store.record(ctx)
        link = {"kind": "schedules", "trace_id": "cd" * 16, "detail": ""}
        assert store.link(ctx.trace_id, link)
        assert store.get(ctx.trace_id).links == [link]

    def test_link_onto_absent_trace_is_refused(self):
        assert not TraceStore().link("ab" * 16, {"kind": "x", "trace_id": "y"})


class TestTraceStoreRing:
    def test_eviction_drops_oldest(self):
        store = TraceStore(capacity=3)
        contexts = [store.mint() for _ in range(5)]
        for ctx in contexts:
            store.record(ctx)
        assert store.resident() == 3
        assert store.get(contexts[0].trace_id) is None
        assert store.get(contexts[-1].trace_id) is not None
        assert store.counters.snapshot()["traces.evicted"] == 2

    def test_merge_refreshes_recency(self):
        store = TraceStore(capacity=2)
        first, second, third = (store.mint() for _ in range(3))
        store.record(first)
        store.record(second)
        store.record(first)  # merge: first becomes most recent
        store.record(third)  # evicts second, not first
        assert store.get(first.trace_id) is not None
        assert store.get(second.trace_id) is None

    def test_index_newest_first(self):
        store = TraceStore()
        contexts = [store.mint() for _ in range(4)]
        for i, ctx in enumerate(contexts):
            store.record(ctx, name=f"q{i}")
        index = store.index(limit=2)
        assert [s["name"] for s in index] == ["q3", "q2"]

    def test_record_payload_shape(self):
        store = TraceStore()
        ctx = store.mint(origin="api")
        store.record(
            ctx, name="q", latency_s=0.01,
            roots=[{"name": "a", "children": [{"name": "b", "children": []}]}],
            links=[{"kind": "schedules", "trace_id": "ab" * 16}],
        )
        payload = store.get(ctx.trace_id).to_dict()
        assert payload["trace_id"] == ctx.trace_id
        assert payload["spans"] == 2
        summary = store.index()[0]
        assert summary["spans"] == 2 and summary["links"] == 1

    def test_concurrent_recording_is_bounded_and_clean(self):
        store = TraceStore(capacity=16)

        def hammer(_):
            for _ in range(50):
                store.record(store.mint(), name="q")

        with ThreadPoolExecutor(max_workers=4) as pool:
            list(pool.map(hammer, range(4)))
        assert store.resident() <= 16
        snapshot = store.counters.snapshot()
        assert snapshot["traces.stored"] == 200
