"""End-to-end tracing: span totals must equal the cold-run cost report.

The simulated disk is deterministic, so a traced cold run and an
untraced cold run of the same query account identical I/O — the root
span's inclusive counter deltas ARE the query's ``stats``, and the
exclusive per-phase shares telescope back to that total exactly.
"""

import pytest

from repro.bench import (
    bench_settings,
    build_cube_engine,
    query1_for,
    query2_for,
    run_cold,
    run_cold_traced,
)
from repro.bench.report import write_trace
from repro.data import SyntheticCubeConfig
from repro.obs import get_tracer, trace_from_json

TINY = SyntheticCubeConfig(
    name="tiny",
    dim_sizes=(6, 6, 6, 10),
    n_valid=150,
    chunk_shape=(3, 3, 3, 5),
    fanout1=3,
)


@pytest.fixture(scope="module")
def engine():
    return build_cube_engine(
        TINY, bench_settings("small"), fact_btrees=True, fact_mbtree=True
    )


BACKENDS = ["array", "bitmap", "btree", "mbtree"]


class TestTraceEqualsCostReport:
    def test_query1_array_root_io_equals_stats(self, engine):
        result, root = run_cold_traced(engine, query1_for(TINY), "array")
        assert root.name == "query"
        assert root.attrs["backend"] == "array"
        assert root.io == result.stats

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_query2_root_io_equals_stats_per_backend(self, engine, backend):
        result, root = run_cold_traced(engine, query2_for(TINY), backend)
        assert root.io == result.stats

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_leaf_totals_telescope_to_root(self, engine, backend):
        _, root = run_cold_traced(engine, query2_for(TINY), backend)
        assert root.leaf_io_totals() == root.io

    def test_traced_run_matches_untraced_run(self, engine):
        query = query2_for(TINY)
        plain = run_cold(engine, query, "array")
        traced, root = run_cold_traced(engine, query, "array")
        assert traced.rows == plain.rows
        assert root.io == plain.stats
        assert traced.sim_io_s == plain.sim_io_s

    def test_phases_present_for_selection_query(self, engine):
        _, root = run_cold_traced(engine, query2_for(TINY), "array")
        for phase in (
            "resolve_mappings", "btree_dimension_lookup", "probe_chunks",
            "extract_rows",
        ):
            assert root.find(phase) is not None, phase

    def test_starjoin_phases(self, engine):
        _, root = run_cold_traced(engine, query1_for(TINY), "starjoin")
        for phase in ("build_dimension_hashes", "scan_fact", "finalize_groups"):
            assert root.find(phase) is not None, phase


class TestDisabledByDefault:
    def test_untraced_query_records_nothing(self, engine):
        assert not get_tracer().enabled
        result = run_cold(engine, query1_for(TINY), "array")
        assert result.rows  # ran fine with the no-op tracer

    def test_registry_sources_cover_storage_stack(self, engine):
        names = engine.db.metrics.source_names()
        assert "disk" in names
        assert "pool" in names
        assert any(n.startswith("fact:") for n in names)
        assert any(n.startswith("array:") for n in names)


class TestTraceArtifact:
    def test_write_trace_round_trips(self, engine, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
        _, root = run_cold_traced(engine, query1_for(TINY), "array")
        path = write_trace("tiny_experiment", root)
        assert path.endswith("tiny_experiment.trace.json")
        spans = trace_from_json(open(path, encoding="utf-8").read())
        assert spans[0].io == root.io
