"""Watch-frame rendering over /timeseries payloads (no live endpoint)."""

from repro.obs import ObservabilityServer, TimeSeriesStore
from repro.obs.registry import MetricsRegistry
from repro.obs.watch import (
    _headline,
    _series_values,
    render_watch_frame,
    watch_frame,
)
from repro.util.stats import Counters


def _counter_payload():
    return {
        "metric": "serve.admitted",
        "kind": "counter",
        "points": [{"t": 1.0, "delta": 5.0}, {"t": 2.0, "delta": 7.0}],
        "rate_per_s": 6.0,
    }


def _gauge_payload():
    return {
        "metric": "serve.in_flight",
        "kind": "gauge",
        "points": [{"t": 1.0, "value": 2.0}, {"t": 2.0, "value": 3.0}],
    }


def _histogram_payload(quantile_s=0.025, observations=40):
    return {
        "metric": "serve.query_latency_seconds",
        "kind": "histogram",
        "quantile": 0.95,
        "points": [{"t": 2.0, "value": 0.02}],
        "window_quantile_s": quantile_s,
        "window_observations": observations,
    }


class TestSeriesAndHeadlines:
    def test_counters_plot_deltas(self):
        assert _series_values(_counter_payload()) == [5.0, 7.0]

    def test_gauges_plot_values(self):
        assert _series_values(_gauge_payload()) == [2.0, 3.0]

    def test_counter_headline_is_the_rate(self):
        assert "/s" in _headline(_counter_payload())

    def test_gauge_headline_is_the_latest_sample(self):
        assert "now" in _headline(_gauge_payload())

    def test_histogram_headline_has_quantile_and_count(self):
        line = _headline(_histogram_payload())
        assert "p95" in line
        assert "25.000ms" in line
        assert "(40 obs)" in line

    def test_idle_histogram_headline(self):
        line = _headline(_histogram_payload(quantile_s=None, observations=0))
        assert line == "(0 obs in window)"


class TestRenderFrame:
    def test_rows_sparkline_and_absent_metrics(self):
        frame = render_watch_frame(
            [
                ("admitted", _counter_payload()),
                ("engine p95", None),
            ],
            alerts=None,
        )
        lines = frame.splitlines()
        assert lines[0].startswith("admitted")
        assert "▁" in lines[0] or "█" in lines[0]
        assert lines[1] == "engine p95     (not exported)"

    def test_firing_alerts_line(self):
        frame = render_watch_frame(
            [], alerts={"firing": [{"rule": "serve-latency-p99"}], "events": []}
        )
        assert "ALERTS FIRING: serve-latency-p99" in frame

    def test_quiet_alerts_line_counts_transitions(self):
        frame = render_watch_frame(
            [], alerts={"firing": [], "events": [{}, {}]}
        )
        assert "alerts: none firing (2 transitions logged)" in frame


class TestLiveFrame:
    def test_watch_frame_against_a_real_endpoint(self):
        registry = MetricsRegistry()
        registry.register("serve", Counters())
        registry.counters("serve").add("serve.admitted", 3)
        registry.observe("serve.query_latency_seconds", 0.01)
        tsdb = TimeSeriesStore(registry)
        tsdb.sample()
        registry.counters("serve").add("serve.admitted", 2)
        registry.observe("serve.query_latency_seconds", 0.02)
        tsdb.sample()
        with ObservabilityServer(registry, timeseries=tsdb) as server:
            frame = watch_frame(server.url)
        # exported metrics render rows; never-exported ones say so; the
        # detached server has no alert manager, so no alerts line
        assert "query p95" in frame
        assert "admitted" in frame
        assert "(not exported)" in frame
        assert "ALERTS" not in frame
