"""Memory observatory unit tests: ``deep_sizeof`` measurement, the
:class:`MemoryAccountant` ledger, the share-respecting two-pass reclaim
coordinator, the per-store reclaim hooks, and the ``repro top`` MEM
panel's ABSENT degradation."""

import numpy as np
import pytest

from repro.obs.memory import MemoryAccountant, deep_sizeof
from repro.obs.registry import MetricsRegistry
from repro.obs.slowlog import SlowQueryLog
from repro.obs.top import MetricsView, render_dashboard
from repro.obs.tracing import TraceStore, new_trace_context


class TestDeepSizeof:
    def test_scalars_positive(self):
        assert deep_sizeof(1) > 0
        assert deep_sizeof("hello") > 0
        assert deep_sizeof(None) > 0

    def test_containers_descend(self):
        payload = "x" * 4096
        assert deep_sizeof([payload]) > 4096
        assert deep_sizeof({"k": payload}) > 4096
        assert deep_sizeof((payload,)) > 4096

    def test_numpy_charged_buffer_bytes(self):
        array = np.zeros(1024, dtype=np.int64)
        measured = deep_sizeof(array)
        assert measured >= array.nbytes
        # charged directly, not walked element by element
        assert measured < array.nbytes + 1024

    def test_shared_subobject_charged_once(self):
        shared = np.zeros(1024, dtype=np.int64)
        both = deep_sizeof([shared, shared])
        assert both < 2 * shared.nbytes

    def test_cycle_safe(self):
        a: list = []
        a.append(a)
        assert deep_sizeof(a) > 0

    def test_object_dict_descends(self):
        class Holder:
            def __init__(self):
                self.blob = "y" * 8192

        assert deep_sizeof(Holder()) > 8192


class _FakeStore:
    """An in-memory byte bucket with the reclaim contract."""

    def __init__(self, nbytes: int):
        self.nbytes = float(nbytes)
        self.reclaims: list[int] = []

    def usage(self) -> float:
        return self.nbytes

    def reclaim(self, target_bytes: int) -> int:
        self.reclaims.append(target_bytes)
        freed = max(0, int(self.nbytes) - target_bytes)
        self.nbytes -= freed
        return freed


class TestAccountant:
    def test_total_is_sum_of_store_callbacks(self):
        accountant = MemoryAccountant()
        accountant.register_store("a", lambda: 100.0)
        accountant.register_store("b", lambda: 250.0)
        assert accountant.usage_by_store() == {"a": 100, "b": 250}
        assert accountant.total_resident_bytes() == 350.0

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError):
            MemoryAccountant(budget_bytes=-1)

    def test_register_is_idempotent_and_unregister_forgets(self):
        accountant = MemoryAccountant()
        accountant.register_store("a", lambda: 1.0)
        accountant.register_store("a", lambda: 2.0)
        assert accountant.usage_by_store() == {"a": 2}
        accountant.unregister_store("a")
        accountant.unregister_store("missing")  # ignored
        assert accountant.usage_by_store() == {}

    def test_gauges_exported_through_registry(self):
        registry = MetricsRegistry()
        accountant = MemoryAccountant(registry)
        accountant.register_store("cachey", lambda: 512.0)
        gauges = registry.gauge_values()
        assert gauges["memory.total_resident_bytes"] == 512.0
        assert gauges["memory.cachey.resident_bytes"] == 512.0

    def test_unregister_freezes_gauge_at_zero(self):
        registry = MetricsRegistry()
        accountant = MemoryAccountant(registry)
        accountant.register_store("cachey", lambda: 512.0)
        accountant.unregister_store("cachey")
        gauges = registry.gauge_values()
        assert gauges["memory.cachey.resident_bytes"] == 0.0
        assert gauges["memory.total_resident_bytes"] == 0.0

    def test_close_freezes_everything(self):
        registry = MetricsRegistry()
        accountant = MemoryAccountant(registry)
        accountant.register_store("cachey", lambda: 512.0)
        accountant.close()
        assert accountant.store_names() == []
        assert registry.gauge_values()["memory.total_resident_bytes"] == 0.0

    def test_top_entries_merge_sorted_across_stores(self):
        accountant = MemoryAccountant()
        accountant.register_store(
            "a",
            lambda: 0.0,
            top_entries=lambda n: [{"key": "a1", "bytes": 10}],
        )
        accountant.register_store(
            "b",
            lambda: 0.0,
            top_entries=lambda n: [
                {"key": "b1", "bytes": 30},
                {"key": "b2", "bytes": 20},
            ],
        )
        merged = accountant.top_entries(2)
        assert [(e["store"], e["key"], e["bytes"]) for e in merged] == [
            ("b", "b1", 30),
            ("b", "b2", 20),
        ]

    def test_payload_shape(self):
        accountant = MemoryAccountant(budget_bytes=1000)
        accountant.register_store("a", lambda: 100.0)
        payload = accountant.payload()
        assert payload["budget_bytes"] == 1000
        assert payload["total_resident_bytes"] == 100
        assert payload["stores"] == {"a": 100}
        assert payload["top_entries"] == []
        assert payload["counters"] == {}


class TestReclaim:
    def test_unbudgeted_never_reclaims(self):
        accountant = MemoryAccountant()
        store = _FakeStore(10_000)
        accountant.register_store(
            "a", store.usage, reclaim=store.reclaim, cost_rank=0
        )
        assert accountant.maybe_reclaim("test") == 0
        assert store.reclaims == []

    def test_under_budget_is_a_noop(self):
        accountant = MemoryAccountant(budget_bytes=100_000)
        store = _FakeStore(10_000)
        accountant.register_store(
            "a", store.usage, reclaim=store.reclaim, cost_rank=0
        )
        assert accountant.maybe_reclaim("test") == 0
        assert accountant.counters.get("memory.pressure_events") == 0

    def test_cheapest_store_reclaimed_first(self):
        accountant = MemoryAccountant(budget_bytes=1_500)
        cheap, pricey = _FakeStore(1_000), _FakeStore(1_000)
        accountant.register_store(
            "pricey", pricey.usage, reclaim=pricey.reclaim, cost_rank=5
        )
        accountant.register_store(
            "cheap", cheap.usage, reclaim=cheap.reclaim, cost_rank=0
        )
        freed = accountant.maybe_reclaim("test")
        assert freed == 500
        assert cheap.nbytes == 500  # overshoot came out of rank 0
        assert pricey.nbytes == 1_000
        assert pricey.reclaims == []

    def test_pass_one_respects_share_floor(self):
        # budget 1000, store share 0.5 -> floor 500; a 400-byte
        # overshoot in an unreclaimable store cannot push "a" below it
        accountant = MemoryAccountant(budget_bytes=1_000)
        store = _FakeStore(800)
        accountant.register_store(
            "a", store.usage, reclaim=store.reclaim, cost_rank=0, share=0.5
        )
        accountant.register_store("fixed", lambda: 600.0)
        accountant.maybe_reclaim("test")
        # pass 1 stops at the floor; pass 2 then reclaims the rest
        assert store.reclaims[0] == 500
        assert store.nbytes == 400  # 800+600 total, budget 1000

    def test_pass_two_ignores_shares_when_still_over(self):
        accountant = MemoryAccountant(budget_bytes=1_000)
        store = _FakeStore(500)
        accountant.register_store(
            "a", store.usage, reclaim=store.reclaim, cost_rank=0, share=1.0
        )
        accountant.register_store("fixed", lambda: 1_200.0)
        freed = accountant.maybe_reclaim("test")
        # overshoot 700 > the whole store; pass 1 skips (under its
        # share floor), pass 2 empties it
        assert freed == 500
        assert store.nbytes == 0

    def test_counters_track_pressure_and_bytes(self):
        accountant = MemoryAccountant(budget_bytes=500)
        store = _FakeStore(900)
        accountant.register_store(
            "a", store.usage, reclaim=store.reclaim, cost_rank=0
        )
        accountant.maybe_reclaim("test")
        assert accountant.counters.get("memory.pressure_events") == 1
        assert accountant.counters.get("memory.reclaimed_bytes") == 400

    def test_sample_enforces_then_reads(self):
        accountant = MemoryAccountant(budget_bytes=500)
        store = _FakeStore(2_000)
        accountant.register_store(
            "a", store.usage, reclaim=store.reclaim, cost_rank=0
        )
        snap = accountant.sample("test")
        assert snap["total_resident_bytes"] <= 500
        assert snap["reclaimed_bytes"] == 1_500


class TestStoreReclaimHooks:
    def test_slowlog_reclaim_drops_oldest_first(self):
        log = SlowQueryLog(capacity=16, threshold_s=0.0)
        for i in range(6):
            log.record(f"fp{i}", "cube", "array", latency_s=1.0)
        before = log.resident_bytes()
        freed = log.reclaim(before // 2)
        assert freed > 0
        assert log.resident_bytes() <= before // 2
        assert log.entries()[0].fingerprint != "fp0"  # oldest went first
        assert log.reclaim(before) == 0  # already under target

    def test_slowlog_reclaim_to_zero_empties_ring(self):
        log = SlowQueryLog(capacity=16, threshold_s=0.0)
        for i in range(4):
            log.record(f"fp{i}", "cube", "array", latency_s=1.0)
        log.reclaim(0)
        assert len(log) == 0
        assert log.resident_bytes() == 0

    def test_trace_store_reclaim_drops_oldest(self):
        store = TraceStore(capacity=64, sample_rate=1.0)
        contexts = [new_trace_context() for _ in range(6)]
        for i, ctx in enumerate(contexts):
            store.record(ctx, name=f"t{i}", attrs={"blob": "z" * 2048})
        before = store.resident_bytes()
        freed = store.reclaim(before // 2)
        assert freed > 0
        assert store.resident_bytes() <= before // 2
        assert store.get(contexts[0].trace_id) is None  # oldest evicted
        assert store.get(contexts[-1].trace_id) is not None

    def test_trace_store_incremental_sizes_track_merges(self):
        store = TraceStore(capacity=8, sample_rate=1.0)
        ctx = new_trace_context()
        store.record(ctx, name="t")
        first = store.resident_bytes()
        store.record(ctx, attrs={"extra": "w" * 4096})
        assert store.resident_bytes() > first + 4096

    def test_plan_cache_reclaim_is_lru(self):
        from repro.obs.explain import PlanCache

        cache = PlanCache(capacity=16)
        for i in range(4):
            cache.put(f"fp{i}", {"plan": "p" * 1024, "i": i})
        cache.get("fp0")  # refresh fp0 so fp1 is the LRU victim
        before = cache.resident_bytes()
        freed = cache.reclaim(before // 2)
        assert freed > 0
        assert cache.resident_bytes() <= before // 2
        assert cache.get("fp1") is None


class TestTopMemPanel:
    ABSENT = "—"

    def test_panel_renders_resident_gauges(self):
        view = MetricsView(
            gauges={
                "repro_memory_total_resident_bytes": 3 * 1024 * 1024,
                "repro_memory_buffer_pool_resident_bytes": 1024.0,
                "repro_memory_chunk_cache_resident_bytes": 2048.0,
                "repro_memory_result_cache_resident_bytes": 512.0,
                "repro_memory_rollup_grains_resident_bytes": 0.0,
            }
        )
        frame = render_dashboard(None, view, 1.0)
        mem_line = next(
            line for line in frame.splitlines()
            if line.startswith("mem resident")
        )
        assert "3.0MiB" in mem_line
        assert self.ABSENT not in mem_line

    def test_absent_gauges_render_dash_not_zero(self):
        frame = render_dashboard(None, MetricsView(), 1.0)
        mem_line = next(
            line for line in frame.splitlines()
            if line.startswith("mem resident")
        )
        assert self.ABSENT in mem_line
        assert "0B" not in mem_line

    def test_pressure_line_only_when_counter_present(self):
        quiet = render_dashboard(None, MetricsView(), 1.0)
        assert "mem pressure" not in quiet
        view = MetricsView(
            counters={
                "repro_memory_pressure_events": 3.0,
                "repro_memory_reclaimed_bytes": 4096.0,
            }
        )
        noisy = render_dashboard(None, view, 1.0)
        pressure = next(
            line for line in noisy.splitlines()
            if line.startswith("mem pressure")
        )
        assert "events 3" in pressure
        assert "4.0KiB" in pressure
