"""TimeSeriesStore: snapshots, reset-aware deltas, windowed quantiles."""

import time

import pytest

from repro.errors import MetricsError
from repro.obs.registry import MetricsRegistry
from repro.obs.timeseries import TimePoint, TimeSeriesStore, _counter_delta
from repro.util.stats import Counters


@pytest.fixture
def registry():
    registry = MetricsRegistry()
    registry.register("svc", Counters())
    return registry


def _bump(registry, name, amount=1.0):
    registry.counters("svc").add(name, amount)


class TestSampling:
    def test_sample_snapshots_counters_gauges_histograms(self, registry):
        registry.register_gauge("depth", lambda: 4.0)
        registry.observe("lat_seconds", 0.01)
        _bump(registry, "requests", 3)
        store = TimeSeriesStore(registry)
        point = store.sample(now=100.0)
        assert point.t == 100.0
        assert point.epoch == 0
        assert point.counters["requests"] == 3.0
        assert point.gauges["depth"] == 4.0
        bounds, counts, total_sum, count = point.histograms["lat_seconds"]
        assert count == 1
        assert sum(counts) == 1
        assert len(counts) == len(bounds) + 1  # overflow bucket rides along

    def test_capacity_bounds_the_ring_but_not_samples_taken(self, registry):
        store = TimeSeriesStore(registry, capacity=3)
        for i in range(10):
            store.sample(now=float(i))
        assert len(store) == 3
        assert store.samples_taken == 10
        assert [p.t for p in store.points()] == [7.0, 8.0, 9.0]

    def test_capacity_below_two_rejected(self, registry):
        with pytest.raises(MetricsError):
            TimeSeriesStore(registry, capacity=1)

    def test_points_window_selects_trailing_seconds(self, registry):
        store = TimeSeriesStore(registry)
        for t in (0.0, 10.0, 20.0, 30.0):
            store.sample(now=t)
        assert [p.t for p in store.points(10.0)] == [20.0, 30.0]
        assert [p.t for p in store.points(None)] == [0.0, 10.0, 20.0, 30.0]

    def test_metric_names_reports_kinds(self, registry):
        registry.register_gauge("depth", lambda: 1.0)
        registry.observe("lat_seconds", 0.01)
        _bump(registry, "requests")
        store = TimeSeriesStore(registry)
        assert store.metric_names() == {}  # nothing sampled yet
        store.sample(now=0.0)
        names = store.metric_names()
        assert names["requests"] == "counter"
        assert names["depth"] == "gauge"
        assert names["lat_seconds"] == "histogram"


class TestCounterMath:
    def test_counter_delta_and_rate(self, registry):
        store = TimeSeriesStore(registry)
        store.sample(now=0.0)
        _bump(registry, "requests", 10)
        store.sample(now=5.0)
        _bump(registry, "requests", 20)
        store.sample(now=10.0)
        assert store.counter_delta("requests", 100.0) == 30.0
        assert store.counter_rate("requests", 100.0) == pytest.approx(3.0)
        series = store.counter_series("requests")
        assert series == [(5.0, 10.0), (10.0, 20.0)]

    def test_delta_across_reset_epoch_never_negative(self, registry):
        store = TimeSeriesStore(registry)
        _bump(registry, "requests", 100)
        store.sample(now=0.0)
        registry.reset_all()  # cold-run boundary zeroes the bag
        _bump(registry, "requests", 7)
        store.sample(now=1.0)
        # raw difference would be 7 - 100 = -93; the epoch bump credits
        # what accumulated since the reset instead
        assert store.counter_delta("requests", 100.0) == 7.0

    def test_epoch_race_clamps_to_zero(self):
        # reset_all bumps the epoch before zeroing: a sample landing in
        # between can carry (new epoch, old value); the next delta must
        # clamp at the newer absolute value, never go negative
        older = TimePoint(t=0.0, epoch=1, counters={"c": 50.0})
        newer = TimePoint(t=1.0, epoch=1, counters={"c": 3.0})
        assert _counter_delta(older, newer, "c") == 0.0

    def test_window_ratio_hit_rate_shape(self, registry):
        store = TimeSeriesStore(registry)
        store.sample(now=0.0)
        _bump(registry, "hits", 30)
        _bump(registry, "misses", 10)
        store.sample(now=1.0)
        assert store.window_ratio("hits", "misses", 100.0) == pytest.approx(0.75)

    def test_window_ratio_none_when_empty(self, registry):
        store = TimeSeriesStore(registry)
        store.sample(now=0.0)
        store.sample(now=1.0)
        assert store.window_ratio("hits", "misses", 100.0) is None


class TestHistogramWindows:
    def test_window_quantile_covers_only_the_window(self, registry):
        # 100 fast observations before the window, 10 slow ones inside:
        # the whole-life p50 is fast, the windowed p50 must be slow
        for _ in range(100):
            registry.observe("lat_seconds", 0.001)
        store = TimeSeriesStore(registry)
        store.sample(now=0.0)
        for _ in range(10):
            registry.observe("lat_seconds", 2.0)
        store.sample(now=5.0)
        windowed = store.window_quantile("lat_seconds", 0.5, 10.0)
        assert windowed is not None and windowed > 1.0
        assert store.window_count("lat_seconds", 10.0) == 10

    def test_window_quantile_none_without_observations(self, registry):
        registry.observe("lat_seconds", 0.001)
        store = TimeSeriesStore(registry)
        store.sample(now=0.0)
        store.sample(now=5.0)  # no new observations in between
        assert store.window_quantile("lat_seconds", 0.99, 10.0) is None
        assert store.window_count("lat_seconds", 10.0) == 0

    def test_histograms_survive_cold_resets(self, registry):
        registry.observe("lat_seconds", 0.01)
        store = TimeSeriesStore(registry)
        store.sample(now=0.0)
        registry.reset_all()  # histograms are cumulative: not zeroed
        registry.observe("lat_seconds", 0.02)
        store.sample(now=1.0)
        assert store.window_count("lat_seconds", 10.0) == 1

    def test_quantile_series_skips_idle_intervals(self, registry):
        store = TimeSeriesStore(registry)
        registry.observe("lat_seconds", 0.01)
        store.sample(now=0.0)
        store.sample(now=1.0)  # idle interval
        registry.observe("lat_seconds", 0.02)
        store.sample(now=2.0)
        series = store.quantile_series("lat_seconds", 0.5)
        assert [t for t, _ in series] == [2.0]


class TestSeriesPayload:
    def test_counter_payload(self, registry):
        store = TimeSeriesStore(registry)
        store.sample(now=0.0)
        _bump(registry, "requests", 5)
        store.sample(now=1.0)
        payload = store.series_payload("requests", window_s=60.0)
        assert payload["kind"] == "counter"
        assert payload["points"] == [{"t": 1.0, "delta": 5.0}]
        assert payload["rate_per_s"] == pytest.approx(5.0)

    def test_histogram_payload(self, registry):
        store = TimeSeriesStore(registry)
        registry.observe("lat_seconds", 0.01)
        store.sample(now=0.0)
        registry.observe("lat_seconds", 0.04)
        store.sample(now=1.0)
        payload = store.series_payload("lat_seconds", window_s=60.0, q=0.5)
        assert payload["kind"] == "histogram"
        assert payload["window_observations"] == 1
        assert payload["window_quantile_s"] is not None

    def test_unknown_metric_returns_none(self, registry):
        store = TimeSeriesStore(registry)
        store.sample(now=0.0)
        assert store.series_payload("no-such-metric") is None


class TestBackgroundSampler:
    def test_sampler_thread_samples_and_runs_hooks(self, registry):
        store = TimeSeriesStore(registry)
        seen = []
        store.start(0.01, hooks=(seen.append,))
        try:
            deadline = time.time() + 2.0
            while store.samples_taken < 3 and time.time() < deadline:
                time.sleep(0.01)
        finally:
            store.stop()
        assert store.samples_taken >= 3
        assert len(seen) >= 3
        assert all(isinstance(point, TimePoint) for point in seen)

    def test_hook_exceptions_do_not_kill_the_sampler(self, registry):
        store = TimeSeriesStore(registry)

        def broken(point):
            raise RuntimeError("bad rule")

        store.start(0.01, hooks=(broken,))
        try:
            deadline = time.time() + 2.0
            while store.samples_taken < 3 and time.time() < deadline:
                time.sleep(0.01)
        finally:
            store.stop()
        assert store.samples_taken >= 3

    def test_nonpositive_interval_rejected(self, registry):
        with pytest.raises(MetricsError):
            TimeSeriesStore(registry).start(0.0)
