"""Tests for the JSON, text-tree, and Prometheus exporters."""

from repro.obs import (
    MetricsRegistry,
    Tracer,
    prometheus_text,
    render_span_tree,
    span_from_dict,
    span_to_dict,
    trace_from_json,
    trace_to_json,
)
from repro.util.stats import Counters


def sample_tree():
    registry = MetricsRegistry()
    bag = registry.register("bag", Counters())
    tracer = Tracer(registry=registry)
    with tracer.span("query", backend="array") as root:
        bag.add("pages_read", 4)
        with tracer.span("scan_chunks", chunks=2):
            bag.add("pages_read", 3)
            bag.add("sim_io_s", 0.25)
        with tracer.span("extract_rows"):
            pass
    return root


class TestJsonRoundTrip:
    def test_span_dict_round_trip(self):
        root = sample_tree()
        rebuilt = span_from_dict(span_to_dict(root))
        assert span_to_dict(rebuilt) == span_to_dict(root)

    def test_trace_json_round_trip(self):
        root = sample_tree()
        spans = trace_from_json(trace_to_json([root]))
        assert len(spans) == 1
        again = spans[0]
        assert again.name == "query"
        assert again.attrs == {"backend": "array"}
        assert again.io == root.io
        assert [c.name for c in again.children] == [
            "scan_chunks", "extract_rows",
        ]
        # the telescoping invariant survives serialization
        assert again.leaf_io_totals() == again.io

    def test_single_span_accepted(self):
        root = sample_tree()
        assert trace_to_json(root) == trace_to_json([root])


class TestTextTree:
    def test_renders_connectors_and_counters(self):
        text = render_span_tree(sample_tree())
        lines = text.splitlines()
        assert lines[0].startswith("query")
        assert "backend=array" in lines[0]
        assert any(line.startswith("├─ scan_chunks") for line in lines)
        assert any(line.startswith("└─ extract_rows") for line in lines)
        assert "pages_read=7" in lines[0]  # inclusive of the child

    def test_max_counters_truncates(self):
        root = sample_tree()
        root.io = {f"c{i}": float(i + 1) for i in range(12)}
        text = render_span_tree(root, max_counters=3)
        assert "..." in text.splitlines()[0]


class TestPrometheus:
    def test_counters_and_gauges_rendered(self):
        registry = MetricsRegistry()
        registry.register("disk", Counters()).add("pages_read", 4)
        registry.register("pool", Counters()).add("pool_hits", 2)
        registry.register_gauge("pool_hit_rate", lambda: 0.5)
        text = prometheus_text(registry)
        assert "# TYPE repro_pages_read_total counter" in text
        assert 'repro_pages_read_total{source="disk"} 4' in text
        assert 'repro_pool_hits_total{source="pool"} 2' in text
        assert "# TYPE repro_pool_hit_rate gauge" in text
        assert "repro_pool_hit_rate 0.5" in text

    def test_source_names_escaped_not_sanitized(self):
        # label *values* carry the source name verbatim (the exposition
        # format allows any UTF-8 there); only metric names get sanitized
        registry = MetricsRegistry()
        registry.register("fact:ds1.fact", Counters()).add("gets", 1)
        text = prometheus_text(registry)
        assert 'source="fact:ds1.fact"' in text

    def test_label_values_escape_specials(self):
        registry = MetricsRegistry()
        registry.register('we"ird\\nam\ne', Counters()).add("gets", 1)
        text = prometheus_text(registry)
        assert 'source="we\\"ird\\\\nam\\ne"' in text


class TestEscapingRoundTrip:
    """Exporter escaping must invert exactly through the parser.

    Escaping alone is not enough — a scrape consumer sees the *parsed*
    label value, so each special character has to survive
    ``prometheus_text`` → ``parse_prometheus_text`` unchanged.
    """

    def _round_trip(self, source_name: str) -> str:
        from repro.obs import parse_prometheus_text

        registry = MetricsRegistry()
        registry.register(source_name, Counters()).add("gets", 1)
        samples, _ = parse_prometheus_text(prometheus_text(registry))
        labelled = [s for s in samples if "source" in s.labels]
        assert len(labelled) == 1
        return labelled[0].labels["source"]

    def test_newline_survives(self):
        assert self._round_trip("line\none") == "line\none"

    def test_backslash_survives(self):
        assert self._round_trip("back\\slash") == "back\\slash"

    def test_double_quote_survives(self):
        assert self._round_trip('quo"ted') == 'quo"ted'

    def test_all_specials_together_survive(self):
        gnarly = 'a\\n"b"\n\\\\c\\"'
        assert self._round_trip(gnarly) == gnarly

    def test_literal_backslash_n_is_not_a_newline(self):
        # the sequence backslash-then-n in the *raw* value must not
        # collapse into a newline after the round trip
        assert self._round_trip("not\\newline") == "not\\newline"
        assert self._round_trip("not\\newline") != "not\newline"

    def test_lint_accepts_escaped_output(self):
        from repro.obs import lint_prometheus_text

        registry = MetricsRegistry()
        registry.register('we"ird\\nam\ne', Counters()).add("gets", 1)
        lint_prometheus_text(prometheus_text(registry))
