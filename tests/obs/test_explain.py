"""Unit tests for the EXPLAIN plan model, rendering and plan cache."""

import json

import pytest

from repro.obs.explain import (
    MISESTIMATE_FACTOR_THRESHOLD,
    PlanCache,
    PlanNode,
    QueryPlan,
    attach_actuals,
    render_plan,
)
from repro.obs.tracer import Tracer


def _tree():
    root = PlanNode("array.query", span="query", detail={"cube": "c"})
    scan = root.add(
        PlanNode(
            "array.scan_chunks",
            span="scan_chunks",
            estimates={"chunks_read": 8, "cells_scanned": 100},
        )
    )
    root.add(PlanNode("array.extract_rows"))
    return root, scan


class TestPlanNode:
    def test_walk_is_depth_first_and_inclusive(self):
        root, _ = _tree()
        assert [n.op for n in root.walk()] == [
            "array.query", "array.scan_chunks", "array.extract_rows",
        ]

    def test_misestimates_empty_before_analyze(self):
        _, scan = _tree()
        assert scan.misestimates() == {}
        assert scan.worst_misestimate() is None

    def test_misestimate_ratio_is_add_one_smoothed(self):
        _, scan = _tree()
        scan.actuals = {"chunks_read": 8, "cells_scanned": 49}
        ratios = scan.misestimates()
        assert ratios["chunks_read"] == pytest.approx(1.0)
        assert ratios["cells_scanned"] == pytest.approx(50.0 / 101.0)
        # worst is symmetric: an over-estimate counts like an under-estimate
        assert scan.worst_misestimate() == pytest.approx(101.0 / 50.0)

    def test_zero_estimate_stays_finite(self):
        node = PlanNode("x", estimates={"skips": 0})
        node.actuals = {"skips": 3}
        assert node.misestimates()["skips"] == pytest.approx(4.0)

    def test_missing_actual_counter_reads_as_zero(self):
        node = PlanNode("x", estimates={"probes": 4})
        node.actuals = {}
        assert node.misestimates()["probes"] == pytest.approx(1.0 / 5.0)

    def test_dict_round_trip_preserves_analysis(self):
        root, scan = _tree()
        scan.actuals = {"chunks_read": 9, "cells_scanned": 100}
        scan.duration_s = 0.005
        clone = PlanNode.from_dict(json.loads(json.dumps(root.to_dict())))
        assert [n.op for n in clone.walk()] == [n.op for n in root.walk()]
        cloned_scan = clone.children[0]
        assert cloned_scan.actuals == {"chunks_read": 9, "cells_scanned": 100}
        assert cloned_scan.worst_misestimate() == scan.worst_misestimate()
        # the unanalyzed sibling stays unanalyzed after the round trip
        assert clone.children[1].actuals is None

    def test_threshold_is_a_factor_of_two(self):
        assert MISESTIMATE_FACTOR_THRESHOLD == 2.0


class TestAttachActuals:
    def test_actuals_come_from_named_spans(self):
        tracer = Tracer()
        with tracer.span("query"):
            with tracer.span("scan_chunks") as span:
                span.io["chunks_read"] = 8.0
                span.io["cells_scanned"] = 100.0
        root, scan = _tree()
        attach_actuals(root, tracer.roots[0])
        assert scan.actuals == {"chunks_read": 8.0, "cells_scanned": 100.0}
        assert scan.duration_s is not None
        # descriptive node (span=None) stays unanalyzed
        assert root.children[1].actuals is None

    def test_skipped_phase_gets_empty_actuals(self):
        tracer = Tracer()
        with tracer.span("query"):
            pass
        root, scan = _tree()
        attach_actuals(root, tracer.roots[0])
        assert scan.actuals == {}
        assert scan.worst_misestimate() is not None  # counted as zero


def _plan(analyzed=False):
    root, scan = _tree()
    plan = QueryPlan(
        cube="c",
        backend="array",
        mode="interpreted",
        order="chunk",
        fingerprint="f" * 32,
        planner={"requested": "auto", "reason": "no-selections"},
        root=root,
    )
    if analyzed:
        scan.actuals = {"chunks_read": 20, "cells_scanned": 100}
        plan.analyzed = True
        plan.rows = 27
        plan.elapsed_s = 0.001
        plan.sim_io_s = 0.1
        plan.totals = {"chunks_read": 20.0}
    return plan


class TestQueryPlan:
    def test_worst_misestimate_spans_all_nodes(self):
        assert _plan().worst_misestimate() is None
        plan = _plan(analyzed=True)
        assert plan.worst_misestimate() == pytest.approx(21.0 / 9.0)

    def test_to_dict_shape_estimate_only(self):
        payload = _plan().to_dict()
        assert payload["analyzed"] is False
        assert "execution" not in payload
        assert payload["plan"]["op"] == "array.query"

    def test_to_dict_shape_analyzed(self):
        payload = _plan(analyzed=True).to_dict()
        assert payload["analyzed"] is True
        execution = payload["execution"]
        assert execution["rows"] == 27
        assert execution["cost_s"] == pytest.approx(0.101)
        assert payload["worst_misestimate"] == pytest.approx(21.0 / 9.0)

    def test_from_dict_round_trip(self):
        plan = _plan(analyzed=True)
        clone = QueryPlan.from_dict(json.loads(json.dumps(plan.to_dict())))
        assert clone.fingerprint == plan.fingerprint
        assert clone.analyzed and clone.rows == 27
        assert clone.worst_misestimate() == pytest.approx(
            plan.worst_misestimate()
        )


class TestRenderPlan:
    def test_estimate_only_rendering(self):
        text = render_plan(_plan())
        assert text.startswith("EXPLAIN  cube=c backend=array")
        assert "est{cells_scanned=100 chunks_read=8}" in text
        assert "act{" not in text
        assert "├─" in text and "└─" in text

    def test_analyzed_rendering_has_actuals_and_worst(self):
        text = render_plan(_plan(analyzed=True))
        assert text.startswith("EXPLAIN ANALYZE")
        assert "act{cells_scanned=100 chunks_read=20}" in text
        assert "worst=x2.33" in text
        assert "execution: rows=27" in text

    def test_planner_line_hides_available_backends(self):
        plan = _plan()
        plan.planner["available_backends"] = ["array", "starjoin"]
        text = render_plan(plan)
        assert "available_backends" not in text
        assert "requested=auto" in text


class TestPlanCache:
    def test_put_get_and_len(self):
        cache = PlanCache(capacity=4)
        cache.put("fp1", {"a": 1})
        assert cache.get("fp1") == {"a": 1}
        assert cache.get("missing") is None
        assert len(cache) == 1

    def test_eviction_is_lru(self):
        cache = PlanCache(capacity=2)
        cache.put("a", {})
        cache.put("b", {})
        cache.get("a")  # refresh a; b is now the eviction victim
        cache.put("c", {})
        assert cache.get("b") is None
        assert cache.get("a") is not None and cache.get("c") is not None

    def test_reput_refreshes_instead_of_duplicating(self):
        cache = PlanCache(capacity=2)
        cache.put("a", {"v": 1})
        cache.put("a", {"v": 2})
        assert len(cache) == 1
        assert cache.get("a") == {"v": 2}

    def test_fingerprints_oldest_first(self):
        cache = PlanCache(capacity=3)
        for name in ("x", "y", "z"):
            cache.put(name, {})
        assert cache.fingerprints() == ["x", "y", "z"]

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            PlanCache(capacity=0)
