"""The registry's monotonic reset epoch, end to end.

The cold-run protocol zeroes the counter bags at every query boundary;
the epoch is how every delta-taking consumer (TSDB, ``repro top``)
distinguishes "the counter restarted" from "the counter went backwards".
"""

from repro.obs.exporters import prometheus_text
from repro.obs.registry import MetricsRegistry
from repro.obs.top import MetricsView, counter_delta, qps
from repro.util.stats import Counters


def _registry():
    registry = MetricsRegistry()
    registry.register("svc", Counters())
    return registry


class TestRegistryEpoch:
    def test_epoch_counts_resets_monotonically(self):
        registry = _registry()
        assert registry.resets == 0
        registry.reset_all()
        registry.reset_all()
        assert registry.resets == 2

    def test_epoch_exported_as_gauge_in_exposition_text(self):
        registry = _registry()
        registry.reset_all()
        text = prometheus_text(registry)
        assert "# TYPE repro_registry_resets gauge" in text
        assert "repro_registry_resets 1" in text


def _view(admitted: float, resets: float) -> MetricsView:
    return MetricsView.from_text(
        "# TYPE repro_serve_admitted_total counter\n"
        f'repro_serve_admitted_total{{source="serve"}} {admitted}\n'
        "# TYPE repro_registry_resets gauge\n"
        f"repro_registry_resets {resets}\n"
    )


class TestScrapeDeltas:
    def test_plain_delta_within_one_epoch(self):
        assert counter_delta(_view(10, 0), _view(25, 0), "repro_serve_admitted") == 15.0

    def test_delta_across_reset_credits_post_reset_work(self):
        # raw difference would be 7 - 100 = -93
        assert counter_delta(_view(100, 0), _view(7, 1), "repro_serve_admitted") == 7.0

    def test_delta_never_negative_within_an_epoch(self):
        assert counter_delta(_view(100, 0), _view(40, 0), "repro_serve_admitted") == 0.0

    def test_qps_uses_the_reset_aware_delta(self):
        assert qps(_view(100, 0), _view(8, 1), 2.0) == 4.0
