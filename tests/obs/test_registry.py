"""Tests for the central metrics registry."""

import pytest

from repro.errors import MetricsError
from repro.obs import MetricsRegistry
from repro.util.stats import Counters


class TestSources:
    def test_register_and_merge(self):
        registry = MetricsRegistry()
        a = registry.register("a", Counters())
        b = registry.register("b", Counters())
        a.add("x", 1)
        b.add("x", 2)
        b.add("y", 3)
        assert registry.merged_snapshot() == {"x": 3, "y": 3}

    def test_duplicate_name_rejected(self):
        registry = MetricsRegistry()
        registry.register("a", Counters())
        with pytest.raises(MetricsError):
            registry.register("a", Counters())

    def test_replace_swaps_the_bag(self):
        registry = MetricsRegistry()
        old = registry.register("a", Counters())
        old.add("x", 1)
        new = registry.register("a", Counters(), replace=True)
        assert registry.counters("a") is new
        assert registry.merged_snapshot() == {}

    def test_unregister(self):
        registry = MetricsRegistry()
        bag = registry.register("a", Counters())
        bag.add("x", 1)
        registry.unregister("a")
        assert registry.merged_snapshot() == {}
        with pytest.raises(MetricsError):
            registry.unregister("a")
        with pytest.raises(MetricsError):
            registry.counters("a")

    def test_scoped_registration(self):
        registry = MetricsRegistry()
        bag = Counters()
        with registry.scoped("query", bag):
            bag.add("probes", 2)
            assert registry.merged_snapshot() == {"probes": 2}
        assert registry.source_names() == []

    def test_scoped_unregisters_on_exception(self):
        registry = MetricsRegistry()
        with pytest.raises(RuntimeError):
            with registry.scoped("query", Counters()):
                raise RuntimeError("boom")
        assert registry.source_names() == []

    def test_snapshot_by_source(self):
        registry = MetricsRegistry()
        registry.register("a", Counters()).add("x", 1)
        registry.register("b", Counters())
        assert registry.snapshot_by_source() == {"a": {"x": 1}, "b": {}}


class TestResetAll:
    def test_returns_pre_reset_totals_and_zeroes(self):
        registry = MetricsRegistry()
        a = registry.register("a", Counters())
        b = registry.register("b", Counters())
        a.add("x", 1)
        b.add("y", 2)
        assert registry.reset_all() == {"x": 1, "y": 2}
        assert registry.merged_snapshot() == {}

    def test_custom_reset_callable_used(self):
        registry = MetricsRegistry()
        bag = Counters()
        called = []
        registry.register("a", bag, reset=lambda: (called.append(1), bag.reset()))
        bag.add("x", 5)
        registry.reset_all()
        assert called == [1]
        assert bag.get("x") == 0


class TestGauges:
    def test_register_and_sample(self):
        registry = MetricsRegistry()
        registry.register_gauge("depth", lambda: 7)
        assert registry.gauge_values() == {"depth": 7.0}

    def test_duplicate_gauge_rejected_unless_replaced(self):
        registry = MetricsRegistry()
        registry.register_gauge("g", lambda: 1)
        with pytest.raises(MetricsError):
            registry.register_gauge("g", lambda: 2)
        registry.register_gauge("g", lambda: 2, replace=True)
        assert registry.gauge_values() == {"g": 2.0}

    def test_gauges_do_not_join_counter_merge(self):
        registry = MetricsRegistry()
        registry.register_gauge("g", lambda: 9)
        assert registry.merged_snapshot() == {}
