"""Sampling profiler: span/idle/other classification over real threads."""

import threading
import time

from repro.obs.profiler import SamplingProfiler
from repro.obs.tracer import Tracer, thread_tracing


class _Worker:
    """A thread that spins (busy) or parks (idle) until released."""

    def __init__(self, name, target):
        self.release = threading.Event()
        self.ready = threading.Event()
        self.thread = threading.Thread(
            target=target, name=name, daemon=True
        )

    def start(self):
        self.thread.start()
        assert self.ready.wait(timeout=5)
        return self

    def stop(self):
        self.release.set()
        self.thread.join(timeout=5)


def _busy_in_span(worker, span_name):
    def run():
        with thread_tracing(Tracer()) as tracer:
            with tracer.span(span_name):
                worker.ready.set()
                while not worker.release.is_set():
                    sum(range(100))
    return run


def _busy_no_span(worker):
    def run():
        worker.ready.set()
        while not worker.release.is_set():
            sum(range(100))
    return run


def _parked(worker):
    def run():
        worker.ready.set()
        worker.release.wait()
    return run


def _sample_many(profiler, n=20):
    for _ in range(n):
        profiler.sample_once()
        time.sleep(0.001)


class TestClassification:
    def test_span_thread_attributed_to_its_span(self):
        profiler = SamplingProfiler()
        worker = _Worker("busy-span", None)
        worker.thread = threading.Thread(
            target=_busy_in_span(worker, "phase_a"),
            name="busy-span",
            daemon=True,
        )
        try:
            worker.start()
            _sample_many(profiler)
        finally:
            worker.stop()
        assert profiler.stats()["span_samples"] > 0
        assert "phase_a" in profiler.collapsed()

    def test_parked_thread_counts_as_idle(self):
        profiler = SamplingProfiler()
        worker = _Worker("parked", None)
        worker.thread = threading.Thread(
            target=_parked(worker), name="parked", daemon=True
        )
        before = profiler.stats()["idle_samples"]
        try:
            worker.start()
            _sample_many(profiler)
        finally:
            worker.stop()
        assert profiler.stats()["idle_samples"] > before

    def test_busy_thread_outside_spans_is_other(self):
        profiler = SamplingProfiler()
        worker = _Worker("busy-bare", None)
        worker.thread = threading.Thread(
            target=_busy_no_span(worker), name="busy-bare", daemon=True
        )
        try:
            worker.start()
            _sample_many(profiler)
        finally:
            worker.stop()
        stats = profiler.stats()
        assert stats["other_samples"] > 0
        assert any(
            key.startswith("(other);") for key in profiler.collapsed()
        )

    def test_excluded_prefix_threads_are_invisible(self):
        profiler = SamplingProfiler(exclude_prefixes=("repro-obs", "hidden"))
        worker = _Worker("hidden-busy", None)
        worker.thread = threading.Thread(
            target=_busy_no_span(worker), name="hidden-busy", daemon=True
        )
        try:
            worker.start()
            _sample_many(profiler)
        finally:
            worker.stop()
        assert not any(
            "sum" in key or "run" in key
            for key in profiler.collapsed()
            if key.startswith("(other);test_profiler")
        )

    def test_attributed_fraction_math(self):
        profiler = SamplingProfiler()
        with profiler._lock:
            profiler._span_samples[("a",)] = 8
            profiler._other_samples["m:f"] = 2
            profiler._idle = 90
            profiler._ticks = 100
        stats = profiler.stats()
        assert stats["samples"] == 100
        assert stats["attributed_fraction"] == 0.8

    def test_attributed_fraction_zero_when_never_busy(self):
        assert SamplingProfiler().stats()["attributed_fraction"] == 0.0


class TestLifecycleAndOutput:
    def test_start_stop_and_ticks(self):
        profiler = SamplingProfiler(interval_s=0.001)
        profiler.start()
        assert profiler.running
        deadline = time.time() + 2.0
        while profiler.ticks < 5 and time.time() < deadline:
            time.sleep(0.005)
        profiler.stop()
        assert not profiler.running
        assert profiler.ticks >= 5

    def test_reset_drops_samples(self):
        profiler = SamplingProfiler()
        profiler.sample_once()
        profiler.reset()
        stats = profiler.stats()
        assert stats["ticks"] == 0
        assert stats["samples"] == 0
        assert profiler.collapsed() == {}

    def test_collapsed_sorted_hottest_first(self):
        profiler = SamplingProfiler()
        with profiler._lock:
            profiler._span_samples[("a", "b")] = 3
            profiler._span_samples[("c",)] = 7
            profiler._other_samples["m:f"] = 5
        collapsed = profiler.collapsed()
        assert list(collapsed.items()) == [
            ("c", 7), ("(other);m:f", 5), ("a;b", 3)
        ]
        assert profiler.hottest(2) == [("c", 7), ("(other);m:f", 5)]

    def test_to_dict_shape(self):
        profiler = SamplingProfiler()
        profiler.sample_once()
        payload = profiler.to_dict()
        assert payload["ticks"] == 1
        assert payload["running"] is False
        assert payload["interval_s"] == profiler.interval_s
        assert isinstance(payload["collapsed"], dict)

    def test_render_flame(self):
        profiler = SamplingProfiler()
        assert "(no busy samples)" in profiler.render_flame()
        with profiler._lock:
            profiler._span_samples[("serve_query", "probe")] = 4
            profiler._ticks = 4
        flame = profiler.render_flame()
        assert "serve_query;probe" in flame
        assert "█" in flame
