"""SLO rules: validation, fire/resolve state machine, slowlog linking.

Also pins the shipped ``benchmarks/slo_rules.json`` to the in-code
defaults — CI's soak-smoke job runs this file before the seeded soak.
"""

import json
from pathlib import Path

import pytest

from repro.errors import MetricsError
from repro.obs.alerts import (
    AlertManager,
    SloRule,
    default_rules,
    load_rules,
)
from repro.obs.registry import MetricsRegistry
from repro.obs.slowlog import SlowQueryLog
from repro.obs.timeseries import TimeSeriesStore
from repro.util.stats import Counters

REPO_ROOT = Path(__file__).resolve().parents[2]


@pytest.fixture
def registry():
    registry = MetricsRegistry()
    registry.register("svc", Counters())
    return registry


@pytest.fixture
def tsdb(registry):
    return TimeSeriesStore(registry)


class TestSloRuleValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(MetricsError, match="unknown kind"):
            SloRule(name="x", kind="telepathy")

    @pytest.mark.parametrize(
        "kind, fields",
        [
            ("latency_quantile_ceiling", {"metric": "m"}),  # no ceiling
            ("gauge_ceiling", {"ceiling": 1.0}),  # no metric
            ("hit_rate_floor", {"hits": "h", "misses": "m"}),  # no floor
            ("burn_rate", {"bad": "b"}),  # no total
        ],
    )
    def test_missing_per_kind_field_rejected(self, kind, fields):
        with pytest.raises(MetricsError, match="needs"):
            SloRule(name="x", kind=kind, **fields)

    def test_round_trip_through_dict(self):
        for rule in default_rules():
            assert SloRule.from_dict(rule.to_dict()) == rule

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(MetricsError, match="unknown keys"):
            SloRule.from_dict(
                {"name": "x", "kind": "gauge_ceiling", "metric": "m",
                 "ceiling": 0.0, "color": "red"}
            )

    def test_from_dict_requires_name_and_kind(self):
        with pytest.raises(MetricsError, match="name"):
            SloRule.from_dict({"kind": "gauge_ceiling"})

    def test_load_rules_rejects_duplicates(self, tmp_path):
        rule = SloRule(
            name="dup", kind="gauge_ceiling", metric="m", ceiling=0.0
        ).to_dict()
        path = tmp_path / "rules.json"
        path.write_text(json.dumps([rule, rule]))
        with pytest.raises(MetricsError, match="duplicate"):
            load_rules(str(path))

    def test_load_rules_rejects_non_array(self, tmp_path):
        path = tmp_path / "rules.json"
        path.write_text("{}")
        with pytest.raises(MetricsError, match="array"):
            load_rules(str(path))


class TestShippedRuleFile:
    def test_shipped_file_mirrors_in_code_defaults(self):
        path = REPO_ROOT / "benchmarks" / "slo_rules.json"
        shipped = json.loads(path.read_text(encoding="utf-8"))
        assert shipped == [rule.to_dict() for rule in default_rules()]

    def test_shipped_file_validates_against_schema(self):
        from repro.util.jsonschema_lite import validate

        path = REPO_ROOT / "benchmarks" / "slo_rules.json"
        schema_path = (
            REPO_ROOT / "benchmarks" / "schemas" / "slo_rules.schema.json"
        )
        validate(
            json.loads(path.read_text(encoding="utf-8")),
            json.loads(schema_path.read_text(encoding="utf-8")),
        )

    def test_shipped_file_parses_into_rules(self):
        path = REPO_ROOT / "benchmarks" / "slo_rules.json"
        assert load_rules(str(path)) == default_rules()


def _latency_rule(**overrides):
    base = dict(
        name="lat",
        kind="latency_quantile_ceiling",
        metric="lat_seconds",
        quantile=0.5,
        ceiling=1.0,
        window_s=10.0,
        min_count=1,
    )
    base.update(overrides)
    return SloRule(**base)


class TestLatencyRule:
    def test_fires_and_resolves(self, registry, tsdb):
        manager = AlertManager(tsdb, rules=[_latency_rule()])
        registry.observe("lat_seconds", 0.001)  # the baseline snapshot
        tsdb.sample(now=0.0)  # must already carry the histogram
        registry.observe("lat_seconds", 5.0)
        tsdb.sample(now=1.0)
        events = manager.evaluate(now=1.0)
        assert [e["state"] for e in events] == ["firing"]
        assert manager.firing_count() == 1
        assert manager.firings("lat") == 1
        # window drains: the breach ages out, the rule resolves
        tsdb.sample(now=20.0)
        events = manager.evaluate(now=20.0)
        assert [e["state"] for e in events] == ["resolved"]
        assert events[0]["fired_at"] == 1.0
        assert manager.firing_count() == 0

    def test_min_count_suppresses_thin_windows(self, registry, tsdb):
        manager = AlertManager(tsdb, rules=[_latency_rule(min_count=5)])
        registry.observe("lat_seconds", 0.001)
        tsdb.sample(now=0.0)
        registry.observe("lat_seconds", 5.0)
        tsdb.sample(now=1.0)
        assert manager.evaluate(now=1.0) == []
        assert manager.firing_count() == 0

    def test_no_flap_while_still_breached(self, registry, tsdb):
        manager = AlertManager(tsdb, rules=[_latency_rule()])
        registry.observe("lat_seconds", 0.001)
        tsdb.sample(now=0.0)
        registry.observe("lat_seconds", 5.0)
        tsdb.sample(now=1.0)
        manager.evaluate(now=1.0)
        registry.observe("lat_seconds", 5.0)
        tsdb.sample(now=2.0)
        assert manager.evaluate(now=2.0) == []  # already firing
        assert manager.firings("lat") == 1


class TestSlowlogLinking:
    def test_firing_event_links_window_fingerprints(self, registry, tsdb):
        slowlog = SlowQueryLog(threshold_s=0.0)
        slowlog.record(
            fingerprint="q2/array", cube="sales", backend="array",
            latency_s=5.0,
        )
        manager = AlertManager(
            tsdb, rules=[_latency_rule(window_s=1e9)], slowlog=slowlog
        )
        registry.observe("lat_seconds", 0.001)
        tsdb.sample(now=0.0)
        registry.observe("lat_seconds", 5.0)
        tsdb.sample(now=1.0)
        import time

        events = manager.evaluate(now=time.time())
        assert events[0]["state"] == "firing"
        assert events[0]["fingerprints"] == ["q2/array"]

    def test_empty_ring_noted(self, registry, tsdb):
        manager = AlertManager(
            tsdb, rules=[_latency_rule()], slowlog=SlowQueryLog()
        )
        registry.observe("lat_seconds", 0.001)
        tsdb.sample(now=0.0)
        registry.observe("lat_seconds", 5.0)
        tsdb.sample(now=1.0)
        events = manager.evaluate(now=1.0)
        assert events[0]["note"] == "slowlog ring empty in window"


class TestHitRateRule:
    def _manager(self, tsdb, **overrides):
        base = dict(
            name="hits",
            kind="hit_rate_floor",
            hits="cache.hits",
            misses="cache.misses",
            floor=0.5,
            window_s=10.0,
            min_count=1,
        )
        base.update(overrides)
        return AlertManager(tsdb, rules=[SloRule(**base)])

    def test_fires_below_floor(self, registry, tsdb):
        manager = self._manager(tsdb)
        tsdb.sample(now=0.0)
        registry.counters("svc").add("cache.hits", 1)
        registry.counters("svc").add("cache.misses", 9)
        tsdb.sample(now=1.0)
        events = manager.evaluate(now=1.0)
        assert [e["state"] for e in events] == ["firing"]
        assert events[0]["value"] == pytest.approx(0.1)

    def test_quiet_above_floor_or_under_min_count(self, registry, tsdb):
        manager = self._manager(tsdb, min_count=100)
        tsdb.sample(now=0.0)
        registry.counters("svc").add("cache.misses", 10)
        tsdb.sample(now=1.0)
        assert manager.evaluate(now=1.0) == []


class TestGaugeCeilingRule:
    def _manager(self, tsdb, for_s=5.0):
        rule = SloRule(
            name="degraded",
            kind="gauge_ceiling",
            metric="degraded",
            ceiling=0.0,
            for_s=for_s,
            window_s=30.0,
        )
        return AlertManager(tsdb, rules=[rule])

    def test_sustained_breach_required(self, registry, tsdb):
        level = [0.0]
        registry.register_gauge("degraded", lambda: level[0])
        manager = self._manager(tsdb, for_s=5.0)
        tsdb.sample(now=0.0)
        level[0] = 1.0
        tsdb.sample(now=1.0)
        # above the ceiling, but only for 1 s — not sustained yet
        assert manager.evaluate(now=1.0) == []
        tsdb.sample(now=7.0)
        events = manager.evaluate(now=7.0)
        assert [e["state"] for e in events] == ["firing"]
        # gauge recovers: resolves on the next pass
        level[0] = 0.0
        tsdb.sample(now=8.0)
        events = manager.evaluate(now=8.0)
        assert [e["state"] for e in events] == ["resolved"]


class TestBurnRateRule:
    def _manager(self, tsdb):
        rule = SloRule(
            name="burn",
            kind="burn_rate",
            bad="svc.rejected",
            total="svc.admitted",
            objective=0.99,
            factor=10.0,
            window_s=5.0,
            long_window_s=60.0,
            min_count=1,
        )
        return AlertManager(tsdb, rules=[rule])

    def test_needs_both_windows_burning(self, registry, tsdb):
        manager = self._manager(tsdb)
        # long-window history: healthy traffic, no rejections
        tsdb.sample(now=0.0)
        registry.counters("svc").add("svc.admitted", 1000)
        tsdb.sample(now=55.0)
        # short-window spike of rejections
        registry.counters("svc").add("svc.admitted", 10)
        registry.counters("svc").add("svc.rejected", 10)
        tsdb.sample(now=58.0)
        # the short window burns hot (10/10 errors ≈ 100× budget), but
        # the long window absorbs it: 10/1010 ≈ 1× budget, under 10×
        assert manager.evaluate(now=58.0) == []

    def test_fires_when_both_windows_burn(self, registry, tsdb):
        manager = self._manager(tsdb)
        tsdb.sample(now=55.0)
        registry.counters("svc").add("svc.admitted", 10)
        registry.counters("svc").add("svc.rejected", 10)
        tsdb.sample(now=58.0)
        events = manager.evaluate(now=58.0)
        assert [e["state"] for e in events] == ["firing"]


class TestAlertManager:
    def test_duplicate_rule_rejected(self, tsdb):
        manager = AlertManager(tsdb, rules=[_latency_rule()])
        with pytest.raises(MetricsError, match="already installed"):
            manager.add_rule(_latency_rule())

    def test_remove_unknown_rule_rejected(self, tsdb):
        manager = AlertManager(tsdb, rules=[])
        with pytest.raises(MetricsError, match="no rule"):
            manager.remove_rule("ghost")

    def test_defaults_installed_when_rules_omitted(self, tsdb):
        manager = AlertManager(tsdb)
        assert manager.rules() == default_rules()

    def test_to_dict_shape(self, registry, tsdb):
        manager = AlertManager(tsdb, rules=[_latency_rule()])
        registry.observe("lat_seconds", 0.001)
        tsdb.sample(now=0.0)
        registry.observe("lat_seconds", 5.0)
        tsdb.sample(now=1.0)
        manager.evaluate(now=1.0)
        payload = manager.to_dict()
        assert payload["evaluations"] == 1
        assert [f["rule"] for f in payload["firing"]] == ["lat"]
        assert [e["state"] for e in payload["events"]] == ["firing"]
        assert payload["rules"] == [_latency_rule().to_dict()]
        json.dumps(payload)  # the /alerts body must be JSON-able

    def test_event_log_is_bounded(self, registry, tsdb):
        manager = AlertManager(
            tsdb, rules=[_latency_rule(window_s=1.5)], log_capacity=4
        )
        registry.observe("lat_seconds", 0.001)
        now = 0.0
        for _ in range(6):  # 6 fire/resolve cycles = 12 transitions
            tsdb.sample(now=now)  # baseline inside the window
            registry.observe("lat_seconds", 5.0)
            tsdb.sample(now=now + 1.0)
            manager.evaluate(now=now + 1.0)  # -> firing
            tsdb.sample(now=now + 10.0)  # window drained
            manager.evaluate(now=now + 10.0)  # -> resolved
            now += 20.0
        assert len(manager.events()) == 4
