"""Histogram unit tests: buckets, quantiles, merge, JSON, concurrency."""

import json
import random
import threading

import pytest

from repro.errors import MetricsError
from repro.obs import DEFAULT_BOUNDS, Histogram, quantile_from_buckets
from repro.obs.registry import MetricsRegistry
from repro.util.stats import Counters


class TestBuckets:
    def test_default_bounds_are_log_scale(self):
        assert len(DEFAULT_BOUNDS) == 28
        assert DEFAULT_BOUNDS[0] == pytest.approx(1e-6)
        for lower, upper in zip(DEFAULT_BOUNDS, DEFAULT_BOUNDS[1:]):
            assert upper == pytest.approx(2 * lower)
        # covers cache hits (µs) through pathological cold runs (>100 s)
        assert DEFAULT_BOUNDS[-1] > 100.0

    def test_observe_lands_in_correct_bucket(self):
        h = Histogram(bounds=(0.001, 0.01, 0.1))
        h.observe(0.0005)  # <= first bound
        h.observe(0.005)
        h.observe(0.05)
        h.observe(5.0)  # overflow
        assert h.bucket_counts() == [1, 1, 1, 1]
        assert h.count == 4
        assert h.sum == pytest.approx(0.0005 + 0.005 + 0.05 + 5.0)

    def test_boundary_value_goes_to_lower_bucket(self):
        # le-semantics: an observation equal to a bound belongs to it
        h = Histogram(bounds=(0.001, 0.01))
        h.observe(0.001)
        assert h.bucket_counts() == [1, 0, 0]

    def test_negative_and_zero_clamp_to_first_bucket(self):
        h = Histogram(bounds=(0.001, 0.01))
        h.observe(0.0)
        h.observe(-1.0)
        assert h.bucket_counts()[0] == 2

    def test_bounds_must_increase(self):
        with pytest.raises(MetricsError):
            Histogram(bounds=(0.01, 0.01))
        with pytest.raises(MetricsError):
            Histogram(bounds=(0.01, 0.001))
        with pytest.raises(MetricsError):
            Histogram(bounds=())


class TestQuantiles:
    def test_empty_histogram_reports_zero(self):
        assert Histogram().quantile(0.5) == 0.0

    def test_single_bucket_interpolates_from_zero(self):
        h = Histogram(bounds=(1.0, 2.0))
        for _ in range(10):
            h.observe(0.5)
        # all mass in [0, 1]; median interpolates to the middle
        assert h.quantile(0.5) == pytest.approx(0.5)

    def test_quantile_matches_uniform_distribution(self):
        h = Histogram()
        values = [i / 1000 for i in range(1, 1001)]  # 1 ms .. 1 s uniform
        for v in values:
            h.observe(v)
        for q in (0.5, 0.95, 0.99):
            exact = values[int(q * len(values)) - 1]
            estimate = h.quantile(q)
            # log-scale buckets are 2x wide: estimate within one bucket
            assert exact / 2 <= estimate <= exact * 2

    def test_overflow_reports_largest_finite_bound(self):
        h = Histogram(bounds=(0.001, 0.01))
        h.observe(100.0)
        assert h.quantile(0.99) == pytest.approx(0.01)

    def test_quantile_range_checked(self):
        with pytest.raises(MetricsError):
            Histogram().quantile(1.5)
        with pytest.raises(MetricsError):
            quantile_from_buckets((1.0,), [1, 0], -0.1)

    def test_percentiles_shape(self):
        h = Histogram()
        h.observe(0.01)
        p = h.percentiles()
        assert set(p) == {"p50", "p95", "p99"}
        assert p["p50"] <= p["p95"] <= p["p99"]


class TestMergeAndSerialization:
    def test_merge_adds_counts(self):
        a, b = Histogram(), Histogram()
        for v in (0.001, 0.002, 0.004):
            a.observe(v)
            b.observe(v * 10)
        a.merge(b)
        assert a.count == 6
        assert a.sum == pytest.approx(0.007 + 0.07)

    def test_merge_requires_identical_bounds(self):
        with pytest.raises(MetricsError):
            Histogram(bounds=(1.0,)).merge(Histogram(bounds=(2.0,)))

    def test_json_round_trip(self):
        h = Histogram()
        for v in (0.0001, 0.003, 0.5, 300.0):
            h.observe(v)
        payload = json.loads(json.dumps(h.to_dict()))
        clone = Histogram.from_dict(payload)
        assert clone.bounds == h.bounds
        assert clone.bucket_counts() == h.bucket_counts()
        assert clone.count == h.count
        assert clone.sum == pytest.approx(h.sum)
        assert clone.quantile(0.95) == pytest.approx(h.quantile(0.95))

    def test_from_dict_validates_bucket_count(self):
        with pytest.raises(MetricsError):
            Histogram.from_dict(
                {"bounds": [1.0, 2.0], "counts": [1], "sum": 0.0, "count": 1}
            )

    def test_reset_zeroes_everything(self):
        h = Histogram()
        h.observe(0.5)
        h.reset()
        assert h.count == 0
        assert h.sum == 0.0
        assert sum(h.bucket_counts()) == 0


class TestConcurrency:
    N_THREADS = 8
    PER_THREAD = 2_000

    def _workload(self, seed: int) -> list[float]:
        rng = random.Random(seed)
        # latency-shaped: lognormal body with a heavy tail
        return [
            rng.lognormvariate(-7.0, 1.5) if rng.random() > 0.02 else rng.uniform(0.5, 5.0)
            for _ in range(self.PER_THREAD)
        ]

    def test_concurrent_observations_match_serial_reference(self):
        """8 threads hammer one histogram; result equals the serial fold."""
        workloads = [self._workload(seed) for seed in range(self.N_THREADS)]
        concurrent = Histogram()
        barrier = threading.Barrier(self.N_THREADS)

        def hammer(values):
            barrier.wait()
            for v in values:
                concurrent.observe(v)

        threads = [
            threading.Thread(target=hammer, args=(w,)) for w in workloads
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        reference = Histogram()
        for workload in workloads:
            for v in workload:
                reference.observe(v)

        # counts must match exactly — no lost updates under contention
        assert concurrent.bucket_counts() == reference.bucket_counts()
        assert concurrent.count == self.N_THREADS * self.PER_THREAD
        assert concurrent.sum == pytest.approx(reference.sum)
        for q in (0.5, 0.95, 0.99):
            assert concurrent.quantile(q) == pytest.approx(
                reference.quantile(q)
            )

    def test_concurrent_quantiles_within_bucket_resolution(self):
        """Histogram quantiles track the true sorted-sample quantiles."""
        workloads = [self._workload(seed + 100) for seed in range(self.N_THREADS)]
        h = Histogram()
        threads = [
            threading.Thread(
                target=lambda w=w: [h.observe(v) for v in w]
            )
            for w in workloads
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        flat = sorted(v for w in workloads for v in w)
        for q in (0.5, 0.95, 0.99):
            exact = flat[int(q * len(flat)) - 1]
            estimate = h.quantile(q)
            # power-of-two buckets: the estimate is within one bucket
            # (2x) of the true sample quantile
            assert exact / 2 <= estimate <= exact * 2

    def test_registry_scrape_during_concurrent_writes(self):
        """Writers hammer counters + a histogram while readers scrape."""
        from repro.obs.exporters import lint_prometheus_text, prometheus_text

        registry = MetricsRegistry()
        counters = Counters()
        registry.register("svc", counters)
        registry.register_histogram("svc.latency_seconds")
        stop = threading.Event()
        errors: list[BaseException] = []

        def write(seed: int):
            rng = random.Random(seed)
            try:
                for _ in range(self.PER_THREAD):
                    counters.add("requests")
                    registry.observe("svc.latency_seconds", rng.random() / 100)
            except BaseException as exc:  # pragma: no cover
                errors.append(exc)

        def scrape():
            try:
                while not stop.is_set():
                    lint_prometheus_text(prometheus_text(registry))
            except BaseException as exc:  # pragma: no cover
                errors.append(exc)

        writers = [
            threading.Thread(target=write, args=(s,))
            for s in range(self.N_THREADS)
        ]
        scrapers = [threading.Thread(target=scrape) for _ in range(2)]
        for t in scrapers + writers:
            t.start()
        for t in writers:
            t.join()
        stop.set()
        for t in scrapers:
            t.join()

        assert not errors
        assert counters.get("requests") == self.N_THREADS * self.PER_THREAD
        histogram = registry.histogram("svc.latency_seconds")
        assert histogram.count == self.N_THREADS * self.PER_THREAD
        # the final scrape agrees with the registry state
        text = prometheus_text(registry)
        assert (
            f"repro_requests_total{{source=\"svc\"}} "
            f"{self.N_THREADS * self.PER_THREAD}" in text
        )
        assert (
            f"repro_svc_latency_seconds_count "
            f"{self.N_THREADS * self.PER_THREAD}" in text
        )
