"""Unit tests for the chunk access heatmap tracker."""

import pytest

from repro.obs.heatmap import ChunkHeatmap, heat_delta, hottest


class TestRecordAndSnapshot:
    def test_counts_access_and_disk_planes_separately(self):
        heat = ChunkHeatmap()
        heat.record("a", 2)
        heat.record("a", 2)
        heat.record("a", 2, disk=True)
        snap = heat.snapshot("a")
        assert snap["accesses"] == [0, 0, 2]
        assert snap["disk_reads"] == [0, 0, 1]

    def test_untracked_array_snapshots_as_zeros(self):
        snap = ChunkHeatmap().snapshot("never")
        assert snap == {
            "accesses": [],
            "disk_reads": [],
            "overflow_accesses": 0,
            "overflow_disk_reads": 0,
        }

    def test_snapshot_is_a_copy(self):
        heat = ChunkHeatmap()
        heat.record("a", 0)
        snap = heat.snapshot("a")
        snap["accesses"][0] = 99
        assert heat.snapshot("a")["accesses"] == [1]

    def test_plane_grows_lazily_to_highest_chunk(self):
        heat = ChunkHeatmap()
        heat.record("a", 5)
        assert len(heat.snapshot("a")["accesses"]) == 6

    def test_reset_one_array_or_all(self):
        heat = ChunkHeatmap()
        heat.record("a", 0)
        heat.record("b", 0)
        heat.reset("a")
        assert heat.arrays() == ["b"]
        heat.reset()
        assert heat.arrays() == []


class TestBounds:
    def test_chunk_numbers_past_bound_fold_into_overflow(self):
        heat = ChunkHeatmap(max_tracked_chunks=4)
        heat.record("a", 3)
        heat.record("a", 4)
        heat.record("a", 100, disk=True)
        snap = heat.snapshot("a")
        assert len(snap["accesses"]) == 4
        assert snap["overflow_accesses"] == 1
        assert snap["overflow_disk_reads"] == 1

    def test_array_lru_eviction(self):
        heat = ChunkHeatmap(max_arrays=2)
        heat.record("a", 0)
        heat.record("b", 0)
        heat.record("a", 1)  # refresh a; b is the victim
        heat.record("c", 0)
        assert heat.snapshot("b")["accesses"] == []
        assert heat.snapshot("a")["accesses"] == [1, 1]
        assert set(heat.arrays()) == {"a", "c"}

    def test_bounds_must_be_positive(self):
        with pytest.raises(ValueError):
            ChunkHeatmap(max_tracked_chunks=0)
        with pytest.raises(ValueError):
            ChunkHeatmap(max_arrays=0)


class TestDeltaAndHottest:
    def test_heat_delta_pads_shorter_snapshot(self):
        heat = ChunkHeatmap()
        heat.record("a", 0)
        before = heat.snapshot("a")
        heat.record("a", 0)
        heat.record("a", 3, disk=True)
        heat.record("a", 3)
        delta = heat_delta(before, heat.snapshot("a"))
        assert delta["accesses"] == [1, 0, 0, 1]
        assert delta["disk_reads"] == [0, 0, 0, 1]
        assert delta["overflow_accesses"] == 0

    def test_heat_delta_tracks_overflow_movement(self):
        heat = ChunkHeatmap(max_tracked_chunks=1)
        before = heat.snapshot("a")
        heat.record("a", 9)
        delta = heat_delta(before, heat.snapshot("a"))
        assert delta["overflow_accesses"] == 1

    def test_hottest_ranks_by_count_then_chunk_number(self):
        counts = [0, 5, 2, 5, 0, 1]
        assert hottest(counts, top=3) == [[1, 5], [3, 5], [2, 2]]

    def test_hottest_drops_cold_chunks_entirely(self):
        assert hottest([0, 0, 0]) == []
