"""Tests for the span tracer: nesting, deltas, the no-op default."""

import pytest

from repro.obs import (
    NULL_TRACER,
    MetricsRegistry,
    NullTracer,
    Tracer,
    get_tracer,
    set_tracer,
    tracing,
)
from repro.util.stats import Counters


class TestNesting:
    def test_spans_nest_into_a_tree(self):
        tracer = Tracer()
        with tracer.span("root"):
            with tracer.span("a"):
                with tracer.span("a1"):
                    pass
            with tracer.span("b"):
                pass
        assert len(tracer.roots) == 1
        root = tracer.roots[0]
        assert [c.name for c in root.children] == ["a", "b"]
        assert [c.name for c in root.children[0].children] == ["a1"]

    def test_sibling_roots(self):
        tracer = Tracer()
        with tracer.span("first"):
            pass
        with tracer.span("second"):
            pass
        assert [s.name for s in tracer.roots] == ["first", "second"]

    def test_current_tracks_innermost(self):
        tracer = Tracer()
        assert tracer.current() is None
        with tracer.span("outer") as outer:
            assert tracer.current() is outer
            with tracer.span("inner") as inner:
                assert tracer.current() is inner
            assert tracer.current() is outer
        assert tracer.current() is None

    def test_stack_unwinds_on_exception(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("doomed"):
                raise ValueError("boom")
        assert tracer.current() is None
        assert tracer.roots[0].duration_s >= 0

    def test_attrs_and_annotate(self):
        tracer = Tracer()
        with tracer.span("phase", k=1) as span:
            span.annotate(extra="yes")
        assert tracer.roots[0].attrs == {"k": 1, "extra": "yes"}

    def test_walk_and_find(self):
        tracer = Tracer()
        with tracer.span("root"):
            with tracer.span("a"):
                with tracer.span("needle"):
                    pass
        root = tracer.roots[0]
        assert [s.name for s in root.walk()] == ["root", "a", "needle"]
        assert root.find("needle").name == "needle"
        assert root.find("missing") is None


class TestCounterDeltas:
    def make(self):
        registry = MetricsRegistry()
        bag = registry.register("bag", Counters())
        return Tracer(registry=registry), bag

    def test_span_captures_inclusive_delta(self):
        tracer, bag = self.make()
        bag.add("reads", 5)  # pre-existing work must not leak in
        with tracer.span("root"):
            bag.add("reads", 2)
            with tracer.span("child"):
                bag.add("reads", 3)
        root = tracer.roots[0]
        assert root.io == {"reads": 5}
        assert root.children[0].io == {"reads": 3}

    def test_self_io_is_exclusive(self):
        tracer, bag = self.make()
        with tracer.span("root"):
            bag.add("reads", 2)
            with tracer.span("child"):
                bag.add("reads", 3)
        root = tracer.roots[0]
        assert root.self_io() == {"reads": 2}

    def test_leaf_totals_telescope_to_root(self):
        tracer, bag = self.make()
        with tracer.span("root"):
            bag.add("a", 1.1)
            with tracer.span("x"):
                bag.add("a", 2.2)
                bag.add("b", 1)
            with tracer.span("y"):
                bag.add("a", 3.3)
        root = tracer.roots[0]
        assert root.leaf_io_totals() == root.io

    def test_merge_and_reset_between_sources_is_invisible(self):
        # the consolidate() pattern: array counters merged into the query
        # bag and reset — both registered, so the merged total is invariant
        registry = MetricsRegistry()
        query = registry.register("query", Counters())
        array = registry.register("array", Counters())
        tracer = Tracer(registry=registry)
        with tracer.span("root"):
            array.add("chunks_read", 4)
            query.merge(array)
            array.reset()
        assert tracer.roots[0].io == {"chunks_read": 4}

    def test_no_registry_means_no_io(self):
        tracer = Tracer()
        with tracer.span("root"):
            pass
        assert tracer.roots[0].io == {}


class TestDisabledTracer:
    def test_default_active_tracer_is_null(self):
        assert get_tracer() is NULL_TRACER
        assert not NULL_TRACER.enabled

    def test_null_spans_are_one_shared_object(self):
        a = NULL_TRACER.span("x", attr=1)
        b = NULL_TRACER.span("y")
        assert a is b  # no per-call allocation
        with a as span:
            span.annotate(ignored=True)

    def test_tracing_installs_and_restores(self):
        tracer = Tracer()
        with tracing(tracer) as active:
            assert active is tracer
            assert get_tracer() is tracer
        assert get_tracer() is NULL_TRACER

    def test_tracing_restores_previous_tracer(self):
        outer, inner = Tracer(), Tracer()
        with tracing(outer):
            with tracing(inner):
                assert get_tracer() is inner
            assert get_tracer() is outer
        assert get_tracer() is NULL_TRACER

    def test_set_tracer_none_disables(self):
        set_tracer(Tracer())
        try:
            assert get_tracer().enabled
        finally:
            set_tracer(None)
        assert isinstance(get_tracer(), NullTracer)
