"""Hammer the observability endpoint while the registry churns.

Readers GET ``/metrics``, ``/timeseries/*``, ``/alerts`` and
``/profile`` from several threads while a mutator adds counters,
records observations, samples the TSDB and fires ``reset_all`` — every
response must stay parseable (exposition text or JSON), never a 500.
"""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.obs import (
    AlertManager,
    ObservabilityServer,
    SamplingProfiler,
    TimeSeriesStore,
)
from repro.obs.exporters import lint_prometheus_text
from repro.obs.registry import MetricsRegistry
from repro.util.stats import Counters

ROUNDS = 30


def _get(url: str):
    try:
        with urllib.request.urlopen(url, timeout=5) as response:
            return response.status, response.read().decode("utf-8")
    except urllib.error.HTTPError as error:
        return error.code, error.read().decode("utf-8")


@pytest.fixture
def stack():
    registry = MetricsRegistry()
    registry.register("svc", Counters())
    registry.observe("svc.latency_seconds", 0.01)
    tsdb = TimeSeriesStore(registry)
    tsdb.sample()
    alerts = AlertManager(tsdb)
    profiler = SamplingProfiler()
    with ObservabilityServer(
        registry, timeseries=tsdb, alerts=alerts, profiler=profiler
    ) as server:
        yield registry, tsdb, server


def test_reads_survive_concurrent_mutation_and_resets(stack):
    registry, tsdb, server = stack
    paths = (
        "/metrics",
        "/timeseries",
        "/timeseries/svc.requests?seconds=30",
        "/timeseries/svc.latency_seconds?seconds=30&q=0.99",
        "/alerts",
        "/profile",
    )
    failures: list[str] = []
    start = threading.Barrier(len(paths) + 2)

    def mutate():
        start.wait()
        for i in range(ROUNDS):
            registry.counters("svc").add("svc.requests", 1)
            registry.observe("svc.latency_seconds", 0.001 * (i + 1))
            tsdb.sample()
            if i % 5 == 4:
                registry.reset_all()

    def read(path):
        start.wait()
        for _ in range(ROUNDS):
            status, body = _get(f"{server.url}{path}")
            if status == 500:
                failures.append(f"{path}: HTTP 500")
                return
            try:
                if path == "/metrics":
                    lint_prometheus_text(body)
                else:
                    json.loads(body)
            except Exception as error:
                failures.append(f"{path}: unparseable ({error})")
                return

    threads = [threading.Thread(target=mutate, daemon=True)]
    threads += [
        threading.Thread(target=read, args=(path,), daemon=True)
        for path in paths
    ]
    for thread in threads:
        thread.start()
    start.wait()
    for thread in threads:
        thread.join(timeout=30)
    assert failures == []
    assert not any(thread.is_alive() for thread in threads)


def test_known_metric_route_stays_200_across_resets(stack):
    registry, tsdb, server = stack
    registry.counters("svc").add("svc.requests", 3)
    tsdb.sample()
    status, body = _get(f"{server.url}/timeseries/svc.requests")
    assert status == 200
    assert json.loads(body)["kind"] == "counter"
    registry.reset_all()
    registry.counters("svc").add("svc.requests", 1)
    tsdb.sample()
    status, body = _get(f"{server.url}/timeseries/svc.requests")
    assert status == 200
    payload = json.loads(body)
    # reset-aware: per-interval deltas never go negative
    assert payload["points"]
    assert all(point["delta"] >= 0 for point in payload["points"])
