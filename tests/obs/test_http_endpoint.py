"""The observability HTTP endpoint: routes, status codes, payloads."""

import json
import urllib.error
import urllib.request

import pytest

from repro.obs import ObservabilityServer, SlowQueryLog
from repro.obs.exporters import lint_prometheus_text
from repro.obs.registry import MetricsRegistry
from repro.util.stats import Counters


def _get(url: str):
    """``(status, content_type, body_text)`` for one GET."""
    try:
        with urllib.request.urlopen(url, timeout=5) as response:
            return (
                response.status,
                response.headers.get("Content-Type", ""),
                response.read().decode("utf-8"),
            )
    except urllib.error.HTTPError as error:
        return error.code, error.headers.get("Content-Type", ""), error.read().decode(
            "utf-8"
        )


@pytest.fixture
def registry():
    registry = MetricsRegistry()
    counters = Counters()
    counters.add("requests", 7)
    registry.register("svc", counters)
    registry.register_gauge("svc.depth", lambda: 3.0)
    for value in (0.001, 0.01, 0.25):
        registry.observe("svc.latency_seconds", value)
    return registry


class TestRoutes:
    def test_metrics_route_serves_lintable_exposition_text(self, registry):
        with ObservabilityServer(registry) as server:
            status, content_type, body = _get(f"{server.url}/metrics")
        assert status == 200
        assert content_type.startswith("text/plain")
        lint_prometheus_text(body)
        assert 'repro_requests_total{source="svc"} 7' in body
        assert "repro_svc_latency_seconds_bucket" in body
        assert "repro_svc_latency_seconds_count 3" in body

    def test_ephemeral_port_binding(self, registry):
        with ObservabilityServer(registry, port=0) as server:
            assert server.port != 0
            assert str(server.port) in server.url

    def test_healthz_detached_reports_ok(self, registry):
        with ObservabilityServer(registry) as server:
            status, _, body = _get(f"{server.url}/healthz")
        assert status == 200
        payload = json.loads(body)
        assert payload == {"status": "ok", "service": "detached"}

    def test_slowlog_route_empty_without_log(self, registry):
        with ObservabilityServer(registry) as server:
            status, _, body = _get(f"{server.url}/slowlog")
        assert status == 200
        assert json.loads(body) == []

    def test_slowlog_and_trace_routes(self, registry):
        slowlog = SlowQueryLog(threshold_s=0.0)
        slowlog.record("fp123", "cube", "array", latency_s=0.5)
        with ObservabilityServer(registry, slowlog=slowlog) as server:
            status, _, body = _get(f"{server.url}/slowlog")
            assert status == 200
            entries = json.loads(body)
            assert len(entries) == 1
            assert entries[0]["fingerprint"] == "fp123"

            status, _, body = _get(f"{server.url}/trace/fp123")
            assert status == 200
            assert json.loads(body)["backend"] == "array"

            status, _, body = _get(f"{server.url}/trace/unknown")
            assert status == 404
            assert "no trace" in json.loads(body)["error"]

    def test_unknown_route_404_lists_routes(self, registry):
        with ObservabilityServer(registry) as server:
            status, _, body = _get(f"{server.url}/nope")
        assert status == 404
        payload = json.loads(body)
        assert "/metrics" in payload["routes"]
        assert "/healthz" in payload["routes"]

    def test_query_string_and_trailing_slash_ignored(self, registry):
        with ObservabilityServer(registry) as server:
            status, _, _ = _get(f"{server.url}/metrics/?debug=1")
            assert status == 200
            status, _, _ = _get(f"{server.url}/healthz/")
            assert status == 200


class _StubService:
    """Just enough QueryService surface for the health probe."""

    def __init__(self, degraded):
        self._degraded = degraded
        self.in_flight = 2
        self.counters = Counters()
        self.counters.add("serve.recoveries", 1)

    def degraded_cubes(self):
        return list(self._degraded)


class TestHealth:
    def test_degraded_service_reports_503(self, registry):
        server = ObservabilityServer(registry, service=_StubService(["cube_a"]))
        with server:
            status, _, body = _get(f"{server.url}/healthz")
        assert status == 503
        payload = json.loads(body)
        assert payload["status"] == "degraded"
        assert payload["degraded_cubes"] == ["cube_a"]
        assert payload["in_flight"] == 2

    def test_healthy_service_reports_200(self, registry):
        with ObservabilityServer(registry, service=_StubService([])) as server:
            status, _, body = _get(f"{server.url}/healthz")
        assert status == 200
        assert json.loads(body)["status"] == "ok"


class TestExplainRoutes:
    def test_explain_index_and_lookup(self, registry):
        from repro.obs.explain import PlanCache

        plans = PlanCache()
        plans.put("fp_a", {"backend": "array", "analyzed": False})
        with ObservabilityServer(registry, plans=plans) as server:
            status, content_type, body = _get(f"{server.url}/explain")
            assert status == 200
            assert content_type.startswith("application/json")
            index = json.loads(body)
            assert index == {"fingerprints": ["fp_a"], "count": 1}

            status, _, body = _get(f"{server.url}/explain/fp_a")
            assert status == 200
            assert json.loads(body)["backend"] == "array"

    def test_explain_unknown_fingerprint_404(self, registry):
        from repro.obs.explain import PlanCache

        with ObservabilityServer(registry, plans=PlanCache()) as server:
            status, _, body = _get(f"{server.url}/explain/deadbeef")
        assert status == 404
        assert "no plan" in json.loads(body)["error"]

    def test_explain_detached_serves_empty_index(self, registry):
        with ObservabilityServer(registry) as server:
            status, _, body = _get(f"{server.url}/explain")
            assert status == 200
            assert json.loads(body) == {"fingerprints": [], "count": 0}
            status, _, _ = _get(f"{server.url}/explain/anything")
            assert status == 404

    def test_routes_listed_in_404(self, registry):
        with ObservabilityServer(registry) as server:
            _, _, body = _get(f"{server.url}/nope")
        routes = json.loads(body)["routes"]
        assert "/explain/<fingerprint>" in routes
        assert "/heatmap/<cube>" in routes


class TestHeatmapRoute:
    def test_heatmap_detached_404(self, registry):
        with ObservabilityServer(registry) as server:
            status, _, body = _get(f"{server.url}/heatmap/cube")
        assert status == 404
        assert "no service" in json.loads(body)["error"]

    def test_heatmap_served_from_live_service(self):
        from repro.olap import ConsolidationQuery, ExecutionOptions
        from repro.serve import QueryService

        from tests.serve.conftest import CONFIG, fresh_engine

        engine = fresh_engine()
        query = ConsolidationQuery.build(
            CONFIG.name,
            group_by={f"dim{d}": f"h{d}1" for d in range(CONFIG.ndim)},
        )
        with QueryService(engine) as service:
            service.execute(query)
            server = ObservabilityServer(engine.db.metrics, service=service)
            with server:
                status, content_type, body = _get(
                    f"{server.url}/heatmap/{CONFIG.name}"
                )
                assert status == 200
                assert content_type.startswith("application/json")
                payload = json.loads(body)
                assert payload["cube"] == CONFIG.name
                assert payload["total_accesses"] > 0
                assert len(payload["accesses"]) <= payload["n_chunks"]
                assert payload["hottest"]

                status, _, body = _get(f"{server.url}/heatmap/unknown")
                assert status == 404
                assert "unknown" in json.loads(body)["error"]

    def test_service_explain_payload_served_end_to_end(self):
        from repro.olap import ConsolidationQuery, ExecutionOptions
        from repro.serve import QueryService

        from tests.serve.conftest import CONFIG, fresh_engine

        engine = fresh_engine()
        query = ConsolidationQuery.build(
            CONFIG.name,
            group_by={f"dim{d}": f"h{d}1" for d in range(CONFIG.ndim)},
        )
        with QueryService(engine) as service:
            plan = service.explain(
                query, ExecutionOptions(backend="array"), analyze=True
            )
            server = ObservabilityServer(engine.db.metrics, service=service)
            with server:
                status, _, body = _get(
                    f"{server.url}/explain/{plan.fingerprint}"
                )
            assert status == 200
            payload = json.loads(body)
            assert payload["analyzed"] is True
            assert payload["fingerprint"] == plan.fingerprint
            assert payload["execution"]["rows"] == plan.rows


class TestLifecycle:
    def test_stop_is_idempotent_and_start_restarts(self, registry):
        server = ObservabilityServer(registry)
        server.start()
        first_port = server.port
        assert _get(f"{server.url}/healthz")[0] == 200
        server.stop()
        server.stop()  # second stop is a no-op
        server.start()
        try:
            assert _get(f"{server.url}/healthz")[0] == 200
        finally:
            server.stop()
        assert first_port != 0


class TestMemoryRoute:
    def test_404_without_accountant(self, registry):
        with ObservabilityServer(registry) as server:
            status, _, body = _get(f"{server.url}/memory")
        assert status == 404
        assert "no memory accountant" in json.loads(body)["error"]

    def test_breakdown_payload_and_top_param(self, registry):
        from repro.obs.memory import MemoryAccountant

        accountant = MemoryAccountant(budget_bytes=10_000)
        accountant.register_store(
            "cachey",
            lambda: 2_048.0,
            top_entries=lambda n: [
                {"key": f"k{i}", "bytes": 100 - i} for i in range(n)
            ],
        )
        server = ObservabilityServer(registry)
        server.memory = accountant
        with server:
            status, _, body = _get(f"{server.url}/memory?top=2")
        assert status == 200
        payload = json.loads(body)
        assert payload["budget_bytes"] == 10_000
        assert payload["total_resident_bytes"] == 2_048
        assert payload["stores"] == {"cachey": 2048}
        assert len(payload["top_entries"]) == 2
        assert payload["top_entries"][0]["store"] == "cachey"

    def test_route_defaults_from_attached_service(self):
        from repro.bench import bench_settings, build_cube_engine
        from repro.data import SyntheticCubeConfig
        from repro.serve import QueryService

        config = SyntheticCubeConfig(
            name="memcube",
            dim_sizes=(4, 4, 4),
            n_valid=32,
            chunk_shape=(2, 2, 2),
            seed=3,
        )
        engine = build_cube_engine(config, bench_settings("small"))
        with QueryService(engine) as service:
            server = ObservabilityServer(engine.db.metrics, service=service)
            with server:
                status, _, body = _get(f"{server.url}/memory")
            assert status == 200
            payload = json.loads(body)
            stores = payload["stores"]
            for expected in (
                "buffer_pool",
                "chunk_cache",
                "result_cache",
                "slowlog",
                "traces",
                "plan_cache",
            ):
                assert expected in stores, stores
            assert payload["total_resident_bytes"] == sum(stores.values())
