"""Tests for the OLAP Array ADT functions (§3.5)."""

import numpy as np
import pytest

from repro.errors import ArrayError, DimensionError

from .conftest import SIZES, h1, make_facts


class TestCellAccess:
    def test_get_valid_cell(self, cube):
        array, facts = cube
        for row in facts[:25]:
            assert array.get_cell(row[:3])[0] == row[3]

    def test_get_invalid_cell_is_none(self, cube):
        array, facts = cube
        valid = {row[:3] for row in facts}
        import itertools

        missing = next(
            c
            for c in itertools.product(*[range(s) for s in SIZES])
            if c not in valid
        )
        assert array.get_cell(missing) is None

    def test_get_wrong_arity(self, cube):
        array, _ = cube
        with pytest.raises(DimensionError):
            array.get_cell((0, 0))

    def test_get_unknown_key(self, cube):
        array, _ = cube
        with pytest.raises(DimensionError):
            array.get_cell((99, 0, 0))

    def test_write_overwrites_existing_cell(self, cube):
        array, facts = cube
        target = facts[0][:3]
        array.write_cell(target, [1234])
        assert array.get_cell(target)[0] == 1234
        assert array.n_valid == len(facts)

    def test_write_inserts_new_cell(self, cube):
        array, facts = cube
        valid = {row[:3] for row in facts}
        import itertools

        missing = next(
            c
            for c in itertools.product(*[range(s) for s in SIZES])
            if c not in valid
        )
        array.write_cell(missing, [777])
        assert array.get_cell(missing)[0] == 777
        assert array.n_valid == len(facts) + 1

    def test_write_wrong_measure_arity(self, cube):
        array, facts = cube
        with pytest.raises(ArrayError):
            array.write_cell(facts[0][:3], [1, 2])


class TestRegionSum:
    def test_whole_array(self, cube):
        array, facts = cube
        assert array.sum_region([None] * 3)[0] == sum(r[3] for r in facts)

    def test_single_cell_region(self, cube):
        array, facts = cube
        row = facts[0]
        box = [(row[d], row[d]) for d in range(3)]
        assert array.sum_region(box)[0] == row[3]

    def test_partial_box(self, cube):
        array, facts = cube
        box = [(0, 2), (1, 3), None]
        expected = sum(
            r[3] for r in facts if 0 <= r[0] <= 2 and 1 <= r[1] <= 3
        )
        assert array.sum_region(box)[0] == expected

    def test_untouched_chunks_not_read(self, cube, fm_big):
        array, _ = cube
        fm_big.pool.clear()
        array.counters.reset()
        array.sum_region([(0, 0), (0, 0), (0, 0)])
        assert array.counters.get("chunks_read") <= 1

    def test_bad_ranges(self, cube):
        array, _ = cube
        with pytest.raises(DimensionError):
            array.sum_region([None, None])
        with pytest.raises(DimensionError):
            array.sum_region([(0, 99), None, None])
        with pytest.raises(DimensionError):
            array.sum_region([(3, 2), None, None])


class TestSlicing:
    def test_slice_matches_facts(self, cube):
        array, facts = cube
        got = array.slice_dim("dim1", 2)
        expected = sorted(
            (row[:3], row[3]) for row in facts if row[1] == 2
        )
        assert [(keys, int(v[0])) for keys, v in got] == [
            (keys, v) for keys, v in expected
        ]

    def test_slice_by_dim_number(self, cube):
        array, facts = cube
        assert array.slice_dim(0, 1) == array.slice_dim("dim0", 1)

    def test_slice_unknown_key(self, cube):
        array, _ = cube
        with pytest.raises(DimensionError):
            array.slice_dim("dim0", 999)

    def test_slice_unknown_dim(self, cube):
        array, _ = cube
        with pytest.raises(DimensionError):
            array.slice_dim("dimX", 0)


class TestIndices:
    def test_attribute_index_lists(self, cube):
        array, _ = cube
        tree = array.attribute_index("dim0", "h1")
        expected = [k for k in range(SIZES[0]) if h1(0, k) == "A00"]
        assert tree.search("A00") == expected

    def test_attribute_index_unknown_attr(self, cube):
        array, _ = cube
        with pytest.raises(DimensionError):
            array.attribute_index("dim0", "nope")

    def test_index_to_index_loads(self, cube):
        array, _ = cube
        i2i = array.index_to_index("dim1", "h1")
        assert len(i2i) == SIZES[1]
        assert set(i2i.target_keys) == {h1(1, k) for k in range(SIZES[1])}

    def test_index_to_index_unknown_attr(self, cube):
        array, _ = cube
        with pytest.raises(DimensionError):
            array.index_to_index("dim1", "hX")

    def test_hierarchy_attrs(self, cube):
        array, _ = cube
        assert array.hierarchy_attrs("dim2") == ["h1", "h2"]


class TestStats:
    def test_density(self, cube):
        array, facts = cube
        logical = np.prod(SIZES)
        assert array.density == pytest.approx(len(facts) / logical)

    def test_storage_accounting(self, cube):
        array, _ = cube
        with_indices = array.storage_bytes(include_indices=True)
        without = array.storage_bytes(include_indices=False)
        assert 0 < without < with_indices

    def test_repr(self, cube):
        array, _ = cube
        assert "cube" in repr(array)
