"""Tests for the §4.1 array consolidation algorithm."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ConsolidationSpec, OLAPArray, consolidate
from repro.core.builder import build_olap_array
from repro.errors import QueryError
from repro.util.stats import Counters

from .conftest import (
    FANOUTS,
    SIZES,
    h1,
    h2,
    make_dimensions,
    make_facts,
    reference_rows,
)

LEVEL1 = [ConsolidationSpec.level("h1")] * 3


@pytest.mark.parametrize("mode", ["interpreted", "vectorized"])
class TestBothModes:
    def test_group_by_h1(self, cube, mode):
        array, facts = cube
        out = consolidate(array, LEVEL1, mode=mode)
        assert out.rows == reference_rows(
            facts, [lambda k, d=d: h1(d, k) for d in range(3)]
        )

    def test_group_by_h2(self, cube, mode):
        array, facts = cube
        specs = [ConsolidationSpec.level("h2")] * 3
        out = consolidate(array, specs, mode=mode)
        assert out.rows == reference_rows(
            facts, [lambda k, d=d: h2(d, k) for d in range(3)]
        )

    def test_mixed_levels(self, cube, mode):
        array, facts = cube
        specs = [
            ConsolidationSpec.level("h1"),
            ConsolidationSpec.level("h2"),
            ConsolidationSpec.key(),
        ]
        out = consolidate(array, specs, mode=mode)
        assert out.rows == reference_rows(
            facts,
            [lambda k: h1(0, k), lambda k: h2(1, k), lambda k: k],
        )

    def test_drop_dimension(self, cube, mode):
        array, facts = cube
        specs = [
            ConsolidationSpec.level("h1"),
            ConsolidationSpec.drop(),
            ConsolidationSpec.level("h1"),
        ]
        out = consolidate(array, specs, mode=mode)
        assert out.rows == reference_rows(
            facts, [lambda k: h1(0, k), None, lambda k: h1(2, k)]
        )

    def test_total_preserved(self, cube, mode):
        array, facts = cube
        out = consolidate(array, LEVEL1, mode=mode)
        assert sum(r[-1] for r in out.rows) == sum(f[3] for f in facts)

    def test_count_aggregate(self, cube, mode):
        array, facts = cube
        out = consolidate(array, LEVEL1, aggregate="count", mode=mode)
        assert sum(r[-1] for r in out.rows) == len(facts)

    def test_min_max_aggregates(self, cube, mode):
        array, facts = cube
        specs = [ConsolidationSpec.drop()] * 2 + [ConsolidationSpec.level("h1")]
        low = consolidate(array, specs, aggregate="min", mode=mode)
        high = consolidate(array, specs, aggregate="max", mode=mode)
        for (group, lo), (_, hi) in zip(low.rows, high.rows):
            matching = [f[3] for f in facts if h1(2, f[2]) == group]
            assert lo == min(matching)
            assert hi == max(matching)

    def test_counters(self, cube, mode):
        array, facts = cube
        counters = Counters()
        out = consolidate(array, LEVEL1, mode=mode, counters=counters)
        assert counters.get("cells_scanned") == len(facts)
        assert counters.get("result_cells") == len(out.rows)
        assert counters.get("chunks_read") > 0


class TestModeEquivalence:
    def test_modes_agree_on_random_cubes(self, fm_big):
        for seed in (1, 7, 13):
            facts = make_facts(density=0.3, seed=seed)
            array = build_olap_array(
                fm_big, f"c{seed}", make_dimensions(), facts, (3, 2, 4)
            )
            a = consolidate(array, LEVEL1, mode="interpreted")
            b = consolidate(array, LEVEL1, mode="vectorized")
            assert a.rows == b.rows

    def test_avg_agrees_between_modes(self, cube):
        array, _ = cube
        a = consolidate(array, LEVEL1, aggregate="avg", mode="interpreted")
        b = consolidate(array, LEVEL1, aggregate="avg", mode="vectorized")
        for ra, rb in zip(a.rows, b.rows):
            assert ra[:-1] == rb[:-1]
            assert ra[-1] == pytest.approx(rb[-1])


class TestValidation:
    def test_spec_arity(self, cube):
        array, _ = cube
        with pytest.raises(QueryError):
            consolidate(array, LEVEL1[:2])

    def test_unknown_mode(self, cube):
        array, _ = cube
        with pytest.raises(QueryError):
            consolidate(array, LEVEL1, mode="gpu")

    def test_unknown_spec_kind(self, cube):
        array, _ = cube
        with pytest.raises(QueryError):
            consolidate(array, [ConsolidationSpec("weird")] * 3)

    def test_aggregate_arity(self, cube):
        array, _ = cube
        with pytest.raises(QueryError):
            consolidate(array, LEVEL1, aggregate=["sum", "sum"])

    def test_empty_array_gives_no_rows(self, fm_big):
        array = build_olap_array(
            fm_big, "empty", make_dimensions(), [], (3, 2, 4)
        )
        assert consolidate(array, LEVEL1).rows == []


class TestMaterialize:
    def test_result_is_a_persisted_array(self, cube, fm_big):
        array, facts = cube
        out = consolidate(array, LEVEL1, materialize_as="cube.h1")
        assert out.result_array is not None
        reopened = OLAPArray.open(fm_big, "cube.h1")
        assert reopened.geometry.shape == tuple(FANOUTS)
        assert reopened.n_valid == len(out.rows)
        for row in out.rows:
            assert reopened.get_cell(row[:3])[0] == row[3]

    def test_materialized_result_consolidates_again(self, cube, fm_big):
        # roll up the h1 result with a second consolidation (drop two dims)
        array, facts = cube
        out = consolidate(array, LEVEL1, materialize_as="cube.step1")
        second = consolidate(
            out.result_array,
            [
                ConsolidationSpec.key(),
                ConsolidationSpec.drop(),
                ConsolidationSpec.drop(),
            ],
        )
        expected = reference_rows(facts, [lambda k: h1(0, k), None, None])
        assert second.rows == expected

    def test_fully_collapsed_materialization_rejected(self, cube):
        array, _ = cube
        with pytest.raises(QueryError):
            consolidate(
                array,
                [ConsolidationSpec.drop()] * 3,
                materialize_as="nope",
            )


@settings(max_examples=10, deadline=None)
@given(st.integers(0, 10_000), st.floats(0.05, 0.9))
def test_consolidation_matches_reference_property(seed, density):
    from repro.storage import BufferPool, FileManager, SimulatedDisk

    fm = FileManager(
        BufferPool(SimulatedDisk(page_size=1024), capacity_bytes=512 * 1024)
    )
    facts = make_facts(density=density, seed=seed)
    array = build_olap_array(fm, "c", make_dimensions(), facts, (3, 2, 4))
    out = consolidate(array, LEVEL1, mode="vectorized")
    assert out.rows == reference_rows(
        facts, [lambda k, d=d: h1(d, k) for d in range(3)]
    )
