"""Unit and property tests for chunk codecs."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    AdaptiveCodec,
    ChunkOffsetCodec,
    DenseCodec,
    LZWDenseCodec,
    get_codec,
)
from repro.core.compression import decode_chunk
from repro.errors import CompressionError

CELLS = 64


def make_chunk(offsets, values, p=1):
    off = np.array(offsets, dtype=np.int32)
    val = np.array(values, dtype=np.int64).reshape(len(offsets), p)
    return off, val


ALL_CODECS = [ChunkOffsetCodec(), DenseCodec(), LZWDenseCodec()]


@pytest.mark.parametrize("codec", ALL_CODECS, ids=lambda c: c.name)
class TestRoundtrip:
    def test_simple(self, codec):
        off, val = make_chunk([0, 5, 63], [10, 20, 30])
        payload = codec.encode(off, val, CELLS, "int64")
        off2, val2 = codec.decode(payload, CELLS, 1, "int64")
        assert off2.tolist() == [0, 5, 63]
        assert val2.ravel().tolist() == [10, 20, 30]

    def test_empty_chunk(self, codec):
        off, val = make_chunk([], [])
        payload = codec.encode(off, val, CELLS, "int64")
        off2, val2 = codec.decode(payload, CELLS, 1, "int64")
        assert len(off2) == 0 and val2.shape == (0, 1)

    def test_full_chunk(self, codec):
        off, val = make_chunk(list(range(CELLS)), list(range(CELLS)))
        payload = codec.encode(off, val, CELLS, "int64")
        off2, val2 = codec.decode(payload, CELLS, 1, "int64")
        assert off2.tolist() == list(range(CELLS))
        assert val2.ravel().tolist() == list(range(CELLS))

    def test_multi_measure(self, codec):
        off = np.array([3, 9], dtype=np.int32)
        val = np.array([[1, 2, 3], [4, 5, 6]], dtype=np.int64)
        payload = codec.encode(off, val, CELLS, "int64")
        off2, val2 = codec.decode(payload, CELLS, 3, "int64")
        assert val2.tolist() == [[1, 2, 3], [4, 5, 6]]

    def test_float_measures(self, codec):
        off = np.array([1], dtype=np.int32)
        val = np.array([[2.5]], dtype=np.float64)
        payload = codec.encode(off, val, CELLS, "float64")
        _, val2 = codec.decode(payload, CELLS, 1, "float64")
        assert val2[0, 0] == 2.5

    def test_tagged_decode(self, codec):
        off, val = make_chunk([7], [70])
        payload = codec.encode(off, val, CELLS, "int64")
        off2, val2 = decode_chunk(payload, CELLS, 1, "int64")
        assert off2.tolist() == [7] and val2[0, 0] == 70


class TestValidation:
    def test_unsorted_offsets_rejected(self):
        off, val = make_chunk([5, 3], [1, 2])
        with pytest.raises(CompressionError):
            ChunkOffsetCodec().encode(off, val, CELLS, "int64")

    def test_duplicate_offsets_rejected(self):
        off, val = make_chunk([3, 3], [1, 2])
        with pytest.raises(CompressionError):
            ChunkOffsetCodec().encode(off, val, CELLS, "int64")

    def test_offset_out_of_chunk_rejected(self):
        off, val = make_chunk([CELLS], [1])
        with pytest.raises(CompressionError):
            DenseCodec().encode(off, val, CELLS, "int64")

    def test_count_mismatch_rejected(self):
        off = np.array([1, 2], dtype=np.int32)
        val = np.array([[1]], dtype=np.int64)
        with pytest.raises(CompressionError):
            ChunkOffsetCodec().encode(off, val, CELLS, "int64")

    def test_bad_dtype_rejected(self):
        off, val = make_chunk([1], [1])
        with pytest.raises(CompressionError):
            ChunkOffsetCodec().encode(off, val, CELLS, "int16")

    def test_unknown_tag_rejected(self):
        with pytest.raises(CompressionError):
            decode_chunk(b"\xff\x00", CELLS, 1, "int64")

    def test_empty_payload_rejected(self):
        with pytest.raises(CompressionError):
            decode_chunk(b"", CELLS, 1, "int64")

    def test_unknown_codec_name(self):
        with pytest.raises(CompressionError):
            get_codec("zstd")


class TestSizes:
    def test_sparse_chunk_offset_beats_dense(self):
        off, val = make_chunk([0, 10], [1, 2])
        sparse = ChunkOffsetCodec().encode(off, val, 4096, "int64")
        dense = DenseCodec().encode(off, val, 4096, "int64")
        assert len(sparse) < len(dense) / 100

    def test_dense_beats_pairs_on_full_chunk(self):
        off, val = make_chunk(list(range(CELLS)), [7] * CELLS)
        pairs = ChunkOffsetCodec().encode(off, val, CELLS, "int64")
        dense = DenseCodec().encode(off, val, CELLS, "int64")
        assert len(dense) < len(pairs)

    def test_lzw_compresses_sparse_dense_tile(self):
        off, val = make_chunk([1, 100], [5, 6])
        dense = DenseCodec().encode(off, val, 4096, "int64")
        lzw = LZWDenseCodec().encode(off, val, 4096, "int64")
        assert len(lzw) < len(dense) / 4

    def test_chunk_offset_cost_formula(self):
        # tag + u32 count + (4 + 8p) bytes per valid cell
        off, val = make_chunk([2, 4, 8], [1, 2, 3])
        payload = ChunkOffsetCodec().encode(off, val, CELLS, "int64")
        assert len(payload) == 1 + 4 + 3 * (4 + 8)


class TestAdaptive:
    def test_sparse_goes_chunk_offset(self):
        codec = AdaptiveCodec()
        off, val = make_chunk([1], [1])
        assert codec.encode(off, val, CELLS, "int64")[0] == ChunkOffsetCodec.tag

    def test_dense_goes_dense(self):
        codec = AdaptiveCodec()
        off, val = make_chunk(list(range(CELLS)), [1] * CELLS)
        assert codec.encode(off, val, CELLS, "int64")[0] == DenseCodec.tag

    def test_threshold_respected(self):
        codec = AdaptiveCodec(dense_threshold=0.01)
        off, val = make_chunk([1], [1])
        assert codec.encode(off, val, CELLS, "int64")[0] == DenseCodec.tag

    def test_decode_either_form(self):
        codec = AdaptiveCodec()
        for offsets in ([1, 5], list(range(CELLS))):
            off, val = make_chunk(offsets, [9] * len(offsets))
            payload = codec.encode(off, val, CELLS, "int64")
            off2, val2 = codec.decode(payload, CELLS, 1, "int64")
            assert off2.tolist() == offsets

    def test_bad_threshold(self):
        with pytest.raises(CompressionError):
            AdaptiveCodec(dense_threshold=0.0)


@settings(max_examples=80, deadline=None)
@given(st.binary(min_size=1, max_size=300))
def test_fuzzed_payloads_never_escape_compression_error(payload):
    """Arbitrary bytes must decode cleanly or raise CompressionError."""
    from repro.errors import CompressionError

    try:
        offsets, values = decode_chunk(payload, 64, 1, "int64")
    except CompressionError:
        return
    assert len(offsets) == len(values)
    if len(offsets):
        assert 0 <= offsets.min() and offsets.max() < 64


@settings(max_examples=40, deadline=None)
@given(
    st.integers(8, 256).flatmap(
        lambda cells: st.tuples(
            st.just(cells),
            st.lists(
                st.integers(0, cells - 1), unique=True, max_size=cells
            ).map(sorted),
            st.integers(1, 3),
        )
    ),
    st.sampled_from(["chunk-offset", "dense", "lzw-dense", "adaptive"]),
    st.data(),
)
def test_roundtrip_random_chunks(params, codec_name, data):
    cells, offsets, p = params
    values = [
        [data.draw(st.integers(-(2**40), 2**40)) for _ in range(p)]
        for _ in offsets
    ]
    off = np.array(offsets, dtype=np.int32)
    val = np.array(values, dtype=np.int64).reshape(len(offsets), p)
    codec = get_codec(codec_name)
    payload = codec.encode(off, val, cells, "int64")
    off2, val2 = decode_chunk(payload, cells, p, "int64")
    assert off2.tolist() == offsets
    assert val2.tolist() == val.tolist()
