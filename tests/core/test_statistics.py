"""Tests for the statistical ADT functions (§3.5's promised analytics)."""

import numpy as np
import pytest

from repro.core.builder import DimensionData, build_olap_array
from repro.errors import ArrayError

from .conftest import make_dimensions


@pytest.fixture
def two_measure_cube(fm_big):
    """A cube with two correlated measures per cell."""
    rng = np.random.default_rng(7)
    facts = []
    for i in range(6):
        for j in range(5):
            for k in range(7):
                if (i + j + k) % 2:
                    continue
                x = int(rng.integers(1, 50))
                y = 3 * x + int(rng.integers(-2, 3))  # strongly correlated
                facts.append((i, j, k, x, y))
    array = build_olap_array(
        fm_big,
        "stats",
        make_dimensions(),
        facts,
        (3, 2, 4),
        measure_names=["x", "y"],
    )
    return array, facts


class TestMeasureStats:
    def test_whole_array_stats_match_numpy(self, two_measure_cube):
        array, facts = two_measure_cube
        stats = array.measure_stats()
        xs = np.array([f[3] for f in facts], dtype=float)
        assert stats["x"]["count"] == len(facts)
        assert stats["x"]["sum"] == pytest.approx(xs.sum())
        assert stats["x"]["mean"] == pytest.approx(xs.mean())
        assert stats["x"]["var"] == pytest.approx(xs.var())

    def test_region_stats(self, two_measure_cube):
        array, facts = two_measure_cube
        stats = array.measure_stats([(0, 2), None, None])
        selected = [f for f in facts if f[0] <= 2]
        assert stats["y"]["count"] == len(selected)
        assert stats["y"]["sum"] == pytest.approx(sum(f[4] for f in selected))

    def test_empty_region(self, cube):
        array, facts = cube
        valid = {f[:3] for f in facts}
        import itertools

        missing = next(
            c
            for c in itertools.product(range(6), range(5), range(7))
            if c not in valid
        )
        stats = array.measure_stats([(c, c) for c in missing])
        assert stats["m0"] == {"count": 0}


class TestCorrelation:
    def test_strong_positive_correlation(self, two_measure_cube):
        array, _ = two_measure_cube
        assert array.correlation("x", "y") > 0.99

    def test_matches_numpy_corrcoef(self, two_measure_cube):
        array, facts = two_measure_cube
        xs = [f[3] for f in facts]
        ys = [f[4] for f in facts]
        expected = np.corrcoef(xs, ys)[0, 1]
        assert array.correlation("x", "y") == pytest.approx(expected)

    def test_self_correlation_is_one(self, two_measure_cube):
        array, _ = two_measure_cube
        assert array.correlation("x", "x") == pytest.approx(1.0)

    def test_region_restricted(self, two_measure_cube):
        array, facts = two_measure_cube
        region = [(0, 1), None, None]
        selected = [f for f in facts if f[0] <= 1]
        expected = np.corrcoef(
            [f[3] for f in selected], [f[4] for f in selected]
        )[0, 1]
        got = array.correlation("x", "y", ranges=region)
        assert got == pytest.approx(expected)

    def test_too_few_cells_is_none(self, fm_big):
        facts = [(0, 0, 0, 5, 7)]
        array = build_olap_array(
            fm_big,
            "one",
            make_dimensions(),
            facts,
            (3, 2, 4),
            measure_names=["x", "y"],
        )
        assert array.correlation("x", "y") is None

    def test_constant_measure_is_none(self, fm_big):
        facts = [(0, 0, 0, 5, 1), (1, 1, 1, 5, 2), (2, 2, 2, 5, 3)]
        array = build_olap_array(
            fm_big,
            "const",
            make_dimensions(),
            facts,
            (3, 2, 4),
            measure_names=["x", "y"],
        )
        assert array.correlation("x", "y") is None

    def test_unknown_measure(self, two_measure_cube):
        array, _ = two_measure_cube
        with pytest.raises(ArrayError):
            array.correlation("x", "zzz")
