"""Unit and property tests for chunk geometry."""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ChunkGeometry
from repro.errors import ChunkError


class TestConstruction:
    def test_basic_grid(self):
        g = ChunkGeometry((40, 40, 40, 100), (20, 20, 20, 10))
        assert g.grid == (2, 2, 2, 10)
        assert g.n_chunks == 80
        assert g.chunk_cells == 20 * 20 * 20 * 10
        assert g.logical_cells == 40 * 40 * 40 * 100

    def test_paper_chunk_counts(self):
        # §5.5.1: the 40x40x40x{50,100,1000} arrays have 40/80/800 chunks
        chunk = (20, 20, 20, 10)
        for fourth, chunks in ((50, 40), (100, 80), (1000, 800)):
            assert ChunkGeometry((40, 40, 40, fourth), chunk).n_chunks == chunks

    def test_uneven_shapes_round_up(self):
        g = ChunkGeometry((10, 7), (4, 4))
        assert g.grid == (3, 2)

    def test_chunk_clamped_to_shape(self):
        g = ChunkGeometry((3, 3), (10, 10))
        assert g.chunk_shape == (3, 3)
        assert g.n_chunks == 1

    def test_rank_mismatch(self):
        with pytest.raises(ChunkError):
            ChunkGeometry((4, 4), (2,))

    def test_empty_shape(self):
        with pytest.raises(ChunkError):
            ChunkGeometry((), ())

    def test_nonpositive(self):
        with pytest.raises(ChunkError):
            ChunkGeometry((0, 4), (1, 1))
        with pytest.raises(ChunkError):
            ChunkGeometry((4, 4), (0, 1))


class TestScalarMath:
    def test_paper_offset_formula(self):
        # §3.3: s = ((i*c)+j)*c)+k for a cubic chunk of side c
        c = 5
        g = ChunkGeometry((c, c, c), (c, c, c))
        for i, j, k in itertools.product(range(c), repeat=3):
            assert g.offset_in_chunk((i, j, k)) == ((i * c) + j) * c + k

    def test_chunk_numbers_row_major(self):
        g = ChunkGeometry((4, 6), (2, 2))
        assert g.chunk_of((0, 0)) == 0
        assert g.chunk_of((0, 5)) == 2
        assert g.chunk_of((2, 0)) == 3
        assert g.chunk_of((3, 5)) == 5

    def test_locate_roundtrip_all_cells(self):
        g = ChunkGeometry((5, 7, 3), (2, 3, 2))
        seen = set()
        for coords in itertools.product(range(5), range(7), range(3)):
            chunk_no, offset = g.locate(coords)
            assert g.cell_of(chunk_no, offset) == coords
            assert (chunk_no, offset) not in seen
            seen.add((chunk_no, offset))

    def test_chunk_origin_and_extent(self):
        g = ChunkGeometry((10, 7), (4, 4))
        assert g.chunk_origin(0) == (0, 0)
        assert g.chunk_extent(0) == (4, 4)
        last = g.n_chunks - 1
        assert g.chunk_origin(last) == (8, 4)
        assert g.chunk_extent(last) == (2, 3)

    def test_valid_cells_honor_edges(self):
        g = ChunkGeometry((10, 7), (4, 4))
        total = sum(g.valid_cells_in_chunk(c) for c in range(g.n_chunks))
        assert total == 70

    def test_out_of_bounds_coords(self):
        g = ChunkGeometry((4, 4), (2, 2))
        with pytest.raises(ChunkError):
            g.chunk_of((4, 0))
        with pytest.raises(ChunkError):
            g.offset_in_chunk((0, -1))
        with pytest.raises(ChunkError):
            g.chunk_of((0,))

    def test_bad_chunk_number(self):
        g = ChunkGeometry((4, 4), (2, 2))
        with pytest.raises(ChunkError):
            g.chunk_coords(4)
        with pytest.raises(ChunkError):
            g.cell_of(0, 99)


class TestBulkMath:
    def test_matches_scalar(self):
        g = ChunkGeometry((6, 5, 7), (3, 2, 4))
        coords = np.array(
            list(itertools.product(range(6), range(5), range(7)))
        )
        chunks, offsets = g.coords_to_chunk_offset(coords)
        for row, cn, off in zip(coords, chunks, offsets):
            assert g.locate(tuple(row)) == (cn, off)

    def test_roundtrip_through_coords(self):
        g = ChunkGeometry((6, 5), (4, 3))
        coords = np.array([[0, 0], [5, 4], [3, 3], [4, 2]])
        chunks, offsets = g.coords_to_chunk_offset(coords)
        for i in range(len(coords)):
            back = g.chunk_offset_to_coords(int(chunks[i]), offsets[i : i + 1])
            assert tuple(back[0]) == tuple(coords[i])

    def test_bad_shapes_rejected(self):
        g = ChunkGeometry((4, 4), (2, 2))
        with pytest.raises(ChunkError):
            g.coords_to_chunk_offset(np.zeros((3, 3), dtype=np.int64))
        with pytest.raises(ChunkError):
            g.coords_to_chunk_offset(np.array([[0, 7]]))

    def test_empty_input(self):
        g = ChunkGeometry((4, 4), (2, 2))
        chunks, offsets = g.coords_to_chunk_offset(np.empty((0, 2), np.int64))
        assert chunks.size == 0 and offsets.size == 0


@st.composite
def geometries(draw):
    ndim = draw(st.integers(1, 4))
    shape = tuple(draw(st.integers(1, 12)) for _ in range(ndim))
    chunk = tuple(draw(st.integers(1, 12)) for _ in range(ndim))
    return ChunkGeometry(shape, chunk)


@settings(max_examples=60, deadline=None)
@given(geometries(), st.data())
def test_locate_is_a_bijection(g, data):
    coords = tuple(
        data.draw(st.integers(0, s - 1), label=f"axis{i}")
        for i, s in enumerate(g.shape)
    )
    chunk_no, offset = g.locate(coords)
    assert 0 <= chunk_no < g.n_chunks
    assert 0 <= offset < g.chunk_cells
    assert g.cell_of(chunk_no, offset) == coords


@settings(max_examples=40, deadline=None)
@given(geometries())
def test_grid_covers_all_chunks(g):
    seen = {g.chunk_of(g.chunk_origin(c)) for c in range(g.n_chunks)}
    assert seen == set(range(g.n_chunks))
