"""Tests for the chunk meta directory."""

import pytest

from repro.core.meta import NO_CHUNK, ChunkDirectory
from repro.errors import ChunkError


class TestChunkDirectory:
    def test_created_empty(self, fm):
        directory = ChunkDirectory.create(fm, "dir", 10)
        assert directory.n_chunks == 10
        assert directory.entry(3) == (NO_CHUNK, 0, 0)
        assert directory.total_valid() == 0

    def test_set_and_get_entries(self, fm):
        directory = ChunkDirectory.create(fm, "dir", 5)
        directory.set_entry(2, oid=7, length=900, count=42)
        assert directory.entry(2) == (7, 900, 42)
        assert directory.total_valid() == 42
        assert directory.total_payload_bytes() == 900

    def test_entries_span_pages(self, fm):
        # 1 KiB pages hold 42 entries; force several pages
        directory = ChunkDirectory.create(fm, "dir", 200)
        for c in range(200):
            directory.set_entry(c, c, c * 10, 1)
        assert directory.entry(199) == (199, 1990, 1)
        assert directory.total_valid() == 200

    def test_out_of_range(self, fm):
        directory = ChunkDirectory.create(fm, "dir", 4)
        with pytest.raises(ChunkError):
            directory.entry(4)
        with pytest.raises(ChunkError):
            directory.set_entry(-1, 0, 0, 0)

    def test_nonpositive_chunks_rejected(self, fm):
        with pytest.raises(ChunkError):
            ChunkDirectory.create(fm, "dir", 0)

    def test_array_meta_pointer(self, fm):
        directory = ChunkDirectory.create(fm, "dir", 3)
        assert directory.array_meta_oid == NO_CHUNK
        directory.set_array_meta_oid(12)
        assert directory.array_meta_oid == 12

    def test_survives_cold_reopen(self, fm):
        directory = ChunkDirectory.create(fm, "dir", 8)
        directory.set_entry(5, 3, 777, 9)
        directory.set_array_meta_oid(4)
        fm.pool.clear()
        reopened = ChunkDirectory.open(fm, "dir")
        assert reopened.n_chunks == 8
        assert reopened.entry(5) == (3, 777, 9)
        assert reopened.array_meta_oid == 4

    def test_open_uninitialized_rejected(self, fm):
        fm.create("raw")
        with pytest.raises(ChunkError):
            ChunkDirectory.open(fm, "raw")

    def test_size_bytes(self, fm):
        directory = ChunkDirectory.create(fm, "dir", 100)
        assert directory.size_bytes() > 0
