"""Shared cube fixture and reference oracle for the core tests."""

import itertools
import random

import pytest

from repro.core.builder import DimensionData, build_olap_array
from repro.storage import BufferPool, FileManager, SimulatedDisk

SIZES = (6, 5, 7)
FANOUTS = (2, 3, 2)


def h1(d, key):
    return f"A{d}{key % FANOUTS[d]}"


def h2(d, key):
    return f"B{d}{(key % FANOUTS[d]) % 2}"


def make_dimensions(sizes=SIZES):
    return [
        DimensionData(
            f"dim{d}",
            list(range(size)),
            {
                "h1": [h1(d, k) for k in range(size)],
                "h2": [h2(d, k) for k in range(size)],
            },
        )
        for d, size in enumerate(sizes)
    ]


def make_facts(sizes=SIZES, density=0.5, seed=42):
    rng = random.Random(seed)
    cells = [
        c
        for c in itertools.product(*[range(s) for s in sizes])
        if rng.random() < density
    ]
    return [c + (rng.randint(1, 99),) for c in cells]


@pytest.fixture
def fm_big():
    disk = SimulatedDisk(page_size=1024)
    return FileManager(BufferPool(disk, capacity_bytes=512 * 1024))


@pytest.fixture
def cube(fm_big):
    facts = make_facts()
    array = build_olap_array(
        fm_big, "cube", make_dimensions(), facts, chunk_shape=(3, 2, 4)
    )
    return array, facts


def reference_rows(facts, group_fns, selector=None, measure_index=None):
    """Oracle consolidation over raw fact tuples.

    ``group_fns`` holds one function per dimension mapping a key to its
    group value, or ``None`` for dropped dimensions.
    """
    ndim = len(group_fns)
    if measure_index is None:
        measure_index = ndim
    groups = {}
    for row in facts:
        if selector is not None and not selector(row):
            continue
        key = tuple(
            fn(row[d]) for d, fn in enumerate(group_fns) if fn is not None
        )
        groups[key] = groups.get(key, 0) + row[measure_index]
    return sorted(k + (v,) for k, v in groups.items())
