"""Tests for the OLAP array bulk loader."""

import pytest

from repro.core import OLAPArray
from repro.core.builder import DimensionData, build_olap_array
from repro.core.meta import NO_CHUNK
from repro.errors import ArrayError, DimensionError

from .conftest import SIZES, make_dimensions, make_facts


class TestBuild:
    def test_shape_follows_dimension_sizes(self, cube):
        array, _ = cube
        assert array.geometry.shape == SIZES

    def test_all_facts_stored(self, cube):
        array, facts = cube
        assert array.n_valid == len(facts)

    def test_chunks_sorted_by_offset(self, cube):
        array, _ = cube
        for _, offsets, _ in array.cells():
            assert (offsets[1:] > offsets[:-1]).all()

    def test_chunk_objects_in_chunk_number_order(self, cube):
        array, _ = cube
        previous = -1
        for chunk_no in range(array.geometry.n_chunks):
            oid, _, count = array.directory.entry(chunk_no)
            if oid != NO_CHUNK:
                first_page = array.chunks.first_page(oid)
                assert first_page > previous
                previous = first_page

    def test_empty_chunks_have_no_object(self, fm_big):
        dims = make_dimensions()
        facts = [(0, 0, 0, 5)]  # a single cell: all other chunks empty
        array = build_olap_array(fm_big, "one", dims, facts, (3, 2, 4))
        entries = [
            array.directory.entry(c) for c in range(array.geometry.n_chunks)
        ]
        assert sum(1 for e in entries if e[0] != NO_CHUNK) == 1

    def test_no_facts_at_all(self, fm_big):
        array = build_olap_array(
            fm_big, "empty", make_dimensions(), [], (3, 2, 4)
        )
        assert array.n_valid == 0
        assert list(array.cells()) == []

    def test_duplicate_cell_rejected(self, fm_big):
        facts = [(0, 0, 0, 1), (0, 0, 0, 2)]
        with pytest.raises(ArrayError):
            build_olap_array(fm_big, "dup", make_dimensions(), facts, (3, 2, 4))

    def test_unknown_dimension_key_rejected(self, fm_big):
        facts = [(99, 0, 0, 1)]
        with pytest.raises(DimensionError):
            build_olap_array(fm_big, "bad", make_dimensions(), facts, (3, 2, 4))

    def test_measureless_tuples_rejected(self, fm_big):
        with pytest.raises(ArrayError):
            build_olap_array(
                fm_big, "bad", make_dimensions(), [(0, 0, 0)], (3, 2, 4)
            )

    def test_no_dimensions_rejected(self, fm_big):
        with pytest.raises(DimensionError):
            build_olap_array(fm_big, "bad", [], [], ())

    def test_attribute_arity_validated(self):
        with pytest.raises(DimensionError):
            DimensionData("d", [1, 2], {"h1": ["only-one"]})

    def test_measure_names(self, fm_big):
        facts = [(0, 0, 0, 5, 2.0)]
        # mixed measure count: dtype stays int64 unless asked
        array = build_olap_array(
            fm_big,
            "two-measures",
            make_dimensions(),
            facts,
            (3, 2, 4),
            measure_names=["volume", "weight"],
        )
        assert array.n_measures == 2
        assert array.measure_names == ["volume", "weight"]

    def test_measure_name_arity_rejected(self, fm_big):
        with pytest.raises(ArrayError):
            build_olap_array(
                fm_big,
                "bad",
                make_dimensions(),
                [(0, 0, 0, 1)],
                (3, 2, 4),
                measure_names=["a", "b"],
            )

    def test_reopen_by_name(self, cube, fm_big):
        array, facts = cube
        fm_big.pool.clear()
        reopened = OLAPArray.open(fm_big, "cube")
        assert reopened.geometry == array.geometry
        assert reopened.n_valid == len(facts)
        assert reopened.dim_names == ["dim0", "dim1", "dim2"]

    def test_codec_choice_persisted(self, fm_big):
        array = build_olap_array(
            fm_big,
            "dense-cube",
            make_dimensions(),
            make_facts(density=0.9),
            (3, 2, 4),
            codec="adaptive",
        )
        reopened = OLAPArray.open(fm_big, "dense-cube")
        assert reopened.codec_name == "adaptive"
        assert reopened.n_valid == array.n_valid

    def test_string_dimension_keys(self, fm_big):
        dims = [
            DimensionData("product", ["apple", "pear"], {"h1": ["f", "f"]}),
            DimensionData("store", ["s1", "s2"], {"h1": ["c1", "c2"]}),
        ]
        facts = [("apple", "s2", 10), ("pear", "s1", 20)]
        array = build_olap_array(fm_big, "named", dims, facts, (2, 2))
        assert array.get_cell(("apple", "s2"))[0] == 10
        assert array.get_cell(("pear", "s1"))[0] == 20
        assert array.get_cell(("apple", "s1")) is None
