"""Tests for the one-pass CUBE operator."""

import pytest

from repro.core import ConsolidationSpec, compute_cube, consolidate
from repro.errors import QueryError
from repro.util.stats import Counters

from .conftest import h1, reference_rows

LEVEL1 = [ConsolidationSpec.level("h1")] * 3
ALL_SUBSETS = 8  # 2^3


class TestComputeCube:
    def test_every_subset_present(self, cube):
        array, _ = cube
        result = compute_cube(array, LEVEL1)
        assert len(result) == ALL_SUBSETS
        assert () in result
        assert ("dim0", "dim1", "dim2") in result

    def test_grand_total(self, cube):
        array, facts = cube
        result = compute_cube(array, LEVEL1)
        assert result[()] == [(sum(f[3] for f in facts),)]

    def test_each_subset_matches_consolidate(self, cube):
        array, _ = cube
        result = compute_cube(array, LEVEL1)
        for subset, rows in result.items():
            specs = [
                ConsolidationSpec.level("h1")
                if array.dim_names[d] in subset
                else ConsolidationSpec.drop()
                for d in range(3)
            ]
            direct = consolidate(array, specs, mode="vectorized")
            assert rows == direct.rows, subset

    def test_single_dimension_subset(self, cube):
        array, facts = cube
        result = compute_cube(array, LEVEL1)
        expected = reference_rows(facts, [lambda k: h1(0, k), None, None])
        assert result[("dim0",)] == expected

    def test_requested_subsets_only(self, cube):
        array, _ = cube
        result = compute_cube(
            array, LEVEL1, subsets=[("dim0",), ("dim0", "dim2"), ()]
        )
        assert set(result) == {("dim0",), ("dim0", "dim2"), ()}

    def test_unknown_subset_rejected(self, cube):
        array, _ = cube
        with pytest.raises(QueryError):
            compute_cube(array, LEVEL1, subsets=[("dimX",)])

    def test_mixed_levels(self, cube):
        array, facts = cube
        specs = [
            ConsolidationSpec.level("h1"),
            ConsolidationSpec.key(),
            ConsolidationSpec.level("h2"),
        ]
        result = compute_cube(array, specs, subsets=[("dim1",)])
        direct = consolidate(
            array,
            [
                ConsolidationSpec.drop(),
                ConsolidationSpec.key(),
                ConsolidationSpec.drop(),
            ],
        )
        assert result[("dim1",)] == direct.rows

    def test_count_aggregate(self, cube):
        array, facts = cube
        result = compute_cube(array, LEVEL1, aggregate="count")
        assert result[()] == [(len(facts),)]

    def test_drop_spec_rejected(self, cube):
        array, _ = cube
        with pytest.raises(QueryError):
            compute_cube(array, [ConsolidationSpec.drop()] * 3)

    def test_spec_arity(self, cube):
        array, _ = cube
        with pytest.raises(QueryError):
            compute_cube(array, LEVEL1[:2])

    def test_one_pass_scan_counter(self, cube):
        array, facts = cube
        counters = Counters()
        compute_cube(array, LEVEL1, counters=counters)
        # the whole cube costs ONE scan of the valid cells
        assert counters.get("cells_scanned") == len(facts)
        assert counters.get("group_bys_computed") == ALL_SUBSETS

    def test_cube_reads_chunks_once(self, cube, fm_big):
        array, _ = cube
        fm_big.pool.clear()
        counters = Counters()
        compute_cube(array, LEVEL1, counters=counters)
        nonempty = sum(1 for _, _, c in map(
            lambda e: e, [array.directory.entry(i) for i in range(array.geometry.n_chunks)]
        ) if c)
        assert counters.get("chunks_read") == nonempty
