"""Tests for dimension key ↔ array-index maps and the key-list codec."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.dimension_index import DimensionIndex, decode_keys, encode_keys
from repro.errors import DimensionError
from repro.storage import LargeObjectStore


@pytest.fixture
def aux(fm):
    return LargeObjectStore(fm, "aux")


class TestKeyListCodec:
    def test_int_keys(self):
        keys = [5, -3, 2**40]
        assert decode_keys(encode_keys(keys)) == keys

    def test_str_keys(self):
        keys = ["Madison", "Wisconsin", ""]
        assert decode_keys(encode_keys(keys)) == keys

    def test_mixed_keys(self):
        keys = [1, "a", 2, "b"]
        assert decode_keys(encode_keys(keys)) == keys

    def test_empty(self):
        assert decode_keys(encode_keys([])) == []

    def test_bad_type_rejected(self):
        with pytest.raises(DimensionError):
            encode_keys([1.5])
        with pytest.raises(DimensionError):
            encode_keys([True])

    def test_corrupt_kind_byte(self):
        payload = bytearray(encode_keys([1]))
        payload[4] = 99
        with pytest.raises(DimensionError):
            decode_keys(bytes(payload))


class TestDimensionIndex:
    def test_indices_follow_key_order(self, fm, aux):
        dim = DimensionIndex.build(fm, aux, "d0", [10, 30, 20])
        assert dim.index_of(10) == 0
        assert dim.index_of(30) == 1
        assert dim.index_of(20) == 2
        assert len(dim) == 3

    def test_key_of_inverts_index_of(self, fm, aux):
        keys = [f"p{i}" for i in range(50)]
        dim = DimensionIndex.build(fm, aux, "d0", keys)
        for i, key in enumerate(keys):
            assert dim.key_of(dim.index_of(key)) == key
        assert dim.keys() == keys

    def test_unknown_key(self, fm, aux):
        dim = DimensionIndex.build(fm, aux, "d0", [1, 2])
        with pytest.raises(DimensionError):
            dim.index_of(99)

    def test_index_out_of_range(self, fm, aux):
        dim = DimensionIndex.build(fm, aux, "d0", [1, 2])
        with pytest.raises(DimensionError):
            dim.key_of(2)

    def test_duplicate_keys_rejected(self, fm, aux):
        with pytest.raises(DimensionError):
            DimensionIndex.build(fm, aux, "d0", [1, 1])

    def test_index_map_is_a_copy(self, fm, aux):
        dim = DimensionIndex.build(fm, aux, "d0", [1, 2])
        mapping = dim.index_map()
        mapping[1] = 99
        assert dim.index_of(1) == 0

    def test_reopen_from_storage(self, fm, aux):
        dim = DimensionIndex.build(fm, aux, "d0", ["x", "y", "z"])
        fm.pool.clear()
        reopened = DimensionIndex.open(fm, aux, "d0", dim.rev_oid)
        assert reopened.keys() == ["x", "y", "z"]
        assert reopened.index_of("y") == 1

    def test_footprint_positive(self, fm, aux):
        dim = DimensionIndex.build(fm, aux, "d0", list(range(100)))
        assert dim.footprint_bytes() > 0


@given(
    st.lists(
        st.one_of(st.integers(-(2**50), 2**50), st.text(max_size=12)),
        unique=True,
        max_size=60,
    )
)
def test_keylist_roundtrip_property(keys):
    assert decode_keys(encode_keys(keys)) == keys
