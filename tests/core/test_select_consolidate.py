"""Tests for the §4.2 consolidation-with-selection algorithm."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ConsolidationSpec, Selection, consolidate, consolidate_with_selection
from repro.core.builder import build_olap_array
from repro.errors import QueryError
from repro.util.stats import Counters

from .conftest import (
    FANOUTS,
    h1,
    h2,
    make_dimensions,
    make_facts,
    reference_rows,
)

LEVEL1 = [ConsolidationSpec.level("h1")] * 3


def selector(selected):
    def check(row):
        return all(
            h1(d, row[d]) == value
            for d, value in enumerate(selected)
            if value is not None
        )

    return check


@pytest.mark.parametrize("mode", ["interpreted", "vectorized"])
class TestBothModes:
    def test_select_on_every_dimension(self, cube, mode):
        array, facts = cube
        selected = ["A00", "A11", "A20"]
        selections = [Selection(d, "h1", (selected[d],)) for d in range(3)]
        out = consolidate_with_selection(array, LEVEL1, selections, mode=mode)
        expected = reference_rows(
            facts,
            [lambda k, d=d: h1(d, k) for d in range(3)],
            selector=selector(selected),
        )
        assert out.rows == expected

    def test_select_on_subset_of_dimensions(self, cube, mode):
        array, facts = cube
        selections = [Selection(1, "h1", ("A12",))]
        out = consolidate_with_selection(array, LEVEL1, selections, mode=mode)
        expected = reference_rows(
            facts,
            [lambda k, d=d: h1(d, k) for d in range(3)],
            selector=selector([None, "A12", None]),
        )
        assert out.rows == expected

    def test_in_list_selection(self, cube, mode):
        array, facts = cube
        selections = [Selection(1, "h1", ("A10", "A12"))]
        out = consolidate_with_selection(array, LEVEL1, selections, mode=mode)
        expected = reference_rows(
            facts,
            [lambda k, d=d: h1(d, k) for d in range(3)],
            selector=lambda row: h1(1, row[1]) in ("A10", "A12"),
        )
        assert out.rows == expected

    def test_two_predicates_on_one_dimension_intersect(self, cube, mode):
        array, facts = cube
        selections = [
            Selection(0, "h1", ("A00",)),
            Selection(0, "h2", ("B00",)),
        ]
        out = consolidate_with_selection(array, LEVEL1, selections, mode=mode)
        expected = reference_rows(
            facts,
            [lambda k, d=d: h1(d, k) for d in range(3)],
            selector=lambda row: h1(0, row[0]) == "A00" and h2(0, row[0]) == "B00",
        )
        assert out.rows == expected

    def test_no_selection_equals_plain_consolidation(self, cube, mode):
        array, _ = cube
        out = consolidate_with_selection(array, LEVEL1, [], mode=mode)
        assert out.rows == consolidate(array, LEVEL1, mode=mode).rows

    def test_query3_shape_drop_plus_select(self, cube, mode):
        # Query 3: selection on 3 dims would be all dims here; drop dim2
        array, facts = cube
        specs = [
            ConsolidationSpec.level("h1"),
            ConsolidationSpec.level("h1"),
            ConsolidationSpec.drop(),
        ]
        selections = [
            Selection(0, "h1", ("A01",)),
            Selection(1, "h1", ("A10",)),
        ]
        out = consolidate_with_selection(array, specs, selections, mode=mode)
        expected = reference_rows(
            facts,
            [lambda k: h1(0, k), lambda k: h1(1, k), None],
            selector=selector(["A01", "A10", None]),
        )
        assert out.rows == expected

    def test_unknown_value_gives_empty(self, cube, mode):
        array, _ = cube
        selections = [Selection(0, "h1", ("NOPE",))]
        out = consolidate_with_selection(array, LEVEL1, selections, mode=mode)
        assert out.rows == []


class TestChunkOrderOptimizations:
    def test_untouched_chunks_not_read(self, cube, fm_big):
        array, _ = cube
        # select a single key per dimension: a single cell's chunk
        specs = [ConsolidationSpec.key()] * 3
        selections = [
            Selection(0, "h2", (h2(0, 0),)),
            Selection(0, "h1", (h1(0, 0),)),
        ]
        fm_big.pool.clear()
        counters = Counters()
        consolidate_with_selection(
            array,
            specs,
            [Selection(d, "h1", (h1(d, 0),)) for d in range(3)],
            counters=counters,
        )
        # only chunks whose grid slab intersects the selection are read
        assert counters.get("chunks_read") < array.geometry.n_chunks

    def test_naive_order_same_rows(self, cube):
        array, _ = cube
        selections = [Selection(0, "h1", ("A00",)), Selection(2, "h1", ("A21",))]
        fast = consolidate_with_selection(array, LEVEL1, selections)
        slow = consolidate_with_selection(
            array, LEVEL1, selections, order="naive"
        )
        assert fast.rows == slow.rows

    def test_naive_order_probes_more_chunk_reads(self, cube):
        array, _ = cube
        selections = [Selection(0, "h1", ("A00",))]
        counters_fast = Counters()
        consolidate_with_selection(
            array, LEVEL1, selections, counters=counters_fast
        )
        counters_slow = Counters()
        consolidate_with_selection(
            array, LEVEL1, selections, order="naive", counters=counters_slow
        )
        assert counters_slow.get("chunks_read") >= counters_fast.get(
            "chunks_read"
        )

    def test_cross_product_size_counter(self, cube):
        array, _ = cube
        counters = Counters()
        consolidate_with_selection(
            array,
            LEVEL1,
            [Selection(d, "h1", (h1(d, 0),)) for d in range(3)],
            counters=counters,
        )
        sizes = array.geometry.shape
        expected = 1
        for d, size in enumerate(sizes):
            expected *= sum(1 for k in range(size) if h1(d, k) == h1(d, 0))
        assert counters.get("cross_product_size") == expected
        assert counters.get("cells_probed") == expected


class TestValidation:
    def test_empty_value_tuple_rejected(self):
        with pytest.raises(QueryError):
            Selection(0, "h1", ())

    def test_unknown_mode(self, cube):
        array, _ = cube
        with pytest.raises(QueryError):
            consolidate_with_selection(array, LEVEL1, [], mode="quantum")

    def test_unknown_order(self, cube):
        array, _ = cube
        with pytest.raises(QueryError):
            consolidate_with_selection(array, LEVEL1, [], order="random")

    def test_unknown_attr_rejected(self, cube):
        array, _ = cube
        with pytest.raises(Exception):
            consolidate_with_selection(
                array, LEVEL1, [Selection(0, "nope", ("x",))]
            )


@settings(max_examples=10, deadline=None)
@given(
    st.integers(0, 10_000),
    st.tuples(st.integers(0, 1), st.integers(0, 2), st.integers(0, 1)),
)
def test_selection_matches_reference_property(seed, picks):
    from repro.storage import BufferPool, FileManager, SimulatedDisk

    fm = FileManager(
        BufferPool(SimulatedDisk(page_size=1024), capacity_bytes=512 * 1024)
    )
    facts = make_facts(density=0.4, seed=seed)
    array = build_olap_array(fm, "c", make_dimensions(), facts, (3, 2, 4))
    selected = [f"A{d}{picks[d] % FANOUTS[d]}" for d in range(3)]
    selections = [Selection(d, "h1", (selected[d],)) for d in range(3)]
    out = consolidate_with_selection(
        array, LEVEL1, selections, mode="vectorized"
    )
    expected = reference_rows(
        facts,
        [lambda k, d=d: h1(d, k) for d in range(3)],
        selector=selector(selected),
    )
    assert out.rows == expected
