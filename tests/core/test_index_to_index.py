"""Tests for §3.4 IndexToIndex hierarchy arrays."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import IndexToIndex
from repro.errors import DimensionError


class TestBuild:
    def test_distinct_numbering_by_first_appearance(self):
        i2i = IndexToIndex.build(["WI", "CA", "WI", "NY", "CA"])
        assert i2i.mapping.tolist() == [0, 1, 0, 2, 1]
        assert i2i.target_keys == ["WI", "CA", "NY"]
        assert i2i.target_size == 3

    def test_paper_city_state_example(self):
        # Madison is city index 2 here and must map to Wisconsin's slot
        cities = ["Chicago", "Milwaukee", "Madison"]
        states = ["IL", "WI", "WI"]
        i2i = IndexToIndex.build(states)
        assert i2i[cities.index("Madison")] == i2i[cities.index("Milwaukee")]
        assert i2i[0] != i2i[2]

    def test_identity(self):
        i2i = IndexToIndex.identity([7, 8, 9])
        assert i2i.mapping.tolist() == [0, 1, 2]
        assert i2i.target_keys == [7, 8, 9]

    def test_collapse(self):
        i2i = IndexToIndex.collapse(5)
        assert i2i.mapping.tolist() == [0] * 5
        assert i2i.target_keys == ["*"]

    def test_empty(self):
        i2i = IndexToIndex.build([])
        assert len(i2i) == 0 and i2i.target_size == 0

    def test_mapping_out_of_range_rejected(self):
        with pytest.raises(DimensionError):
            IndexToIndex(np.array([0, 2], dtype=np.int32), ["a", "b"])

    def test_mapping_must_be_1d(self):
        with pytest.raises(DimensionError):
            IndexToIndex(np.zeros((2, 2), dtype=np.int32), ["a"])


class TestCompose:
    def test_city_state_region(self):
        city_to_state = IndexToIndex.build(["WI", "IL", "WI", "CA"])
        # states in first-appearance order: WI, IL, CA
        state_to_region = IndexToIndex.build(["MW", "MW", "West"])
        city_to_region = state_to_region.compose(city_to_state)
        assert city_to_region.mapping.tolist() == [0, 0, 0, 1]
        assert city_to_region.target_keys == ["MW", "West"]

    def test_compose_size_mismatch(self):
        a = IndexToIndex.build(["x", "y"])
        b = IndexToIndex.build(["p", "q", "r"])
        with pytest.raises(DimensionError):
            b.compose(a)

    def test_identity_compose_is_noop(self):
        inner = IndexToIndex.build(["a", "b", "a"])
        outer = IndexToIndex.identity(inner.target_keys)
        composed = outer.compose(inner)
        assert composed.mapping.tolist() == inner.mapping.tolist()


class TestPersistence:
    def test_blob_roundtrip(self):
        i2i = IndexToIndex.build(["a", "b", "a", "c"])
        again = IndexToIndex.from_blob(i2i.to_blob())
        assert again.mapping.tolist() == i2i.mapping.tolist()
        assert again.target_keys == i2i.target_keys

    def test_blob_roundtrip_int_targets(self):
        i2i = IndexToIndex.build([10, 20, 10])
        again = IndexToIndex.from_blob(i2i.to_blob())
        assert again.target_keys == [10, 20]


@given(st.lists(st.integers(0, 8), max_size=100))
def test_build_is_consistent_grouping(values):
    i2i = IndexToIndex.build(values)
    # same value ⇒ same target; different value ⇒ different target
    seen = {}
    for value, target in zip(values, i2i.mapping.tolist()):
        if value in seen:
            assert seen[value] == target
        else:
            seen[value] = target
    assert len(set(seen.values())) == len(seen)
    assert [i2i.target_keys[t] for t in i2i.mapping.tolist()] == values
