"""Tests for partitioned consolidation (the §6 parallelization hook)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ConsolidationSpec, consolidate, consolidate_partitioned
from repro.core.parallel import partition_chunks
from repro.errors import QueryError
from repro.util.stats import Counters

LEVEL1 = [ConsolidationSpec.level("h1")] * 3


class TestPartitionChunks:
    def test_partitions_cover_all_chunks(self):
        ranges = partition_chunks(10, 3)
        flat = [c for r in ranges for c in r]
        assert flat == list(range(10))

    def test_contiguous_and_balanced(self):
        ranges = partition_chunks(10, 3)
        sizes = [len(r) for r in ranges]
        assert max(sizes) - min(sizes) <= 1
        assert [r.start for r in ranges] == sorted(r.start for r in ranges)

    def test_more_partitions_than_chunks(self):
        ranges = partition_chunks(2, 8)
        assert len(ranges) == 2

    def test_single_partition(self):
        assert partition_chunks(5, 1) == [range(0, 5)]

    def test_bad_partition_count(self):
        with pytest.raises(QueryError):
            partition_chunks(5, 0)


@pytest.mark.parametrize("mode", ["interpreted", "vectorized"])
class TestEquivalence:
    @pytest.mark.parametrize("partitions", [1, 2, 3, 7, 100])
    def test_matches_direct_consolidation(self, cube, mode, partitions):
        array, _ = cube
        direct = consolidate(array, LEVEL1, mode=mode)
        partitioned = consolidate_partitioned(
            array, LEVEL1, partitions, mode=mode
        )
        assert partitioned.rows == direct.rows

    def test_min_max_merge(self, cube, mode):
        array, _ = cube
        for aggregate in ("min", "max", "count", "avg"):
            direct = consolidate(array, LEVEL1, aggregate=aggregate, mode=mode)
            partitioned = consolidate_partitioned(
                array, LEVEL1, 4, aggregate=aggregate, mode=mode
            )
            for a, b in zip(direct.rows, partitioned.rows):
                assert a[:-1] == b[:-1]
                assert a[-1] == pytest.approx(b[-1])


class TestVarianceMerge:
    def test_var_partitions_merge_exactly(self, cube):
        array, facts = cube
        specs = [ConsolidationSpec.drop()] * 2 + [ConsolidationSpec.level("h1")]
        direct = consolidate(array, specs, aggregate="var")
        partitioned = consolidate_partitioned(array, specs, 5, aggregate="var")
        for a, b in zip(direct.rows, partitioned.rows):
            assert a[0] == b[0]
            assert a[1] == pytest.approx(b[1])

    def test_var_matches_numpy(self, cube):
        import numpy as np

        array, facts = cube
        specs = [ConsolidationSpec.drop()] * 3
        # fully collapapsed: one group holding every measure
        result = consolidate(array, specs, aggregate="var")
        values = [f[3] for f in facts]
        assert result.rows == [(pytest.approx(np.var(values)),)]


@pytest.mark.parametrize("mode", ["interpreted", "vectorized"])
class TestThreadedExecutor:
    """executor="thread": the oracle holds under real concurrency."""

    @pytest.mark.parametrize("partitions", [1, 2, 3, 7])
    def test_matches_direct_consolidation(self, cube, mode, partitions):
        array, _ = cube
        direct = consolidate(array, LEVEL1, mode=mode)
        threaded = consolidate_partitioned(
            array, LEVEL1, partitions, mode=mode, executor="thread"
        )
        assert threaded.rows == direct.rows

    def test_matches_serial_executor(self, cube, mode):
        array, _ = cube
        aggregates = ("sum", "min", "max", "count", "avg")
        if mode == "interpreted":  # var has no vectorized kernel
            aggregates += ("var",)
        for aggregate in aggregates:
            serial = consolidate_partitioned(
                array, LEVEL1, 4, aggregate=aggregate, mode=mode
            )
            threaded = consolidate_partitioned(
                array, LEVEL1, 4, aggregate=aggregate, mode=mode,
                executor="thread",
            )
            for a, b in zip(serial.rows, threaded.rows):
                assert a[:-1] == b[:-1]
                assert a[-1] == pytest.approx(b[-1])

    def test_max_workers_capped(self, cube, mode):
        array, _ = cube
        direct = consolidate(array, LEVEL1, mode=mode)
        threaded = consolidate_partitioned(
            array, LEVEL1, 6, mode=mode, executor="thread", max_workers=2
        )
        assert threaded.rows == direct.rows


class TestThreadedPlumbing:
    def test_counters_recorded(self, cube):
        array, facts = cube
        counters = Counters()
        consolidate_partitioned(
            array, LEVEL1, 3, counters=counters, executor="thread"
        )
        assert counters.get("partitions") == 3
        assert counters.get("cells_scanned") == len(facts)

    def test_bad_executor(self, cube):
        array, _ = cube
        with pytest.raises(QueryError):
            consolidate_partitioned(array, LEVEL1, 2, executor="fork")

    def test_temporary_chunk_cache_detached(self, cube):
        array, _ = cube
        assert array.chunk_cache is None
        consolidate_partitioned(array, LEVEL1, 4, executor="thread")
        assert array.chunk_cache is None

    def test_attached_chunk_cache_reused(self, cube):
        from repro.serve import ChunkCache

        array, _ = cube
        cache = ChunkCache()
        array.chunk_cache = cache
        try:
            first = consolidate_partitioned(
                array, LEVEL1, 4, executor="thread"
            )
            second = consolidate_partitioned(
                array, LEVEL1, 4, executor="thread"
            )
        finally:
            array.chunk_cache = None
        assert second.rows == first.rows
        # the second pass reads every chunk out of the shared cache
        assert cache.counters.get("chunk_cache.hits") >= array.geometry.n_chunks


class TestCounters:
    def test_partition_count_recorded(self, cube):
        array, facts = cube
        counters = Counters()
        consolidate_partitioned(array, LEVEL1, 3, counters=counters)
        assert counters.get("partitions") == 3
        assert counters.get("cells_scanned") == len(facts)

    def test_bad_mode(self, cube):
        array, _ = cube
        with pytest.raises(QueryError):
            consolidate_partitioned(array, LEVEL1, 2, mode="threads")

    def test_merge_incompatible_accumulators(self, cube):
        from repro.core.consolidate import ResultAccumulator

        array, _ = cube
        a = ResultAccumulator(array, LEVEL1)
        b = ResultAccumulator(
            array, [ConsolidationSpec.level("h2")] * 3
        )
        with pytest.raises(QueryError):
            a.merge_from(b)


@settings(max_examples=10, deadline=None)
@given(st.integers(1, 20), st.sampled_from(["sum", "count", "min"]))
def test_any_partitioning_is_exact(partitions, aggregate):
    from repro.core.builder import build_olap_array
    from repro.storage import BufferPool, FileManager, SimulatedDisk

    from .conftest import make_dimensions, make_facts

    fm = FileManager(
        BufferPool(SimulatedDisk(page_size=1024), capacity_bytes=512 * 1024)
    )
    facts = make_facts(density=0.4, seed=partitions)
    array = build_olap_array(fm, "c", make_dimensions(), facts, (3, 2, 4))
    direct = consolidate(array, LEVEL1, aggregate=aggregate)
    partitioned = consolidate_partitioned(
        array, LEVEL1, partitions, aggregate=aggregate
    )
    assert partitioned.rows == direct.rows
