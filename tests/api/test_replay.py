"""Traffic replay: deterministic schedules, end-to-end runs over real
HTTP with zero 5xx, and artifact writing."""

import json
import random

import pytest

from repro.api.replay import (
    ReplaySettings,
    _percentile,
    _schedule,
    run_replay,
    write_replay_artifact,
)


class TestSchedule:
    def test_same_seed_same_schedule(self):
        first = _schedule(random.Random(42), "sales", 50)
        second = _schedule(random.Random(42), "sales", 50)
        assert first == second

    def test_different_seed_different_schedule(self):
        assert _schedule(random.Random(1), "sales", 50) != _schedule(
            random.Random(2), "sales", 50
        )

    def test_mix_contains_all_three_kinds(self):
        schedule = _schedule(random.Random(0), "sales", 200)
        kinds = {entry["kind"] for entry in schedule}
        assert kinds == {"hot", "cut", "base"}
        hot = sum(1 for e in schedule if e["kind"] == "hot")
        assert hot > 200 * 0.4  # skew: the hot templates dominate

    def test_entries_are_issuable_shapes(self):
        for entry in _schedule(random.Random(3), "sales", 40):
            assert entry["path"].startswith("/cube/sales/aggregate")
            assert entry["method"] in ("GET", "POST")
            if entry["method"] == "GET":
                assert "drilldown=" in entry["path"]
            else:
                assert "drilldown" in entry["body"]


class TestPercentile:
    def test_empty_is_zero(self):
        assert _percentile([], 0.95) == 0.0

    def test_singleton(self):
        assert _percentile([5.0], 0.5) == 5.0

    def test_p95_of_hundred(self):
        values = [float(i) for i in range(1, 101)]
        assert _percentile(values, 0.95) == 96.0


class TestRunReplay:
    @pytest.fixture(scope="class")
    def report(self):
        settings = ReplaySettings(
            scale="small", requests=120, seed=5, clients=2, write_every=40
        )
        return run_replay(settings)

    def test_zero_5xx_and_gates_pass(self, report):
        assert report.failures == []
        assert report.ok
        statuses = report.payload["statuses"]
        assert statuses["5xx"] == 0
        assert statuses["2xx"] == 120

    def test_rollups_actually_hit(self, report):
        assert report.payload["rollup"]["hit_rate"] > 0.5

    def test_churn_ran(self, report):
        assert report.payload["writes"] >= 1

    def test_explain_probe_routed(self, report):
        probe = report.payload["explain_probe"]
        assert probe["status"] == 200
        assert probe["root_op"] == "rollup.route"
        assert probe["analyzed"]

    def test_artifact_round_trips(self, report, tmp_path):
        path = tmp_path / "BENCH_api.json"
        write_replay_artifact(report.payload, str(path))
        loaded = json.loads(path.read_text())
        assert loaded["statuses"]["2xx"] == 120
        assert "latency" in loaded
