"""RollupRouter: derive maps, coverage, routing, re-aggregation
correctness against the consolidation engine, and invalidation."""

import time

from repro.api.server import Cut
from repro.data import generate_fact_rows
from repro.olap import ConsolidationQuery
from repro.olap.query import SelectionPredicate

from .conftest import CONFIG


def _valid_keys():
    return tuple(generate_fact_rows(CONFIG)[0][:3])


def _cube(endpoint):
    return endpoint.model.cube("sales")


def _base_rows(service, group_by, aggregate="sum", selections=None):
    query = ConsolidationQuery.build(
        CONFIG.name,
        group_by=dict(group_by),
        selections=selections or [],
        aggregate=aggregate,
    )
    return sorted(service.execute(query).rows)


class TestDeriveMaps:
    def test_h01_to_h02_is_functional(self, stack):
        _, _, endpoint = stack
        router = endpoint.router
        mapping = router.derive_map(CONFIG.name, "dim0", "h01", "h02")
        # fanout1=3, fanout2=2: AA0/AA2 -> BB0, AA1 -> BB1
        assert mapping == {"AA0": "BB0", "AA1": "BB1", "AA2": "BB0"}

    def test_h02_to_h01_is_not_functional(self, stack):
        _, _, endpoint = stack
        # BB0 would need to map to both AA0 and AA2
        assert (
            endpoint.router.derive_map(CONFIG.name, "dim0", "h02", "h01")
            is None
        )

    def test_identity_returns_none(self, stack):
        _, _, endpoint = stack
        assert (
            endpoint.router.derive_map(CONFIG.name, "dim0", "h01", "h01")
            is None
        )

    def test_cardinality(self, stack):
        _, _, endpoint = stack
        router = endpoint.router
        assert router.cardinality(CONFIG.name, "dim0", "d0") == 6
        assert router.cardinality(CONFIG.name, "dim0", "h01") == 3
        assert router.cardinality(CONFIG.name, "dim0", "h02") == 2
        assert router.cardinality(CONFIG.name, "dim2", "d2") == 10


class TestRouting:
    def test_coarsest_request_picks_smallest_covering(self, stack):
        _, _, endpoint = stack
        cube = _cube(endpoint)
        decision = endpoint.router.route(
            cube, [("dim0", "h02")], [], "sum"
        )
        assert decision.source == "rollup"
        # coarse estimates 2*2*2=8 rows, mid01 3*3=9: coarse wins
        assert decision.rollup.name == "coarse"
        assert decision.candidates == ("coarse", "mid01")
        assert decision.estimated_rows == 8

    def test_finer_level_excludes_coarser_grain(self, stack):
        _, _, endpoint = stack
        decision = endpoint.router.route(
            _cube(endpoint), [("dim0", "h01")], [], "sum"
        )
        assert decision.source == "rollup"
        assert decision.rollup.name == "mid01"

    def test_key_grain_falls_back_to_base(self, stack):
        _, _, endpoint = stack
        decision = endpoint.router.route(
            _cube(endpoint), [("dim0", "d0")], [], "sum"
        )
        assert decision.source == "base"
        assert "no declared rollup covers" in decision.reason

    def test_avg_is_never_navigable(self, stack):
        _, _, endpoint = stack
        decision = endpoint.router.route(
            _cube(endpoint), [("dim0", "h02")], [], "avg"
        )
        assert decision.source == "base"
        assert "not navigable" in decision.reason

    def test_cut_dimension_counts_as_referenced(self, stack):
        _, _, endpoint = stack
        # dim2 at h21 is finer than coarse's h22 and absent from mid01
        cut = Cut(dimension="dim2", attribute="h21", values=("AA0",))
        decision = endpoint.router.route(
            _cube(endpoint), [("dim0", "h02")], [cut], "sum"
        )
        assert decision.source == "base"


class TestScanCorrectness:
    """Routed answers must be cell-for-cell equal to base consolidation."""

    def _routed(self, endpoint, rollup_name, group_by, cuts, aggregate):
        cube = _cube(endpoint)
        rollup = next(
            r for r in cube.rollups if r.name == rollup_name
        )
        stored = endpoint.router.rows_for(cube, rollup, aggregate)
        return endpoint.router.scan(
            cube, rollup, stored, group_by, cuts, aggregate, [0]
        )

    def test_sum_from_coarse_grain(self, stack):
        _, service, endpoint = stack
        routed = self._routed(
            endpoint, "coarse", [("dim0", "h02")], [], "sum"
        )
        assert routed == _base_rows(service, [("dim0", "h02")])

    def test_sum_with_derived_attribute(self, stack):
        _, service, endpoint = stack
        # mid01 stores h01/h11; the request asks h02 (derived)
        routed = self._routed(
            endpoint, "mid01", [("dim0", "h02")], [], "sum"
        )
        assert routed == _base_rows(service, [("dim0", "h02")])

    def test_count_rerolls_as_sum_of_counts(self, stack):
        _, service, endpoint = stack
        routed = self._routed(
            endpoint, "coarse", [("dim1", "h12")], [], "count"
        )
        assert routed == _base_rows(
            service, [("dim1", "h12")], aggregate="count"
        )

    def test_min_and_max_reroll(self, stack):
        _, service, endpoint = stack
        for aggregate in ("min", "max"):
            routed = self._routed(
                endpoint, "coarse", [("dim0", "h02"), ("dim1", "h12")],
                [], aggregate,
            )
            assert routed == _base_rows(
                service, [("dim0", "h02"), ("dim1", "h12")],
                aggregate=aggregate,
            )

    def test_in_list_cut_filters_derived_values(self, stack):
        _, service, endpoint = stack
        cut = Cut(dimension="dim1", attribute="h11", values=("AA1",))
        routed = self._routed(
            endpoint, "mid01", [("dim0", "h01")], [cut], "sum"
        )
        assert routed == _base_rows(
            service,
            [("dim0", "h01")],
            selections=[SelectionPredicate.in_list("dim1", "h11", "AA1")],
        )

    def test_range_cut(self, stack):
        _, service, endpoint = stack
        cut = Cut(
            dimension="dim1", attribute="h11", low="AA0", high="AA1"
        )
        routed = self._routed(
            endpoint, "mid01", [("dim0", "h01")], [cut], "sum"
        )
        assert routed == _base_rows(
            service,
            [("dim0", "h01")],
            selections=[
                SelectionPredicate.between("dim1", "h11", "AA0", "AA1")
            ],
        )


class TestInvalidation:
    def test_write_goes_stale_then_async_refresh_catches_up(self, stack):
        engine, service, endpoint = stack
        cube = _cube(endpoint)
        rollup = cube.rollups[0]
        router = endpoint.router
        before = router.rows_for(cube, rollup, "sum")
        assert router.try_rows(cube, rollup, "sum") == before

        # overwrite one valid cell so the total moves
        service.write_cell(CONFIG.name, _valid_keys(), (999_999,))

        # the serving path must NOT rebuild inline: stale -> None now
        assert router.try_rows(cube, rollup, "sum") is None
        deadline = time.monotonic() + 10.0
        fresh = None
        while time.monotonic() < deadline:
            fresh = router.try_rows(cube, rollup, "sum")
            if fresh is not None:
                break
            time.sleep(0.01)
        assert fresh is not None, "async refresh never completed"
        assert fresh != before
        assert fresh == router.rows_for(cube, rollup, "sum")
        snapshot = router.counters.snapshot()
        assert snapshot["rollup.stale"] >= 1
        assert snapshot["rollup.refreshes_scheduled"] >= 1

    def test_sync_rows_for_rebuilds_inline(self, stack):
        engine, service, endpoint = stack
        cube = _cube(endpoint)
        rollup = cube.rollups[1]
        before = endpoint.router.rows_for(cube, rollup, "sum")
        service.write_cell(CONFIG.name, _valid_keys(), (123_456,))
        after = endpoint.router.rows_for(cube, rollup, "sum")
        assert after != before

    def test_resident_rollups_counts_entries(self, stack):
        _, _, endpoint = stack
        cube = _cube(endpoint)
        assert endpoint.router.resident_rollups() == 0
        endpoint.router.rows_for(cube, cube.rollups[0], "sum")
        endpoint.router.rows_for(cube, cube.rollups[0], "count")
        endpoint.router.rows_for(cube, cube.rollups[1], "sum")
        assert endpoint.router.resident_rollups() == 3
