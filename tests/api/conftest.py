"""Shared fixtures for the HTTP query-API tests: one small cube, its
logical model, and an endpoint/service stack."""

import pytest

from repro.api.model import model_from_dict
from repro.api.server import ApiEndpoint
from repro.bench import bench_settings, build_cube_engine
from repro.data import SyntheticCubeConfig
from repro.serve import QueryService

CONFIG = SyntheticCubeConfig(
    name="apicube",
    dim_sizes=(6, 6, 10),
    n_valid=180,
    chunk_shape=(3, 3, 5),
    fanout1=3,
    fanout2=2,
    seed=11,
)

#: logical model bound to the test cube; hierarchies finest → coarsest
MODEL_DOC = {
    "cubes": [
        {
            "name": "sales",
            "label": "API test cube",
            "cube": CONFIG.name,
            "dimensions": [
                {"name": "dim0", "hierarchy": ["d0", "h01", "h02"]},
                {"name": "dim1", "hierarchy": ["d1", "h11", "h12"]},
                {"name": "dim2", "hierarchy": ["d2", "h21", "h22"]},
            ],
            "measures": [{"name": "volume"}],
            "rollups": [
                {
                    "name": "coarse",
                    "grain": {"dim0": "h02", "dim1": "h12", "dim2": "h22"},
                },
                {"name": "mid01", "grain": {"dim0": "h01", "dim1": "h11"}},
            ],
        }
    ]
}


def fresh_model():
    return model_from_dict(MODEL_DOC)


def fresh_engine(config=CONFIG):
    return build_cube_engine(config, bench_settings("small"))


@pytest.fixture
def engine():
    """A fresh engine per test — write tests mutate cube state."""
    return fresh_engine()


@pytest.fixture
def stack(engine):
    """(engine, service, endpoint) with the refresh worker stopped on
    teardown."""
    service = QueryService(engine)
    endpoint = ApiEndpoint(engine, service, fresh_model())
    yield engine, service, endpoint
    endpoint.close()
    service.close()
