"""Eviction-under-writes hammer: concurrent aggregate traffic racing
cell writes under a deliberately tight memory budget.  Pressure-driven
eviction may cost latency, never correctness — every response stays
below 500, post-quiesce answers are oracle-equal to base consolidation,
and the accountant's ledger stays internally consistent at every
sample."""

import threading

from repro.api.server import ApiEndpoint
from repro.data import generate_fact_rows
from repro.olap import ConsolidationQuery
from repro.serve import QueryService, ServiceConfig

from .conftest import CONFIG, fresh_engine, fresh_model

#: far below the stack's natural resident set at test scale, so every
#: cache insert lands over budget and the reclaim path runs constantly
BUDGET_BYTES = 150_000

TEMPLATES = [
    {"drilldown": "dim0:h02,dim1:h12,dim2:h22"},  # coarse rollup grain
    {"drilldown": "dim0:h01,dim1:h11"},  # mid01 rollup grain
    {"drilldown": "dim0:h02"},  # re-aggregated from coarse
    {"drilldown": "dim1:h12", "aggregate": "max"},
    {"drilldown": "dim0", "cut": "dim1.h11:AA0;AA1"},  # base path
]


def _rows_from_payload(payload):
    labels = [
        f"{dim}.{attr}" for dim, attr in payload["drilldown"]
    ] + payload["measures"]
    return sorted(
        tuple(cell[label] for label in labels) for cell in payload["cells"]
    )


def _oracle_rows(service, payload):
    query = ConsolidationQuery.build(
        CONFIG.name,
        group_by={dim: attr for dim, attr in payload["drilldown"]},
        selections=[],
        aggregate=payload["aggregate"],
    )
    return sorted(service.execute(query).rows)


class TestEvictionUnderWrites:
    def test_hammer_holds_correctness_and_ledger(self):
        engine = fresh_engine()
        service = QueryService(
            engine, ServiceConfig(memory_budget_bytes=BUDGET_BYTES)
        )
        endpoint = ApiEndpoint(engine, service, fresh_model())
        try:
            self._hammer(service, endpoint)
        finally:
            endpoint.close()
            service.close()

    def _hammer(self, service, endpoint):
        write_keys = [tuple(row[:3]) for row in generate_fact_rows(CONFIG)[:24]]
        stop_writes = threading.Event()
        statuses: list[int] = []
        ledger_drift: list[tuple] = []
        errors: list[BaseException] = []
        lock = threading.Lock()

        def writer():
            beat = 0
            while not stop_writes.is_set():
                keys = write_keys[beat % len(write_keys)]
                try:
                    service.write_cell(CONFIG.name, keys, (beat % 7,))
                except BaseException as exc:  # noqa: BLE001
                    errors.append(exc)
                    return
                beat += 1
                stop_writes.wait(0.002)

        def reader(worker: int):
            for round_no in range(30):
                params = TEMPLATES[(worker + round_no) % len(TEMPLATES)]
                try:
                    status, _ = endpoint.aggregate(
                        "sales", lambda parser: parser.from_params(params)
                    )
                except BaseException as exc:  # noqa: BLE001
                    errors.append(exc)
                    return
                snap = service.memory.sample("hammer")
                with lock:
                    statuses.append(status)
                    if snap["total_resident_bytes"] != sum(
                        snap["stores"].values()
                    ):
                        ledger_drift.append(
                            (snap["total_resident_bytes"], snap["stores"])
                        )

        write_thread = threading.Thread(target=writer, name="hammer-writer")
        read_threads = [
            threading.Thread(target=reader, args=(i,), name=f"hammer-r{i}")
            for i in range(4)
        ]
        write_thread.start()
        for thread in read_threads:
            thread.start()
        for thread in read_threads:
            thread.join(timeout=120)
        stop_writes.set()
        write_thread.join(timeout=30)

        assert not errors, f"hammer surfaced exceptions: {errors[:3]}"
        assert len(statuses) == 4 * 30
        assert all(status < 500 for status in statuses), (
            f"5xx under pressure: {sorted(set(statuses))}"
        )
        assert not ledger_drift, (
            f"accountant total drifted from store callbacks: "
            f"{ledger_drift[:2]}"
        )

        counters = service.memory.counters.snapshot()
        assert counters.get("memory.pressure_events", 0) >= 1
        assert counters.get("memory.reclaimed_bytes", 0) >= 0

        # quiesced: every template must now answer oracle-equal to base
        # consolidation, evicted grains/caches notwithstanding
        for params in TEMPLATES:
            if "cut" in params:  # cut answers need cut-aware oracles
                continue
            status, payload = endpoint.aggregate(
                "sales", lambda parser: parser.from_params(params)
            )
            assert status == 200
            assert _rows_from_payload(payload) == _oracle_rows(
                service, payload
            )

        # eviction races must not corrupt per-store ledgers: each
        # store's resident figure re-derives from its own entry sizes
        for store in (service.results, service.chunks):
            with store._lock:
                assert store._resident_bytes == sum(store._sizes.values())
                assert store._resident_bytes >= 0
        router = endpoint.router
        with router._lock:
            assert sorted(router._bytes) == sorted(router._store)

    def test_budget_floor_never_blocks_unreclaimable_stores(self):
        """A budget below even the fixed footprint (buffer pool, rings)
        must degrade to constant pressure, not failure."""
        engine = fresh_engine()
        service = QueryService(
            engine, ServiceConfig(memory_budget_bytes=1)
        )
        endpoint = ApiEndpoint(engine, service, fresh_model())
        try:
            for params in TEMPLATES[:3]:
                status, payload = endpoint.aggregate(
                    "sales", lambda parser: parser.from_params(params)
                )
                assert status == 200
                assert payload["cell_count"] > 0
            snap = service.memory.sample("floor")
            assert snap["total_resident_bytes"] > 0  # fixed stores remain
            counters = service.memory.counters.snapshot()
            assert counters.get("memory.pressure_events", 0) >= 1
        finally:
            endpoint.close()
            service.close()
