"""Logical model: loading, validation, scale substitution, lookups."""

import json

import pytest

from repro.api.model import (
    LogicalDimension,
    load_model,
    model_from_dict,
)
from repro.errors import ApiModelError, ApiNotFoundError

from .conftest import MODEL_DOC


def _doc(**overrides):
    doc = json.loads(json.dumps(MODEL_DOC))  # deep copy
    doc["cubes"][0].update(overrides)
    return doc


class TestModelFromDict:
    def test_round_trip(self):
        model = model_from_dict(MODEL_DOC)
        cube = model.cube("sales")
        assert cube.cube == "apicube"
        assert [d.name for d in cube.dimensions] == ["dim0", "dim1", "dim2"]
        assert cube.default_measure == "volume"
        assert [r.name for r in cube.rollups] == ["coarse", "mid01"]

    def test_scale_placeholder_substitution(self):
        doc = _doc(cube="ds1_{scale}_x100")
        assert (
            model_from_dict(doc, scale="medium").cube("sales").cube
            == "ds1_medium_x100"
        )

    def test_grain_normalized_to_declaration_order(self):
        doc = _doc(
            rollups=[
                {"name": "r", "grain": {"dim2": "h22", "dim0": "h02"}}
            ]
        )
        rollup = model_from_dict(doc).cube("sales").rollups[0]
        assert rollup.grain == (("dim0", "h02"), ("dim2", "h22"))

    def test_duplicate_cube_names_rejected(self):
        doc = json.loads(json.dumps(MODEL_DOC))
        doc["cubes"].append(doc["cubes"][0])
        with pytest.raises(ApiModelError, match="duplicate"):
            model_from_dict(doc)

    def test_empty_hierarchy_rejected(self):
        doc = _doc(
            dimensions=[{"name": "dim0", "hierarchy": []}]
        )
        with pytest.raises(ApiModelError, match="empty hierarchy"):
            model_from_dict(doc)

    def test_rollup_on_unknown_dimension_rejected(self):
        doc = _doc(
            rollups=[{"name": "r", "grain": {"nope": "h02"}}]
        )
        with pytest.raises(ApiModelError, match="unknown"):
            model_from_dict(doc)

    def test_missing_required_key_rejected(self):
        doc = json.loads(json.dumps(MODEL_DOC))
        del doc["cubes"][0]["measures"]
        with pytest.raises(ApiModelError, match="measures"):
            model_from_dict(doc)

    def test_non_object_document_rejected(self):
        with pytest.raises(ApiModelError):
            model_from_dict(["not", "a", "model"])


class TestLookups:
    def test_unknown_cube_is_not_found(self):
        with pytest.raises(ApiNotFoundError, match="no logical cube"):
            model_from_dict(MODEL_DOC).cube("nope")

    def test_unknown_dimension_and_measure(self):
        cube = model_from_dict(MODEL_DOC).cube("sales")
        with pytest.raises(ApiNotFoundError, match="no dimension"):
            cube.dimension("nope")
        with pytest.raises(ApiNotFoundError, match="no measure"):
            cube.measure("nope")

    def test_level_index_and_default(self):
        dim = LogicalDimension("dim0", ("d0", "h01", "h02"))
        assert dim.level_index("d0") == 0
        assert dim.level_index("h02") == 2
        assert dim.default_level == "h02"
        with pytest.raises(ApiNotFoundError, match="no level"):
            dim.level_index("h99")

    def test_to_dict_shape(self):
        payload = model_from_dict(MODEL_DOC).cube("sales").to_dict()
        assert payload["cube"] == "apicube"
        assert payload["dimensions"][0]["hierarchy"] == ["d0", "h01", "h02"]
        assert {"name": "volume"} in payload["measures"]
        assert payload["rollups"][1]["grain"] == {
            "dim0": "h01", "dim1": "h11",
        }


class TestLoadModel:
    def test_load_from_file(self, tmp_path):
        path = tmp_path / "model.json"
        path.write_text(json.dumps(MODEL_DOC))
        assert load_model(str(path)).cube_names() == ["sales"]

    def test_unreadable_file_is_model_error(self, tmp_path):
        with pytest.raises(ApiModelError, match="cannot read"):
            load_model(str(tmp_path / "absent.json"))

    def test_non_json_file_is_model_error(self, tmp_path):
        path = tmp_path / "model.json"
        path.write_text("{nope")
        with pytest.raises(ApiModelError, match="not JSON"):
            load_model(str(path))

    def test_checked_in_model_loads_at_every_scale(self):
        for scale in ("small", "medium", "paper"):
            model = load_model("benchmarks/api_model.json", scale=scale)
            cube = model.cube("sales")
            assert cube.cube == f"ds1_{scale}_x100"
            assert len(cube.rollups) >= 2
