"""Distributed tracing across the HTTP API surface.

Every response carries ``X-Trace-Id`` (and the same id inside its JSON
body), an inbound well-formed header is adopted verbatim, traces
resolve on the observability endpoint's ``/trace/id/<trace_id>`` route,
a stale-grain fallback's trace links to the rollup rebuild it scheduled
(and the build links back), and the opt-in structured access log emits
one JSON line per request.
"""

import io
import json
import re
import time
import urllib.error
import urllib.request

import pytest

from repro.api.server import ApiServer
from repro.data import generate_fact_rows
from repro.obs.server import ObservabilityServer
from repro.util.jsonschema_lite import validate

from .conftest import CONFIG

HEX32 = re.compile(r"^[0-9a-f]{32}$")
TRACE_SCHEMA = json.load(
    open("benchmarks/schemas/trace.schema.json", encoding="utf-8")
)

AGG = "/cube/sales/aggregate?drilldown=dim0:h01,dim1:h11"


@pytest.fixture
def server(stack):
    engine, service, endpoint = stack
    with ApiServer(endpoint) as srv:
        yield engine, service, endpoint, srv


@pytest.fixture
def logged_server(stack):
    engine, service, endpoint = stack
    stream = io.StringIO()
    with ApiServer(endpoint, access_log=True, access_log_stream=stream) as srv:
        yield engine, service, endpoint, srv, stream


def _get(url, headers=None):
    request = urllib.request.Request(url, headers=headers or {})
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return (
                response.status,
                json.loads(response.read()),
                dict(response.headers),
            )
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read()), dict(exc.headers)


def _warm(endpoint):
    cube = endpoint.model.cube("sales")
    for rollup in cube.rollups:
        endpoint.router.rows_for(cube, rollup, "sum")


def _wait_for(predicate, timeout_s=10.0):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        value = predicate()
        if value:
            return value
        time.sleep(0.02)
    raise AssertionError("condition not met before timeout")


class TestResponseIdentity:
    def test_every_response_carries_matching_header_and_body_id(self, server):
        _, _, endpoint, srv = server
        _warm(endpoint)
        status, payload, headers = _get(srv.url + AGG)
        assert status == 200
        trace_id = headers.get("X-Trace-Id")
        assert trace_id and HEX32.match(trace_id)
        assert payload["trace_id"] == trace_id

    def test_error_bodies_carry_the_id_too(self, server):
        _, _, _, srv = server
        status, payload, headers = _get(srv.url + "/cube/nope/model")
        assert status == 404
        assert payload["trace_id"] == headers.get("X-Trace-Id")

    def test_inbound_header_adopted_verbatim(self, server):
        _, _, endpoint, srv = server
        _warm(endpoint)
        inbound = "ab" * 16
        _, payload, headers = _get(
            srv.url + AGG, headers={"X-Trace-Id": inbound}
        )
        assert headers.get("X-Trace-Id") == inbound
        assert payload["trace_id"] == inbound

    def test_malformed_inbound_header_replaced_not_propagated(self, server):
        _, _, endpoint, srv = server
        _warm(endpoint)
        _, payload, headers = _get(
            srv.url + AGG, headers={"X-Trace-Id": "not-a-trace-id"}
        )
        assert headers.get("X-Trace-Id") != "not-a-trace-id"
        assert HEX32.match(payload["trace_id"])

    def test_distinct_requests_get_distinct_traces(self, server):
        _, _, endpoint, srv = server
        _warm(endpoint)
        ids = {_get(srv.url + AGG)[2].get("X-Trace-Id") for _ in range(3)}
        assert len(ids) == 3


class TestTraceResolution:
    def test_api_trace_resolves_on_observability_endpoint(self, server):
        engine, service, endpoint, srv = server
        _warm(endpoint)
        obs = ObservabilityServer(engine.db.metrics, service=service).start()
        try:
            _, _, headers = _get(srv.url + AGG)
            trace_id = headers["X-Trace-Id"]
            status, payload, _ = _get(f"{obs.url}/trace/id/{trace_id}")
            assert status == 200
            assert validate(payload, TRACE_SCHEMA) in (None, [])
            assert payload["trace_id"] == trace_id
            assert payload["attrs"]["method"] == "GET"
            assert payload["attrs"]["http_status"] == 200
        finally:
            obs.stop()

    def test_unknown_trace_id_404s(self, server):
        engine, service, _, _ = server
        obs = ObservabilityServer(engine.db.metrics, service=service).start()
        try:
            status, _, _ = _get(f"{obs.url}/trace/id/{'cd' * 16}")
            assert status == 404
        finally:
            obs.stop()

    def test_traces_index_lists_recent_requests(self, server):
        engine, service, endpoint, srv = server
        _warm(endpoint)
        obs = ObservabilityServer(engine.db.metrics, service=service).start()
        try:
            _, _, headers = _get(srv.url + AGG)
            status, payload, _ = _get(f"{obs.url}/traces")
            assert status == 200
            listed = {entry["trace_id"] for entry in payload["traces"]}
            assert headers["X-Trace-Id"] in listed
        finally:
            obs.stop()


class TestAsyncCausality:
    def test_stale_fallback_links_to_the_build_it_scheduled(self, server):
        engine, service, endpoint, srv = server
        _warm(endpoint)
        _wait_for(lambda: not endpoint.router._inflight)
        # churn: bump the cube generation so the routed grain goes stale
        row = next(iter(generate_fact_rows(CONFIG)))
        service.write_cell(
            CONFIG.name, tuple(row[: CONFIG.ndim]), tuple(row[CONFIG.ndim:])
        )
        status, payload, headers = _get(srv.url + AGG)
        assert status == 200
        assert payload["route"]["source"] == "base"  # the stale fallback
        trace_id = headers["X-Trace-Id"]

        record = _wait_for(lambda: service.traces.get(trace_id))
        schedules = [
            link for link in record.links if link["kind"] == "schedules"
        ]
        assert len(schedules) == 1
        build_id = schedules[0]["trace_id"]
        assert HEX32.match(build_id)

        def _build_with_back_link():
            # the record turns resident at schedule time; the
            # follows_from link lands when the rebuild worker runs
            record = service.traces.get(build_id)
            if record is None:
                return None
            if any(link["kind"] == "follows_from" for link in record.links):
                return record
            return None

        build = _wait_for(_build_with_back_link)
        assert build.origin == "rollup-refresh"
        assert {
            "kind": "follows_from", "trace_id": trace_id,
        }.items() <= {
            k: v
            for link in build.links
            if link["kind"] == "follows_from"
            for k, v in link.items()
        }.items()

    def test_deduplicated_schedule_links_to_running_build(self, server):
        engine, service, endpoint, srv = server
        cube = endpoint.model.cube("sales")
        rollup = cube.rollups[1]  # mid01: the grain AGG routes to
        first = endpoint.router.schedule_refresh(cube, rollup, "sum")
        second = endpoint.router.schedule_refresh(cube, rollup, "sum")
        assert second == first  # same in-flight build, same identity
        _wait_for(lambda: not endpoint.router._inflight)


class TestAccessLog:
    def test_one_json_line_per_request(self, logged_server):
        _, _, endpoint, srv, stream = logged_server
        _warm(endpoint)
        _, _, headers = _get(srv.url + AGG)
        _get(srv.url + "/cube/nope/model")

        def both_lines():
            # the line is written just after the response bytes, so the
            # client can observe the response before the log lands
            entries = [
                json.loads(line)
                for line in stream.getvalue().splitlines()
                if line.strip()
            ]
            return entries if len(entries) == 2 else None

        lines = _wait_for(both_lines)
        # lines are written after the response bytes on separate handler
        # threads, so arrival order is not guaranteed — match by status
        by_status = {entry["status"]: entry for entry in lines}
        ok, err = by_status[200], by_status[404]
        assert ok["method"] == "GET"
        assert ok["path"].startswith("/cube/sales/aggregate")
        assert ok["trace_id"] == headers["X-Trace-Id"]
        assert ok["latency_ms"] >= 0
        assert ok["route"] == "rollup"
        assert err["path"] == "/cube/nope/model"

    def test_access_log_off_by_default(self, server):
        _, _, endpoint, srv = server
        _warm(endpoint)
        # nothing to assert on a stream (there is none); the default
        # path must simply keep serving with logging disabled
        status, _, _ = _get(srv.url + AGG)
        assert status == 200


class TestRollupStats:
    def test_rollups_route_reports_resident_rows(self, server):
        _, _, endpoint, srv = server
        _warm(endpoint)
        status, payload, _ = _get(srv.url + "/rollups")
        assert status == 200
        assert payload["resident_entries"] == 2
        assert payload["resident_rows"] == sum(
            payload["grains"].values()
        ) > 0

    def test_resident_rows_gauge_on_metrics(self, server):
        _, _, endpoint, srv = server
        _warm(endpoint)
        with urllib.request.urlopen(srv.url + "/metrics", timeout=30) as r:
            text = r.read().decode("utf-8")
        assert "rollup_resident_rows" in text
        assert "rollup_rows_" in text
