"""HTTP surface: happy paths validate against the checked-in schemas,
every error path maps to a structured 4xx (never a 500), and the server
survives concurrent reads, writes, and garbage."""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.api.server import ApiServer
from repro.data import generate_fact_rows
from repro.util.jsonschema_lite import validate

from .conftest import CONFIG

RESPONSE_SCHEMA = json.load(
    open("benchmarks/schemas/api_response.schema.json", encoding="utf-8")
)
PLAN_SCHEMA = json.load(
    open("benchmarks/schemas/explain_plan.schema.json", encoding="utf-8")
)


@pytest.fixture
def server(stack):
    engine, service, endpoint = stack
    with ApiServer(endpoint) as srv:
        yield engine, service, endpoint, srv


def _get(url):
    try:
        with urllib.request.urlopen(url, timeout=30) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


def _post(url, body, raw=False):
    data = body if raw else json.dumps(body).encode("utf-8")
    request = urllib.request.Request(
        url, data=data, headers={"Content-Type": "application/json"}
    )
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


def _warm(endpoint):
    """Materialize every declared rollup for sum so routed requests hit."""
    cube = endpoint.model.cube("sales")
    for rollup in cube.rollups:
        endpoint.router.rows_for(cube, rollup, "sum")


class TestInfoEndpoints:
    def test_root_lists_routes(self, server):
        _, _, _, srv = server
        status, payload = _get(srv.url + "/")
        assert status == 200
        assert any("aggregate" in route for route in payload["routes"])

    def test_cubes(self, server):
        _, _, _, srv = server
        status, payload = _get(srv.url + "/cubes")
        assert status == 200
        assert payload["cubes"] == ["sales"]

    def test_cube_model(self, server):
        _, _, _, srv = server
        status, payload = _get(srv.url + "/cube/sales/model")
        assert status == 200
        assert payload["cube"] == CONFIG.name
        assert [d["name"] for d in payload["dimensions"]] == [
            "dim0", "dim1", "dim2",
        ]

    def test_healthz(self, server):
        _, _, _, srv = server
        status, payload = _get(srv.url + "/healthz")
        assert status == 200
        assert payload["status"] == "ok"

    def test_metrics_exports_api_counters(self, server):
        _, _, _, srv = server
        _get(srv.url + "/cubes")
        with urllib.request.urlopen(srv.url + "/metrics", timeout=30) as r:
            text = r.read().decode("utf-8")
        assert "api" in text


class TestAggregate:
    def test_get_response_validates_against_schema(self, server):
        _, _, endpoint, srv = server
        _warm(endpoint)
        status, payload = _get(
            srv.url + "/cube/sales/aggregate?drilldown=dim0"
        )
        assert status == 200
        validate(payload, RESPONSE_SCHEMA)
        assert payload["route"]["source"] == "rollup"
        assert payload["route"]["rollup"] == "coarse"
        assert payload["cell_count"] == len(payload["cells"])
        assert set(payload["cells"][0]) == {"dim0.h02", "volume"}

    def test_first_request_falls_back_then_hits(self, server):
        _, _, endpoint, srv = server
        url = srv.url + "/cube/sales/aggregate?drilldown=dim1"
        status, cold = _get(url)
        assert status == 200
        assert cold["route"]["source"] == "base"
        assert "refresh scheduled" in cold["route"]["reason"]
        deadline_tries = 500
        for _ in range(deadline_tries):
            status, warm = _get(url)
            if warm["route"]["source"] == "rollup":
                break
        assert warm["route"]["source"] == "rollup"
        assert warm["cells"] == cold["cells"]
        snapshot = endpoint.counters.snapshot()
        assert snapshot["api.stale_fallbacks"] >= 1
        assert snapshot["api.rollup_hits"] >= 1

    def test_routed_and_base_agree(self, server):
        _, _, endpoint, srv = server
        _warm(endpoint)
        path = "/cube/sales/aggregate?drilldown=dim0:h01,dim1:h11&cut=dim1.h11:AA0;AA1"
        _, routed = _get(srv.url + path)
        assert routed["route"]["source"] == "rollup"
        # key-level drilldown forces the base engine for the same shape
        _, base = _get(
            srv.url
            + "/cube/sales/aggregate?drilldown=dim0:h01,dim1:h11,dim2:d2&cut=dim1.h11:AA0;AA1"
        )
        assert base["route"]["source"] == "base"
        totals = {}
        for cell in base["cells"]:
            key = (cell["dim0.h01"], cell["dim1.h11"])
            totals[key] = totals.get(key, 0) + cell["volume"]
        routed_totals = {
            (c["dim0.h01"], c["dim1.h11"]): c["volume"]
            for c in routed["cells"]
        }
        assert routed_totals == totals

    def test_post_body_equivalent_to_get(self, server):
        _, _, endpoint, srv = server
        _warm(endpoint)
        url = srv.url + "/cube/sales/aggregate"
        _, via_get = _get(url + "?drilldown=dim0:h01&aggregate=max")
        status, via_post = _post(
            url,
            {"drilldown": [{"dimension": "dim0", "level": "h01"}],
             "aggregate": "max"},
        )
        assert status == 200
        validate(via_post, RESPONSE_SCHEMA)
        assert via_post["cells"] == via_get["cells"]

    def test_range_cut_over_get(self, server):
        _, _, endpoint, srv = server
        _warm(endpoint)
        status, payload = _get(
            srv.url
            + "/cube/sales/aggregate?drilldown=dim0&cut=dim1.h11:AA0..AA1"
        )
        assert status == 200
        assert payload["cuts"] == [
            {"dimension": "dim1", "level": "h11", "range": ["AA0", "AA1"]}
        ]

    def test_explain_plan_validates_and_routes(self, server):
        _, _, endpoint, srv = server
        _warm(endpoint)
        status, payload = _get(
            srv.url + "/cube/sales/aggregate?drilldown=dim0&explain=1"
        )
        assert status == 200
        plan = payload["explain"]
        validate(plan, PLAN_SCHEMA)
        assert plan["backend"] == "rollup"
        assert plan["plan"]["op"] == "rollup.route"
        assert plan["plan"]["children"][0]["op"] == "rollup.scan"
        assert not plan["analyzed"]

    def test_explain_analyze_binds_actuals(self, server):
        _, _, endpoint, srv = server
        _warm(endpoint)
        status, payload = _get(
            srv.url
            + "/cube/sales/aggregate?drilldown=dim0&explain=1&analyze=1"
        )
        assert status == 200
        plan = payload["explain"]
        validate(plan, PLAN_SCHEMA)
        assert plan["analyzed"]
        scan = plan["plan"]["children"][0]
        assert (
            scan["actuals"]["rollup.rows_scanned"]
            == scan["estimates"]["rollup.rows_scanned"]
        )

    def test_base_explain_still_served(self, server):
        _, _, _, srv = server
        status, payload = _get(
            srv.url + "/cube/sales/aggregate?drilldown=dim0:d0&explain=1"
        )
        assert status == 200
        assert payload["route"]["source"] == "base"
        validate(payload["explain"], PLAN_SCHEMA)
        assert payload["explain"]["backend"] != "rollup"


def _error(payload):
    assert set(payload) == {"error", "trace_id"}
    assert set(payload["error"]) == {"kind", "message", "status"}
    return payload["error"]


class TestErrorPaths:
    def test_unknown_route_404(self, server):
        _, _, _, srv = server
        status, payload = _get(srv.url + "/bogus")
        assert status == 404
        assert _error(payload)["kind"] == "not_found"

    def test_post_to_get_route_404(self, server):
        _, _, _, srv = server
        status, payload = _post(srv.url + "/cubes", {"x": 1})
        assert status == 404
        assert _error(payload)["kind"] == "not_found"

    def test_unknown_cube_404(self, server):
        _, _, _, srv = server
        status, payload = _get(
            srv.url + "/cube/nope/aggregate?drilldown=dim0"
        )
        assert status == 404
        assert "nope" in _error(payload)["message"]

    def test_unknown_dimension_404(self, server):
        _, _, _, srv = server
        status, payload = _get(
            srv.url + "/cube/sales/aggregate?drilldown=never"
        )
        assert status == 404
        assert _error(payload)["kind"] == "not_found"

    def test_unknown_level_404(self, server):
        _, _, _, srv = server
        status, _ = _get(
            srv.url + "/cube/sales/aggregate?drilldown=dim0:h99"
        )
        assert status == 404

    def test_unknown_measure_404(self, server):
        _, _, _, srv = server
        status, _ = _get(
            srv.url + "/cube/sales/aggregate?drilldown=dim0&measure=gold"
        )
        assert status == 404

    def test_missing_drilldown_400(self, server):
        _, _, _, srv = server
        status, payload = _get(srv.url + "/cube/sales/aggregate")
        assert status == 400
        assert _error(payload)["kind"] == "bad_request"

    def test_bad_aggregate_400(self, server):
        _, _, _, srv = server
        status, payload = _get(
            srv.url
            + "/cube/sales/aggregate?drilldown=dim0&aggregate=median"
        )
        assert status == 400
        assert "median" in _error(payload)["message"]

    def test_duplicate_drilldown_dimension_400(self, server):
        _, _, _, srv = server
        status, _ = _get(
            srv.url + "/cube/sales/aggregate?drilldown=dim0,dim0:h01"
        )
        assert status == 400

    def test_bad_cut_syntax_400(self, server):
        _, _, _, srv = server
        status, _ = _get(
            srv.url + "/cube/sales/aggregate?drilldown=dim0&cut=dim0-h01"
        )
        assert status == 400

    def test_non_integer_key_cut_400(self, server):
        _, _, _, srv = server
        status, payload = _get(
            srv.url + "/cube/sales/aggregate?drilldown=dim0&cut=dim0.d0:zzz"
        )
        assert status == 400
        assert "integer" in _error(payload)["message"]

    def test_malformed_json_body_400(self, server):
        _, _, _, srv = server
        status, payload = _post(
            srv.url + "/cube/sales/aggregate", b"{nope", raw=True
        )
        assert status == 400
        assert "not JSON" in _error(payload)["message"]

    def test_empty_body_400(self, server):
        _, _, _, srv = server
        status, payload = _post(
            srv.url + "/cube/sales/aggregate", b"", raw=True
        )
        assert status == 400
        assert "empty" in _error(payload)["message"]

    def test_unknown_body_key_400(self, server):
        _, _, _, srv = server
        status, payload = _post(
            srv.url + "/cube/sales/aggregate",
            {"drilldown": ["dim0"], "bogus": 1},
        )
        assert status == 400
        assert "bogus" in _error(payload)["message"]

    def test_oversized_body_413(self, server):
        _, _, endpoint, srv = server
        filler = "x" * (endpoint.max_body_bytes + 1)
        status, payload = _post(
            srv.url + "/cube/sales/aggregate",
            {"drilldown": ["dim0"], "pad": filler},
        )
        assert status == 413
        assert _error(payload)["kind"] == "too_large"

    def test_no_500s_recorded(self, server):
        _, _, endpoint, srv = server
        for path in (
            "/bogus",
            "/cube/nope/aggregate?drilldown=dim0",
            "/cube/sales/aggregate?aggregate=median&drilldown=dim0",
            "/cube/sales/aggregate",
        ):
            _get(srv.url + path)
        snapshot = endpoint.counters.snapshot()
        assert snapshot.get("api.responses_5xx", 0) == 0
        assert snapshot.get("api.server_errors", 0) == 0
        assert snapshot["api.responses_4xx"] >= 4


class TestConcurrency:
    def test_hammering_with_writes_never_500s(self, server):
        engine, service, endpoint, srv = server
        _warm(endpoint)
        keys = tuple(generate_fact_rows(CONFIG)[0][:3])
        good = srv.url + "/cube/sales/aggregate?drilldown=dim0,dim1"
        bad = srv.url + "/cube/sales/aggregate?drilldown=dim0&cut=broken"
        statuses: list[int] = []
        lock = threading.Lock()

        def client(index: int) -> None:
            for turn in range(12):
                if (index + turn) % 3 == 0:
                    status, _ = _get(bad)
                elif (index + turn) % 3 == 1:
                    status, _ = _post(
                        good.split("?")[0], {"drilldown": ["dim1"]}
                    )
                else:
                    status, _ = _get(good)
                with lock:
                    statuses.append(status)

        threads = [
            threading.Thread(target=client, args=(i,)) for i in range(4)
        ]
        for thread in threads:
            thread.start()
        for _ in range(6):
            service.write_cell(CONFIG.name, keys, (777,))
        for thread in threads:
            thread.join()

        assert len(statuses) == 48
        assert all(status in (200, 400) for status in statuses)
        snapshot = endpoint.counters.snapshot()
        assert snapshot.get("api.responses_5xx", 0) == 0
        assert snapshot.get("api.server_errors", 0) == 0
