"""Tests for the synthetic cube generator."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import (
    SyntheticCubeConfig,
    cube_schema_for,
    generate_dimension_rows,
    generate_fact_rows,
)
from repro.data.generator import h1_value, h2_value
from repro.errors import DataGenError


def config(**kwargs):
    defaults = dict(
        name="c",
        dim_sizes=(8, 6, 10),
        n_valid=100,
        chunk_shape=(4, 3, 5),
        fanout1=4,
        fanout2=2,
    )
    defaults.update(kwargs)
    return SyntheticCubeConfig(**defaults)


class TestConfig:
    def test_density(self):
        c = config()
        assert c.density == pytest.approx(100 / 480)
        assert c.logical_cells == 480

    def test_validation(self):
        with pytest.raises(DataGenError):
            config(dim_sizes=(0, 1, 1))
        with pytest.raises(DataGenError):
            config(n_valid=10_000)
        with pytest.raises(DataGenError):
            config(chunk_shape=(2, 2))
        with pytest.raises(DataGenError):
            config(fanout1=0)


class TestDimensions:
    def test_rows_cover_all_keys(self):
        rows = generate_dimension_rows(config())
        assert sorted(rows) == ["dim0", "dim1", "dim2"]
        assert [r[0] for r in rows["dim0"]] == list(range(8))

    def test_h1_uniform_over_fanout(self):
        c = config(dim_sizes=(12, 6, 10), fanout1=4)
        rows = generate_dimension_rows(c)
        values = [r[1] for r in rows["dim0"]]
        assert set(values) == {f"AA{i}" for i in range(4)}
        # 12 keys over 4 values: exactly 3 each (uniform)
        assert all(values.count(v) == 3 for v in set(values))

    def test_hierarchy_is_functional(self):
        c = config()
        rows = generate_dimension_rows(c)
        h1_to_h2 = {}
        for _, h1, h2 in rows["dim0"]:
            assert h1_to_h2.setdefault(h1, h2) == h2

    def test_h_values_match_helpers(self):
        c = config()
        rows = generate_dimension_rows(c)
        for key, h1, h2 in rows["dim1"]:
            assert h1 == h1_value(c, key)
            assert h2 == h2_value(c, key)


class TestFacts:
    def test_exact_count_and_distinct_cells(self):
        c = config()
        rows = generate_fact_rows(c)
        assert len(rows) == c.n_valid
        cells = {r[:3] for r in rows}
        assert len(cells) == c.n_valid

    def test_cells_in_bounds(self):
        c = config()
        for row in generate_fact_rows(c):
            for d, size in enumerate(c.dim_sizes):
                assert 0 <= row[d] < size

    def test_measures_in_range(self):
        c = config(measure_max=7)
        assert all(1 <= r[-1] <= 7 for r in generate_fact_rows(c))

    def test_deterministic_by_seed(self):
        assert generate_fact_rows(config(seed=5)) == generate_fact_rows(
            config(seed=5)
        )
        assert generate_fact_rows(config(seed=5)) != generate_fact_rows(
            config(seed=6)
        )

    def test_full_density(self):
        c = config(n_valid=480)
        rows = generate_fact_rows(c)
        assert len({r[:3] for r in rows}) == 480

    def test_zero_valid(self):
        assert generate_fact_rows(config(n_valid=0)) == []


class TestSchema:
    def test_schema_matches_paper_template(self):
        schema = cube_schema_for(config())
        assert [d.name for d in schema.dimensions] == ["dim0", "dim1", "dim2"]
        assert schema.dimension("dim1").key == "d1"
        assert schema.dimension("dim1").level_names == ("h11", "h12")
        assert schema.measures[0].name == "volume"


@settings(max_examples=25, deadline=None)
@given(
    st.tuples(
        st.integers(2, 12), st.integers(2, 12), st.integers(2, 12)
    ).flatmap(
        lambda sizes: st.tuples(
            st.just(sizes),
            st.integers(0, math.prod(sizes)),
            st.integers(0, 10_000),
        )
    )
)
def test_fact_generation_invariants(params):
    sizes, n_valid, seed = params
    c = SyntheticCubeConfig(
        name="p",
        dim_sizes=sizes,
        n_valid=n_valid,
        chunk_shape=tuple(max(1, s // 2) for s in sizes),
        seed=seed,
    )
    rows = generate_fact_rows(c)
    assert len(rows) == n_valid
    assert len({r[:3] for r in rows}) == n_valid
