"""Tests for the paper dataset presets."""

import math

import pytest

from repro.core import ChunkGeometry
from repro.data import dataset1, dataset2, get_scale, selectivity_configs
from repro.data.datasets import DATASET2_DENSITIES, QUERY2_FANOUTS
from repro.errors import DataGenError


class TestDataset1:
    @pytest.mark.parametrize("scale", ["small", "medium", "paper"])
    def test_chunk_counts_match_paper(self, scale):
        # §5.5.1: 40, 80 and 800 chunks for the three arrays
        counts = [
            ChunkGeometry(c.dim_sizes, c.chunk_shape).n_chunks
            for c in dataset1(scale)
        ]
        assert counts == [40, 80, 800]

    @pytest.mark.parametrize("scale", ["small", "medium", "paper"])
    def test_constant_valid_cells(self, scale):
        configs = dataset1(scale)
        assert len({c.n_valid for c in configs}) == 1

    def test_paper_scale_exact_numbers(self):
        configs = dataset1("paper")
        assert [c.dim_sizes for c in configs] == [
            (40, 40, 40, 50),
            (40, 40, 40, 100),
            (40, 40, 40, 1000),
        ]
        assert all(c.n_valid == 640_000 for c in configs)
        assert [round(c.density, 3) for c in configs] == [0.2, 0.1, 0.01]

    def test_density_ratios_preserved_across_scales(self):
        for scale in ("small", "medium"):
            densities = [c.density for c in dataset1(scale)]
            assert densities[0] == pytest.approx(0.2)
            assert densities[1] == pytest.approx(0.1)
            assert densities[2] == pytest.approx(0.01)


class TestDataset2:
    def test_densities_swept(self):
        configs = dataset2("small")
        assert [round(c.density, 4) for c in configs] == [
            round(d, 4) for d in DATASET2_DENSITIES
        ]

    def test_paper_dims(self):
        configs = dataset2("paper")
        assert all(c.dim_sizes == (40, 40, 40, 100) for c in configs)

    def test_custom_densities(self):
        configs = dataset2("small", densities=(0.5,))
        assert len(configs) == 1
        assert configs[0].density == pytest.approx(0.5)


class TestSelectivityConfigs:
    def test_fanout_sweep(self):
        configs = selectivity_configs("small")
        assert [c.fanout1 for c in configs] == list(QUERY2_FANOUTS)

    def test_star_join_selectivity_range(self):
        # paper: S ranges 0.0625 down to 0.0001 for 4 joined dimensions
        selectivities = [1 / f**4 for f in QUERY2_FANOUTS]
        assert selectivities[0] == pytest.approx(0.0625)
        assert selectivities[-1] == pytest.approx(0.0001)

    def test_large_vs_small_fourth_dim(self):
        large = selectivity_configs("small", fourth_dim="large")[0]
        small = selectivity_configs("small", fourth_dim="small")[0]
        assert large.dim_sizes[-1] > small.dim_sizes[-1]

    def test_names_unique(self):
        names = [c.name for c in selectivity_configs("small")]
        assert len(set(names)) == len(names)


class TestScaleEnv:
    def test_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert get_scale() == "small"
        assert get_scale(default="medium") == "medium"

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "paper")
        assert get_scale() == "paper"

    def test_invalid_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "galactic")
        with pytest.raises(DataGenError):
            get_scale()
