"""Unit and property tests for fixed-length record codecs."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import SchemaError
from repro.util import RecordCodec


class TestBasics:
    def test_int_record_roundtrip(self):
        codec = RecordCodec(["int32", "int32", "int64"])
        raw = codec.pack((1, -2, 3_000_000_000))
        assert len(raw) == codec.record_size == 16
        assert codec.unpack(raw) == (1, -2, 3_000_000_000)

    def test_mixed_record_roundtrip(self):
        codec = RecordCodec(["int32", "str:8", "float64"])
        raw = codec.pack((7, "abc", 1.5))
        assert codec.unpack(raw) == (7, "abc", 1.5)

    def test_string_padded_to_width(self):
        codec = RecordCodec(["str:10"])
        assert codec.record_size == 10
        assert codec.unpack(codec.pack(("hi",))) == ("hi",)

    def test_string_too_long_rejected(self):
        codec = RecordCodec(["str:3"])
        with pytest.raises(SchemaError):
            codec.pack(("abcd",))

    def test_wrong_arity_rejected(self):
        codec = RecordCodec(["int32", "int32"])
        with pytest.raises(SchemaError):
            codec.pack((1,))

    def test_unknown_type_rejected(self):
        with pytest.raises(SchemaError):
            RecordCodec(["int7"])

    def test_empty_schema_rejected(self):
        with pytest.raises(SchemaError):
            RecordCodec([])

    def test_nonpositive_string_width_rejected(self):
        with pytest.raises(SchemaError):
            RecordCodec(["str:0"])


class TestBufferOps:
    def test_pack_into_unpack_from(self):
        codec = RecordCodec(["int32", "str:4"])
        buffer = bytearray(100)
        codec.pack_into(buffer, 10, (42, "ok"))
        assert codec.unpack_from(buffer, 10) == (42, "ok")

    def test_iter_unpack_scans_consecutive_records(self):
        codec = RecordCodec(["int32", "int32"])
        buffer = bytearray(8 * 5 + 3)
        rows = [(i, i * i) for i in range(5)]
        for i, row in enumerate(rows):
            codec.pack_into(buffer, i * 8, row)
        assert list(codec.iter_unpack(buffer, 5)) == rows

    def test_iter_unpack_with_offset(self):
        codec = RecordCodec(["int64"])
        buffer = bytearray(32)
        codec.pack_into(buffer, 8, (11,))
        codec.pack_into(buffer, 16, (22,))
        assert list(codec.iter_unpack(buffer, 2, offset=8)) == [(11,), (22,)]


_VALUE_STRATEGIES = {
    "int32": st.integers(min_value=-(2**31), max_value=2**31 - 1),
    "int64": st.integers(min_value=-(2**63), max_value=2**63 - 1),
    "float64": st.floats(allow_nan=False),
    "str:6": st.text(
        alphabet=st.characters(min_codepoint=32, max_codepoint=126), max_size=6
    ),
}


@given(
    st.lists(
        st.sampled_from(sorted(_VALUE_STRATEGIES)), min_size=1, max_size=6
    ).flatmap(
        lambda types: st.tuples(
            st.just(types),
            st.tuples(*[_VALUE_STRATEGIES[t] for t in types]),
        )
    )
)
def test_roundtrip_random_schemas(params):
    types, values = params
    codec = RecordCodec(types)
    decoded = codec.unpack(codec.pack(values))
    assert decoded == values
