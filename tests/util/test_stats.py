"""Tests for counters and timers."""

import time

from repro.util import Counters, Timer


class TestCounters:
    def test_unknown_counter_reads_zero(self):
        assert Counters().get("anything") == 0.0

    def test_add_and_get(self):
        c = Counters()
        c.add("reads")
        c.add("reads", 2)
        assert c.get("reads") == 3

    def test_reset(self):
        c = Counters()
        c.add("x", 5)
        c.reset()
        assert c.get("x") == 0

    def test_reset_returns_pre_reset_snapshot(self):
        c = Counters()
        c.add("x", 5)
        c.add("y", 0)
        assert c.reset() == {"x": 5}
        assert c.reset() == {}

    def test_snapshot_drops_zeros(self):
        c = Counters()
        c.add("a", 1)
        c.add("b", 0)
        assert c.snapshot() == {"a": 1}

    def test_merge(self):
        a, b = Counters(), Counters()
        a.add("x", 1)
        b.add("x", 2)
        b.add("y", 3)
        a.merge(b)
        assert a.get("x") == 3 and a.get("y") == 3

    def test_iadd_merges_in_place(self):
        a, b = Counters(), Counters()
        a.add("x", 1)
        b.add("x", 2)
        b.add("y", 3)
        a_before = a
        a += b
        assert a is a_before
        assert a.get("x") == 3 and a.get("y") == 3
        assert b.get("x") == 2  # the right-hand side is untouched

    def test_repr_is_sorted(self):
        c = Counters()
        c.add("zz", 1)
        c.add("aa", 2)
        assert repr(c).index("aa") < repr(c).index("zz")


class TestTimer:
    def test_measures_elapsed(self):
        with Timer() as t:
            time.sleep(0.01)
        assert t.elapsed >= 0.005

    def test_accumulates_across_uses(self):
        t = Timer()
        with t:
            pass
        first = t.elapsed
        with t:
            time.sleep(0.005)
        assert t.elapsed > first

    def test_reset(self):
        t = Timer()
        with t:
            pass
        t.reset()
        assert t.elapsed == 0.0

    def test_nested_timers_accumulate_independently(self):
        outer, inner = Timer(), Timer()
        with outer:
            with inner:
                time.sleep(0.005)
        assert inner.elapsed > 0
        assert outer.elapsed >= inner.elapsed
