"""The stdlib JSON-Schema subset validator behind the explain-smoke."""

import json
import os

import pytest

from repro.util.jsonschema_lite import SchemaError, validate


class TestTypes:
    def test_matching_scalar_types_pass(self):
        validate("x", {"type": "string"})
        validate(3, {"type": "integer"})
        validate(3.5, {"type": "number"})
        validate(None, {"type": "null"})
        validate(True, {"type": "boolean"})

    def test_mismatch_raises_with_path(self):
        with pytest.raises(SchemaError, match=r"\$: expected string"):
            validate(3, {"type": "string"})

    def test_bool_is_not_an_integer(self):
        # bool subclasses int in Python; JSON keeps them distinct
        with pytest.raises(SchemaError):
            validate(True, {"type": "integer"})
        with pytest.raises(SchemaError):
            validate(1, {"type": "boolean"})

    def test_integer_counts_as_number(self):
        validate(3, {"type": "number"})

    def test_type_union(self):
        schema = {"type": ["string", "null"]}
        validate("x", schema)
        validate(None, schema)
        with pytest.raises(SchemaError):
            validate(3, schema)


class TestObjects:
    SCHEMA = {
        "type": "object",
        "required": ["op"],
        "properties": {"op": {"type": "string"}, "n": {"type": "integer"}},
        "additionalProperties": False,
    }

    def test_valid_object(self):
        validate({"op": "scan", "n": 2}, self.SCHEMA)

    def test_missing_required(self):
        with pytest.raises(SchemaError, match="missing required property"):
            validate({"n": 2}, self.SCHEMA)

    def test_additional_properties_rejected(self):
        with pytest.raises(SchemaError, match="unexpected property 'rogue'"):
            validate({"op": "scan", "rogue": 1}, self.SCHEMA)

    def test_nested_paths_in_errors(self):
        schema = {
            "type": "object",
            "properties": {
                "kids": {"type": "array", "items": {"type": "string"}}
            },
        }
        with pytest.raises(SchemaError, match=r"\$\.kids\[1\]"):
            validate({"kids": ["ok", 3]}, schema)

    def test_all_violations_reported_together(self):
        with pytest.raises(SchemaError) as exc:
            validate({"n": "two", "rogue": 1}, self.SCHEMA)
        message = str(exc.value)
        assert "missing required" in message
        assert "expected integer" in message
        assert "unexpected property" in message


class TestConstraints:
    def test_enum(self):
        schema = {"enum": ["chunk", "naive"]}
        validate("chunk", schema)
        with pytest.raises(SchemaError, match="not one of"):
            validate("random", schema)

    def test_minimum_maximum(self):
        schema = {"type": "number", "minimum": 0, "maximum": 10}
        validate(0, schema)
        validate(10, schema)
        with pytest.raises(SchemaError, match="< minimum"):
            validate(-1, schema)
        with pytest.raises(SchemaError, match="> maximum"):
            validate(11, schema)

    def test_min_items(self):
        schema = {"type": "array", "minItems": 1}
        validate([1], schema)
        with pytest.raises(SchemaError, match="minItems"):
            validate([], schema)


class TestRefs:
    TREE = {
        "$ref": "#/$defs/node",
        "$defs": {
            "node": {
                "type": "object",
                "required": ["op", "children"],
                "properties": {
                    "op": {"type": "string"},
                    "children": {
                        "type": "array",
                        "items": {"$ref": "#/$defs/node"},
                    },
                },
            }
        },
    }

    def test_recursive_ref_validates_a_tree(self):
        tree = {
            "op": "root",
            "children": [
                {"op": "leaf", "children": []},
                {"op": "mid", "children": [{"op": "leaf", "children": []}]},
            ],
        }
        validate(tree, self.TREE)

    def test_recursive_ref_flags_deep_violation(self):
        bad = {"op": "root", "children": [{"op": 3, "children": []}]}
        with pytest.raises(SchemaError, match=r"children\[0\]\.op"):
            validate(bad, self.TREE)

    def test_unresolvable_ref(self):
        with pytest.raises(SchemaError, match="unresolvable"):
            validate({}, {"$ref": "#/$defs/ghost", "$defs": {}})

    def test_remote_refs_rejected(self):
        with pytest.raises(SchemaError, match="only local"):
            validate({}, {"$ref": "https://example.com/s.json"})


class TestExplainSchema:
    """The checked-in plan schema accepts real EXPLAIN output."""

    SCHEMA_PATH = os.path.join(
        os.path.dirname(__file__),
        "..", "..", "benchmarks", "schemas", "explain_plan.schema.json",
    )

    @pytest.fixture(scope="class")
    def schema(self):
        with open(self.SCHEMA_PATH, encoding="utf-8") as handle:
            return json.load(handle)

    def test_real_explain_payload_validates(self, schema):
        from tests.serve.conftest import CONFIG, fresh_engine
        from repro.olap import ConsolidationQuery, ExecutionOptions

        engine = fresh_engine()
        query = ConsolidationQuery.build(
            CONFIG.name,
            group_by={f"dim{d}": f"h{d}1" for d in range(CONFIG.ndim)},
        )
        validate(engine.explain(query, ExecutionOptions(backend="array")).to_dict(), schema)
        validate(
            engine.explain(query, analyze=True).to_dict(),
            schema,
        )

    def test_schema_rejects_a_mangled_payload(self, schema):
        with pytest.raises(SchemaError):
            validate({"cube": "c"}, schema)
