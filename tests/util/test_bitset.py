"""Unit and property tests for the packed bitset."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import BitmapError
from repro.util import Bitset


class TestScalarOps:
    def test_new_bitset_is_all_zero(self):
        bits = Bitset(130)
        assert bits.count() == 0
        assert not bits.any()
        assert len(bits) == 130

    def test_set_get_clear_roundtrip(self):
        bits = Bitset(100)
        bits.set(0)
        bits.set(63)
        bits.set(64)
        bits.set(99)
        assert bits.get(0) and bits.get(63) and bits.get(64) and bits.get(99)
        assert not bits.get(1)
        bits.clear(63)
        assert not bits.get(63)
        assert bits.count() == 3

    def test_getitem_alias(self):
        bits = Bitset(10)
        bits.set(3)
        assert bits[3]
        assert not bits[4]

    def test_out_of_range_raises(self):
        bits = Bitset(10)
        with pytest.raises(BitmapError):
            bits.set(10)
        with pytest.raises(BitmapError):
            bits.get(-1)

    def test_negative_length_raises(self):
        with pytest.raises(BitmapError):
            Bitset(-1)

    def test_zero_length_bitset(self):
        bits = Bitset(0)
        assert bits.count() == 0
        assert list(bits) == []
        assert bits.set_positions().size == 0


class TestConstruction:
    def test_from_indices(self):
        bits = Bitset.from_indices(200, [5, 64, 199])
        assert bits.set_positions().tolist() == [5, 64, 199]

    def test_from_indices_empty(self):
        bits = Bitset.from_indices(50, [])
        assert bits.count() == 0

    def test_from_indices_out_of_range(self):
        with pytest.raises(BitmapError):
            Bitset.from_indices(10, [10])

    def test_from_indices_duplicates_set_once(self):
        bits = Bitset.from_indices(10, [3, 3, 3])
        assert bits.count() == 1

    def test_ones_masks_tail(self):
        bits = Bitset.ones(70)
        assert bits.count() == 70
        # the tail bits beyond length must be zero so count stays exact
        assert (~bits).count() == 0

    def test_bytes_roundtrip(self):
        bits = Bitset.from_indices(150, [0, 77, 149])
        again = Bitset.from_bytes(150, bits.to_bytes())
        assert again == bits

    def test_from_bytes_wrong_length(self):
        with pytest.raises(BitmapError):
            Bitset.from_bytes(100, b"\x00" * 3)


class TestAlgebra:
    def test_and_or_xor(self):
        a = Bitset.from_indices(100, [1, 2, 3, 64])
        b = Bitset.from_indices(100, [2, 3, 4, 65])
        assert (a & b).set_positions().tolist() == [2, 3]
        assert (a | b).set_positions().tolist() == [1, 2, 3, 4, 64, 65]
        assert (a ^ b).set_positions().tolist() == [1, 4, 64, 65]

    def test_invert_respects_length(self):
        a = Bitset.from_indices(66, [0, 65])
        inv = ~a
        assert inv.count() == 64
        assert not inv.get(0) and not inv.get(65)

    def test_inplace_and_or(self):
        a = Bitset.from_indices(80, [1, 2, 3])
        b = Bitset.from_indices(80, [2, 3, 4])
        a.iand(b)
        assert a.set_positions().tolist() == [2, 3]
        a.ior(Bitset.from_indices(80, [79]))
        assert a.set_positions().tolist() == [2, 3, 79]

    def test_length_mismatch_raises(self):
        with pytest.raises(BitmapError):
            Bitset(10) & Bitset(11)

    def test_unhashable(self):
        with pytest.raises(TypeError):
            hash(Bitset(4))


@given(
    st.integers(min_value=1, max_value=300).flatmap(
        lambda n: st.tuples(
            st.just(n),
            st.lists(st.integers(min_value=0, max_value=n - 1), unique=True),
            st.lists(st.integers(min_value=0, max_value=n - 1), unique=True),
        )
    )
)
def test_algebra_matches_python_sets(params):
    n, xs, ys = params
    a, b = Bitset.from_indices(n, xs), Bitset.from_indices(n, ys)
    sa, sb = set(xs), set(ys)
    assert set((a & b).set_positions().tolist()) == sa & sb
    assert set((a | b).set_positions().tolist()) == sa | sb
    assert set((a ^ b).set_positions().tolist()) == sa ^ sb
    assert set((~a).set_positions().tolist()) == set(range(n)) - sa
    assert a.count() == len(sa)


@given(
    st.integers(min_value=0, max_value=500),
)
def test_ones_count_equals_length(n):
    assert Bitset.ones(n).count() == n


@given(
    st.integers(min_value=1, max_value=200).flatmap(
        lambda n: st.tuples(
            st.just(n),
            st.lists(st.integers(min_value=0, max_value=n - 1), unique=True),
        )
    )
)
def test_serialization_roundtrip(params):
    n, xs = params
    bits = Bitset.from_indices(n, xs)
    assert Bitset.from_bytes(n, bits.to_bytes()) == bits


def test_set_positions_returns_int64():
    bits = Bitset.from_indices(10, [1, 9])
    assert bits.set_positions().dtype == np.int64
