"""Unit and property tests for the LZW codec."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import CompressionError
from repro.util import lzw_compress, lzw_decompress


class TestRoundtrips:
    def test_empty(self):
        assert lzw_compress(b"") == b""
        assert lzw_decompress(b"") == b""

    def test_single_byte(self):
        assert lzw_decompress(lzw_compress(b"a")) == b"a"

    def test_ascii_text(self):
        text = b"TOBEORNOTTOBEORTOBEORNOT" * 4
        assert lzw_decompress(lzw_compress(text)) == text

    def test_all_byte_values(self):
        data = bytes(range(256)) * 3
        assert lzw_decompress(lzw_compress(data)) == data

    def test_kwkwk_pattern(self):
        # Classic LZW edge case where the decoder sees a not-yet-defined code.
        data = b"abababababababab"
        assert lzw_decompress(lzw_compress(data)) == data

    def test_long_repetitive_input_triggers_width_growth(self):
        data = bytes(i % 7 for i in range(50_000))
        assert lzw_decompress(lzw_compress(data)) == data

    def test_incompressible_input(self):
        data = bytes((i * 2654435761) % 256 for i in range(4096))
        assert lzw_decompress(lzw_compress(data)) == data


class TestCompressionBehaviour:
    def test_repetitive_data_shrinks(self):
        data = b"x" * 10_000
        assert len(lzw_compress(data)) < len(data) / 10

    def test_zero_page_shrinks(self):
        data = bytes(8192)
        assert len(lzw_compress(data)) < 200


class TestErrors:
    def test_stream_starting_with_nonliteral_rejected(self):
        # 9-bit code 300 is not a literal
        payload = bytes([300 & 0xFF, 300 >> 8])
        with pytest.raises(CompressionError):
            lzw_decompress(payload)


@settings(max_examples=60)
@given(st.binary(max_size=3000))
def test_roundtrip_arbitrary_bytes(data):
    assert lzw_decompress(lzw_compress(data)) == data


@settings(max_examples=25)
@given(
    st.integers(min_value=1, max_value=5),
    st.integers(min_value=100, max_value=60_000),
)
def test_roundtrip_low_entropy(alphabet, length):
    data = bytes(i % alphabet for i in range(length))
    assert lzw_decompress(lzw_compress(data)) == data
