"""The concurrency oracle: N threads == one serial replay, no stale reads.

Eight client threads issue a mixed read/write workload through one
:class:`~repro.serve.service.QueryService`.  Barriers phase each round
(everyone reads, then one writer mutates) so the schedule is
deterministic; a second, identical engine replays the same schedule
serially.  Every row set observed concurrently must equal the serial
replay's — a single stale read (a cached result surviving a write)
breaks the equality.
"""

import threading
from concurrent.futures import ThreadPoolExecutor

from repro.bench import query1_for, query2_for, query3_for
from repro.serve import QueryService, ServiceConfig

from .conftest import CONFIG, fresh_engine

N_THREADS = 8
ROUNDS = 3
QUERIES = [query1_for(CONFIG), query2_for(CONFIG), query3_for(CONFIG)]


def writes_for(round_no):
    """The mutation applied at the end of one round (deterministic)."""
    return [(round_no, 0, round_no % 3, 1_000 * (round_no + 1))]


def serial_replay():
    """Round-by-round expected rows on a fresh, identical engine."""
    engine = fresh_engine()
    expected = []
    for round_no in range(ROUNDS):
        expected.append([engine.query(q).rows for q in QUERIES])
        engine.append_facts(CONFIG.name, writes_for(round_no))
    return expected


def test_concurrent_mixed_workload_matches_serial_replay():
    expected = serial_replay()
    engine = fresh_engine()
    barrier = threading.Barrier(N_THREADS)
    config = ServiceConfig(
        max_workers=N_THREADS, max_in_flight=N_THREADS * len(QUERIES) * 2
    )

    with QueryService(engine, config) as service:

        def client(thread_no):
            observed = []
            for round_no in range(ROUNDS):
                rows = [service.execute(q).rows for q in QUERIES]
                observed.append(rows)
                barrier.wait()
                if thread_no == 0:
                    service.append_facts(CONFIG.name, writes_for(round_no))
                barrier.wait()
            return observed

        with ThreadPoolExecutor(max_workers=N_THREADS) as pool:
            per_thread = list(pool.map(client, range(N_THREADS)))
        stats = service.stats()

    for observed in per_thread:
        assert observed == expected

    # the cache worked: each round's queries compute at most once per
    # (round, query); everything else is a hit
    lookups = stats["result_cache.hits"] + stats["result_cache.misses"]
    assert lookups >= N_THREADS * ROUNDS * len(QUERIES)
    assert stats["result_cache.hits"] > 0
    # every round's write invalidated the previous round's entries
    assert stats["serve.writes"] == ROUNDS
    assert stats["result_cache.invalidations"] > 0
    assert stats.get("serve.rejected", 0) == 0


def test_write_invalidates_only_the_changed_generation():
    """A write must drop exactly the fingerprints whose cube generation
    changed — entries recomputed afterwards live at the new generation
    and keep hitting."""
    engine = fresh_engine()
    with QueryService(engine) as service:
        service.execute(QUERIES[0])
        service.append_facts(CONFIG.name, writes_for(0))
        assert len(service.results) == 0
        recomputed = service.execute(QUERIES[0])
        assert "result_cache_hit" not in recomputed.stats
        hit = service.execute(QUERIES[0])
        assert hit.stats["result_cache_hit"] == 1.0
        assert hit.rows == recomputed.rows
