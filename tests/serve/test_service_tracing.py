"""The query service as a trace participant.

Every admitted query runs under a resolved :class:`TraceContext` —
explicit options first, then the submitting thread's installed context,
then a service-minted root — and records its outcome (span roots,
fingerprint, slowlog entry, latency exemplar) under that identity.
"""

import pytest

from repro.obs.tracing import new_trace_context, trace_context
from repro.olap import ConsolidationQuery
from repro.olap.options import ExecutionOptions
from repro.serve import QueryService, ServiceConfig

from .conftest import CONFIG

QUERY = ConsolidationQuery.build(
    CONFIG.name, group_by={"dim0": "h01", "dim1": "h11"}
)


@pytest.fixture
def service(engine):
    svc = QueryService(
        engine, ServiceConfig(max_workers=2, slowlog_threshold_s=0.0)
    )
    yield svc
    svc.close()


class TestContextResolution:
    def test_service_mints_when_caller_has_none(self, service):
        service.execute(QUERY)
        entry = service.slowlog.entries()[-1]
        assert entry.trace_id
        record = service.traces.get(entry.trace_id)
        assert record is not None
        assert record.origin == "service"

    def test_explicit_options_context_wins(self, service):
        ctx = new_trace_context(origin="caller")
        service.execute(QUERY, ExecutionOptions(trace=ctx))
        assert service.slowlog.entries()[-1].trace_id == ctx.trace_id

    def test_callers_installed_context_survives_the_pool_hop(self, service):
        ctx = new_trace_context(origin="api")
        with trace_context(ctx):
            service.execute(QUERY)
        assert service.slowlog.entries()[-1].trace_id == ctx.trace_id

    def test_trace_never_changes_the_fingerprint(self, service):
        service.execute(QUERY)
        baseline = service.slowlog.entries()[-1].fingerprint
        service.execute(
            QUERY, ExecutionOptions(trace=new_trace_context())
        )
        assert service.slowlog.entries()[-1].fingerprint == baseline


class TestQueryRecord:
    def test_record_carries_spans_and_fingerprint(self, service):
        service.execute(QUERY)
        entry = service.slowlog.entries()[-1]
        record = service.traces.get(entry.trace_id)
        assert record.name == f"query:{CONFIG.name}"
        assert record.attrs["fingerprint"] == entry.fingerprint
        assert record.attrs["cube"] == CONFIG.name
        assert record.span_count() >= 1
        assert record.roots[0]["name"] == "serve_query"

    def test_failed_query_records_error_status(self, service):
        bad = ConsolidationQuery.build(
            CONFIG.name, group_by={"dim0": "h99"}
        )
        with pytest.raises(Exception):
            service.execute(bad)
        index = service.traces.index()
        assert index and index[0]["status"] not in ("ok", "")

    def test_latency_exemplar_names_a_resident_trace(self, service):
        service.execute(QUERY)
        histogram = service._histograms["serve.query_latency_seconds"]
        exemplar = histogram.exemplar_for_quantile(0.95)
        assert exemplar is not None
        trace_id, value = exemplar
        assert service.traces.get(trace_id) is not None
        assert value > 0

    def test_store_counters_registered(self, service):
        service.execute(QUERY)
        registry = service.engine.db.metrics
        snapshot = registry.snapshot_by_source().get("serve:traces", {})
        assert snapshot.get("traces.stored", 0) >= 1
