"""EXPLAIN through the serving layer: plan cache + slowlog embedding."""

import pytest

from repro.olap import ConsolidationQuery, ExecutionOptions
from repro.olap.query import SelectionPredicate
from repro.serve import QueryService, ServiceConfig

from tests.serve.conftest import CONFIG, fresh_engine


def _q1():
    return ConsolidationQuery.build(
        CONFIG.name,
        group_by={f"dim{d}": f"h{d}1" for d in range(CONFIG.ndim)},
    )


def _q2():
    return ConsolidationQuery.build(
        CONFIG.name,
        group_by={f"dim{d}": f"h{d}1" for d in range(CONFIG.ndim)},
        selections=[
            SelectionPredicate.in_list(f"dim{d}", f"h{d}1", "AA1")
            for d in range(CONFIG.ndim)
        ],
    )


class TestServiceExplain:
    def test_explain_caches_payload_by_fingerprint(self):
        with QueryService(fresh_engine()) as service:
            plan = service.explain(_q1(), ExecutionOptions(backend="array"))
            cached = service.plans.get(plan.fingerprint)
            assert cached is not None
            assert cached["backend"] == "array"
            assert cached["analyzed"] is False
            assert service.stats()["serve.explains"] == 1

    def test_explain_analyze_through_service(self):
        with QueryService(fresh_engine()) as service:
            plan = service.explain(
                _q1(), ExecutionOptions(backend="array"), analyze=True
            )
            assert plan.analyzed
            assert plan.rows > 0
            payload = service.plans.get(plan.fingerprint)
            assert payload["analyzed"] is True
            assert "execution" in payload
            assert service.stats()["serve.explain_analyzes"] == 1

    def test_plan_cache_capacity_comes_from_config(self):
        config = ServiceConfig(plan_cache_size=2)
        with QueryService(fresh_engine(), config) as service:
            assert service.plans.capacity == 2

    def test_plan_cache_entries_gauge_exported(self):
        engine = fresh_engine()
        with QueryService(engine) as service:
            service.explain(_q1())
            gauges = engine.db.metrics.gauge_values()
            assert gauges["serve.plan_cache_entries"] == 1.0


class TestSlowlogPlans:
    def test_slow_miss_embeds_analyzed_plan(self):
        config = ServiceConfig(slowlog_threshold_s=0.0)
        with QueryService(fresh_engine(), config) as service:
            fingerprint_result = service.execute(_q2())
            entries = service.slowlog.entries()
            assert entries
            entry = entries[-1]
            assert entry.explain is not None
            assert entry.explain["analyzed"] is True
            assert entry.explain["backend"] == fingerprint_result.backend
            # actuals landed on at least one node of the embedded plan
            def nodes(node):
                yield node
                for child in node.get("children", ()):
                    yield from nodes(child)
            assert any(
                "actuals" in n and n["actuals"]
                for n in nodes(entry.explain["plan"])
            )
            # and the payload is addressable via the plan cache too
            assert service.plans.get(entry.fingerprint) == entry.explain

    def test_cache_hits_carry_no_plan(self):
        config = ServiceConfig(slowlog_threshold_s=0.0)
        with QueryService(fresh_engine(), config) as service:
            service.execute(_q1())
            service.execute(_q1())  # result-cache hit
            hit_entries = [
                e for e in service.slowlog.entries() if e.cache == "hit"
            ]
            assert hit_entries
            assert all(e.explain is None for e in hit_entries)

    def test_slowlog_plans_can_be_disabled(self):
        config = ServiceConfig(slowlog_threshold_s=0.0, slowlog_plans=False)
        with QueryService(fresh_engine(), config) as service:
            service.execute(_q2())
            assert all(
                e.explain is None for e in service.slowlog.entries()
            )

    def test_unprofiled_service_skips_plans_without_crashing(self):
        config = ServiceConfig(slowlog_threshold_s=0.0, profile_queries=False)
        with QueryService(fresh_engine(), config) as service:
            service.execute(_q2())
            entries = service.slowlog.entries()
            assert entries
            assert all(e.explain is None for e in entries)


class TestRecordShape:
    def test_slowlog_record_to_dict_includes_explain_field(self):
        config = ServiceConfig(slowlog_threshold_s=0.0)
        with QueryService(fresh_engine(), config) as service:
            service.execute(_q2())
            payload = service.slowlog.entries()[-1].to_dict()
        assert "explain" in payload
        assert payload["explain"] is None or payload["explain"]["plan"]

    def test_worst_misestimate_present_on_embedded_plan(self):
        config = ServiceConfig(slowlog_threshold_s=0.0)
        with QueryService(fresh_engine(), config) as service:
            service.execute(_q2())
            entry = service.slowlog.entries()[-1]
        assert entry.explain is not None
        assert entry.explain.get("worst_misestimate", 1.0) >= 1.0
