"""Recovery-aware serving: retries, degraded mode, recover_cube()."""

import pytest

from repro.errors import (
    DegradedError,
    PermanentError,
    RetryExhaustedError,
    TransientError,
)
from repro.olap.engine import OlapEngine
from repro.olap.model import CubeSchema, DimensionDef, MeasureDef
from repro.olap.options import ExecutionOptions
from repro.olap.query import ConsolidationQuery
from repro.relational.catalog import Database
from repro.serve import QueryService, ServiceConfig
from repro.storage.crashpoints import FaultPlan, fault_plan
from repro.storage.faults import FaultyDisk, FaultyWAL

CUBE = "served"
QUERY = ConsolidationQuery.build(CUBE, group_by={"x": "xk", "y": "yk"})
ARRAY_OPTS = ExecutionOptions(backend="array")

# cold=True forces every engine miss back to the (faulty) disk, and the
# tiny backoffs keep the retry loop fast.  Fault plans are thread-local,
# so fault-driven tests call ``service._execute`` on this thread rather
# than going through the worker pool.
FAST_RETRY = ServiceConfig(
    max_workers=2, cold=True,
    retry_attempts=3, retry_base_s=0.0001, retry_cap_s=0.001,
)


def build_engine(tmp_path=None):
    """A small cube on a FaultyDisk (+ file-backed FaultyWAL if a path)."""
    disk = FaultyDisk(page_size=1024)
    wal = None
    if tmp_path is not None:
        wal = FaultyWAL(str(tmp_path / "wal"))
    db = Database(pool_bytes=256 * 1024, disk=disk, wal=wal)
    engine = OlapEngine(db)
    schema = CubeSchema(
        CUBE,
        dimensions=(
            DimensionDef("x", key="xk", levels=(("xg", "str:4"),)),
            DimensionDef("y", key="yk", levels=(("yg", "str:4"),)),
        ),
        measures=(MeasureDef("m", "int64"),),
    )
    engine.load_cube(
        schema,
        {
            "x": [(i, f"g{i % 2}") for i in range(6)],
            "y": [(j, f"h{j % 2}") for j in range(4)],
        },
        [(i, j, 10 * i + j) for i in range(3) for j in range(3)],
        chunk_shape=(3, 2),
        backends=("array", "relational"),
        bitmap_attrs=[],
    )
    return engine


class TestRetries:
    def test_transient_faults_are_retried_to_success(self):
        engine = build_engine()
        with QueryService(engine, FAST_RETRY) as service:
            plan = FaultPlan(transient_read_errors=2)
            with fault_plan(plan):
                result = service._execute(QUERY, ExecutionOptions(backend="array", mode="interpreted"))
            assert result.rows
            stats = service.stats()
            assert stats["serve.transient_faults"] >= 1
            assert stats["serve.retries"] >= 1
            assert not service.is_degraded(CUBE)

    def test_retry_exhaustion_degrades_the_cube(self):
        engine = build_engine()
        with QueryService(engine, FAST_RETRY) as service:
            plan = FaultPlan(transient_read_errors=10_000)
            with fault_plan(plan):
                with pytest.raises(RetryExhaustedError):
                    service._execute(QUERY, ExecutionOptions(backend="array", mode="interpreted"))
            assert service.is_degraded(CUBE)
            assert service.degraded_cubes() == [CUBE]
            assert service.stats()["serve.retries_exhausted"] == 1

    def test_retry_exhausted_error_is_permanent(self):
        assert issubclass(RetryExhaustedError, PermanentError)
        assert issubclass(DegradedError, TransientError)

    def test_backoff_sleeps_without_the_engine_lock(self, monkeypatch):
        # regression: the backoff sleep used to run inside _engine_lock,
        # stalling every queued query on every cube while one cube
        # retried transient faults
        engine = build_engine()
        with QueryService(engine, FAST_RETRY) as service:
            held_during_sleep = []

            def probing_sleep(_delay):
                held_during_sleep.append(service._engine_lock._is_owned())

            monkeypatch.setattr(
                "repro.serve.service.time.sleep", probing_sleep
            )
            with fault_plan(FaultPlan(transient_read_errors=2)):
                result = service._execute(QUERY, ExecutionOptions(backend="array", mode="interpreted"))
            assert result.rows
            assert held_during_sleep  # the retry loop did back off
            assert not any(held_during_sleep)


class TestDegradedMode:
    def degraded_service(self):
        engine = build_engine()
        service = QueryService(engine, FAST_RETRY)
        warm = service.execute(QUERY, ARRAY_OPTS)  # populate the cache
        service._mark_degraded(CUBE)
        return service, warm

    def test_cache_hits_still_served(self):
        service, warm = self.degraded_service()
        with service:
            result = service.execute(QUERY, ARRAY_OPTS)
            assert sorted(result.rows) == sorted(warm.rows)
            assert result.stats.get("result_cache_hit") == 1.0

    def test_misses_rejected_with_degraded_error(self):
        service, _ = self.degraded_service()
        other = ConsolidationQuery.build(CUBE, group_by={"x": "xk"})
        with service:
            with pytest.raises(DegradedError):
                service._execute(other, ExecutionOptions(backend="array", mode="interpreted"))
            assert service.stats()["serve.degraded_rejections"] == 1

    def test_writes_rejected_while_degraded(self):
        service, _ = self.degraded_service()
        with service:
            with pytest.raises(DegradedError):
                service.write_cell(CUBE, (5, 3), (999,))
            with pytest.raises(DegradedError):
                service.append_facts(CUBE, [(5, 3, 999)])
            with pytest.raises(DegradedError):
                service.rebuild_array(CUBE)

    def test_degradation_metrics_exported(self):
        service, _ = self.degraded_service()
        with service:
            gauges = service.engine.db.metrics.gauge_values()
            assert gauges["serve.degraded_cubes"] == 1.0


class TestRecoverCube:
    def test_recover_lifts_degradation(self):
        engine = build_engine()
        with QueryService(engine, FAST_RETRY) as service:
            service._mark_degraded(CUBE)
            service.recover_cube(CUBE)
            assert not service.is_degraded(CUBE)
            assert service.execute(QUERY, ARRAY_OPTS).rows
            assert service.stats()["serve.recoveries"] == 1

    def test_recover_replays_committed_writes(self, tmp_path):
        engine = build_engine(tmp_path)
        with QueryService(engine, FAST_RETRY) as service:
            service.write_cell(CUBE, (5, 3), (777,))
            before = sorted(
                service.execute(QUERY, ARRAY_OPTS).rows
            )
            # a permanent fault degrades the cube...
            service._mark_degraded(CUBE)
            # ...recovery drops every frame and replays the WAL
            replayed = service.recover_cube(CUBE)
            assert replayed > 0
            after = sorted(service.execute(QUERY, ARRAY_OPTS).rows)
            assert after == before
            assert (5, 3, 777) in after

    def test_recover_without_wal_rereads_disk(self):
        engine = build_engine()
        with QueryService(engine, FAST_RETRY) as service:
            service.write_cell(CUBE, (5, 3), (777,))
            service._mark_degraded(CUBE)
            assert service.recover_cube(CUBE) == 0
            rows = sorted(service.execute(QUERY, ARRAY_OPTS).rows)
            assert (5, 3, 777) in rows

    def test_unknown_cube_rejected(self):
        engine = build_engine()
        with QueryService(engine, FAST_RETRY) as service:
            with pytest.raises(Exception):
                service.recover_cube("nope")


class TestEndToEndFaultStory:
    def test_transient_storm_then_recovery(self, tmp_path):
        """The full arc: healthy → faulty → degraded → recovered."""
        engine = build_engine(tmp_path)
        other = ConsolidationQuery.build(CUBE, group_by={"y": "yg"})
        with QueryService(engine, FAST_RETRY) as service:
            healthy = service.execute(QUERY, ARRAY_OPTS)
            with fault_plan(FaultPlan(transient_read_errors=10_000)):
                with pytest.raises(RetryExhaustedError):
                    service._execute(other, ExecutionOptions(backend="array", mode="interpreted"))
                # degraded, but the cached query still answers
                hit = service.execute(QUERY, ARRAY_OPTS)
                assert sorted(hit.rows) == sorted(healthy.rows)
            service.recover_cube(CUBE)
            fresh = service.execute(other, ARRAY_OPTS)
            assert fresh.rows
            assert not service.is_degraded(CUBE)