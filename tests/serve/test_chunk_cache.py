"""The shared decoded-chunk cache over a real OLAP array."""

from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.serve import ChunkCache


def chunks_equal(a, b):
    return np.array_equal(a[0], b[0]) and np.array_equal(a[1], b[1])


@pytest.fixture
def array(shared_engine):
    return shared_engine.cube("served").array


class TestBasics:
    def test_max_chunks_must_be_positive(self):
        with pytest.raises(ValueError):
            ChunkCache(0)

    def test_miss_then_hit_returns_same_chunk(self, array):
        cache = ChunkCache()
        first = cache.get_chunk(array, 0)
        second = cache.get_chunk(array, 0)
        assert second is first
        assert chunks_equal(first, array._read_chunk_direct(0))
        snap = cache.counters.snapshot()
        assert snap["chunk_cache.misses"] == 1
        assert snap["chunk_cache.hits"] == 1

    def test_read_chunk_routes_through_attached_cache(self, array):
        cache = ChunkCache()
        array.chunk_cache = cache
        try:
            array.read_chunk(1)
            array.read_chunk(1)
        finally:
            array.chunk_cache = None
        assert cache.counters.get("chunk_cache.hits") == 1
        assert len(cache) == 1


class TestEviction:
    def test_lru_eviction(self, array):
        cache = ChunkCache(max_chunks=2)
        cache.get_chunk(array, 0)
        cache.get_chunk(array, 1)
        cache.get_chunk(array, 0)  # refresh 0
        cache.get_chunk(array, 2)  # evicts 1
        assert cache.counters.get("chunk_cache.evictions") == 1
        cache.get_chunk(array, 1)  # a fresh miss now
        assert cache.counters.get("chunk_cache.misses") == 4


class TestInvalidation:
    def test_invalidate_one_chunk(self, array):
        cache = ChunkCache()
        cache.get_chunk(array, 0)
        cache.get_chunk(array, 1)
        cache.invalidate_chunk(array.name, 0)
        assert len(cache) == 1
        assert cache.counters.get("chunk_cache.invalidations") == 1
        cache.invalidate_chunk(array.name, 99)  # unknown: no counter
        assert cache.counters.get("chunk_cache.invalidations") == 1

    def test_invalidate_whole_array(self, array):
        cache = ChunkCache()
        for n in range(3):
            cache.get_chunk(array, n)
        cache.invalidate_array(array.name)
        assert len(cache) == 0
        assert cache.counters.get("chunk_cache.invalidations") == 3

    def test_clear_counts_nothing(self, array):
        cache = ChunkCache()
        cache.get_chunk(array, 0)
        cache.clear()
        assert len(cache) == 0
        assert cache.counters.get("chunk_cache.invalidations") == 0


class TestConcurrency:
    def test_concurrent_readers_decode_each_chunk_once(self, array):
        cache = ChunkCache()
        n_chunks = min(4, array.geometry.n_chunks)
        direct = [array._read_chunk_direct(n) for n in range(n_chunks)]

        def reader(_):
            return [cache.get_chunk(array, n) for n in range(n_chunks)]

        with ThreadPoolExecutor(max_workers=8) as pool:
            observed = list(pool.map(reader, range(8)))
        # the I/O lock + double-check means each chunk decodes exactly once
        assert cache.counters.get("chunk_cache.misses") == n_chunks
        for chunks in observed:
            for got, want in zip(chunks, direct):
                assert chunks_equal(got, want)
