"""LRU + generation-validation behavior of the result cache."""

import pytest

from repro.serve import ResultCache


class TestBasics:
    def test_miss_then_hit(self):
        cache = ResultCache()
        assert cache.get("cube", "fp", 0) is None
        cache.put("cube", "fp", 0, [("row",)])
        assert cache.get("cube", "fp", 0) == [("row",)]
        snap = cache.counters.snapshot()
        assert snap["result_cache.misses"] == 1
        assert snap["result_cache.hits"] == 1

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            ResultCache(0)

    def test_clear(self):
        cache = ResultCache()
        cache.put("cube", "fp", 0, 1)
        cache.clear()
        assert len(cache) == 0


class TestLRU:
    def test_evicts_least_recently_used(self):
        cache = ResultCache(capacity=2)
        cache.put("c", "a", 0, 1)
        cache.put("c", "b", 0, 2)
        assert cache.get("c", "a", 0) == 1  # refresh a
        cache.put("c", "x", 0, 3)  # evicts b
        assert cache.keys() == [("c", "a"), ("c", "x")]
        assert cache.get("c", "b", 0) is None
        assert cache.counters.get("result_cache.evictions") == 1

    def test_put_refreshes_recency(self):
        cache = ResultCache(capacity=2)
        cache.put("c", "a", 0, 1)
        cache.put("c", "b", 0, 2)
        cache.put("c", "a", 0, 10)  # overwrite refreshes
        cache.put("c", "x", 0, 3)
        assert cache.get("c", "a", 0) == 10
        assert cache.get("c", "b", 0) is None


class TestGenerations:
    def test_stale_generation_is_a_miss_and_drops(self):
        cache = ResultCache()
        cache.put("cube", "fp", 3, "old")
        assert cache.get("cube", "fp", 4) is None
        snap = cache.counters.snapshot()
        assert snap["result_cache.stale_drops"] == 1
        assert snap["result_cache.misses"] == 1
        # the stale entry is gone, not resurrectable at the old generation
        assert cache.get("cube", "fp", 3) is None
        assert len(cache) == 0

    def test_matching_generation_hits(self):
        cache = ResultCache()
        cache.put("cube", "fp", 7, "value")
        assert cache.get("cube", "fp", 7) == "value"


class TestInvalidation:
    def test_invalidate_exactly_one_cube(self):
        cache = ResultCache()
        cache.put("a", "q1", 0, 1)
        cache.put("a", "q2", 0, 2)
        cache.put("b", "q1", 0, 3)
        dropped = cache.invalidate_cube("a")
        assert dropped == 2
        assert cache.keys() == [("b", "q1")]
        assert cache.get("b", "q1", 0) == 3
        assert cache.counters.get("result_cache.invalidations") == 2

    def test_invalidate_unknown_cube_is_noop(self):
        cache = ResultCache()
        cache.put("a", "q", 0, 1)
        assert cache.invalidate_cube("zzz") == 0
        assert len(cache) == 1
