"""Canonicalization rules of the query fingerprint."""

from repro.olap import ConsolidationQuery, SelectionPredicate
from repro.serve import query_fingerprint


def build(selections=None, group_by=None, **kwargs):
    return ConsolidationQuery.build(
        "cube",
        group_by=group_by or {"dim0": "h01"},
        selections=selections,
        **kwargs,
    )


class TestCanonicalization:
    def test_selection_order_is_ignored(self):
        a = SelectionPredicate.in_list("dim0", "h01", "x")
        b = SelectionPredicate.between("dim1", "d1", 1, 3)
        assert query_fingerprint(build([a, b])) == query_fingerprint(
            build([b, a])
        )

    def test_in_list_value_order_is_ignored(self):
        first = build([SelectionPredicate.in_list("dim0", "h01", "x", "y")])
        second = build([SelectionPredicate.in_list("dim0", "h01", "y", "x")])
        assert query_fingerprint(first) == query_fingerprint(second)

    def test_identical_queries_identical_digests(self):
        assert query_fingerprint(build()) == query_fingerprint(build())

    def test_digest_shape(self):
        digest = query_fingerprint(build())
        assert len(digest) == 32
        int(digest, 16)  # hex


class TestSignificance:
    def test_group_by_order_matters(self):
        # group-by order fixes output column order, so it must not
        # canonicalize away
        a = build(group_by={"dim0": "h01", "dim1": "h11"})
        b = build(group_by={"dim1": "h11", "dim0": "h01"})
        assert query_fingerprint(a) != query_fingerprint(b)

    def test_cube_matters(self):
        a = ConsolidationQuery.build("a", group_by={"dim0": "h01"})
        b = ConsolidationQuery.build("b", group_by={"dim0": "h01"})
        assert query_fingerprint(a) != query_fingerprint(b)

    def test_backend_mode_order_matter(self):
        base = build()
        fp = query_fingerprint(base)
        assert query_fingerprint(base, backend="array") != fp
        assert query_fingerprint(base, mode="interpreted") != fp
        assert query_fingerprint(base, order="row") != fp

    def test_mode_auto_resolves_to_concrete_mode(self):
        # "auto" canonicalizes through resolve_mode before hashing, so
        # a cached auto result and its concrete-mode twin never alias
        base = build()  # sum is vectorizable -> auto == vectorized
        assert query_fingerprint(base, mode="auto") == query_fingerprint(
            base, mode="vectorized"
        )
        stddev = build(aggregate="stddev")  # not vectorizable
        assert query_fingerprint(stddev, mode="auto") == query_fingerprint(
            stddev, mode="interpreted"
        )

    def test_shard_plan_joins_fingerprint_only_when_sharded(self):
        base = build()
        fp = query_fingerprint(base)
        # shards=1 keeps pre-sharding fingerprints bit-identical
        assert query_fingerprint(base, shards=1, executor="process") == fp
        sharded = query_fingerprint(base, shards=4, executor="process")
        assert sharded != fp
        assert sharded != query_fingerprint(base, shards=2, executor="process")
        assert sharded != query_fingerprint(base, shards=4, executor="thread")

    def test_aggregate_and_measures_matter(self):
        assert query_fingerprint(build(aggregate="max")) != query_fingerprint(
            build()
        )
        assert query_fingerprint(
            build(measures=["volume"])
        ) != query_fingerprint(build())

    def test_range_vs_in_list_differ(self):
        between = build([SelectionPredicate.between("dim0", "h01", "a", "a")])
        in_list = build([SelectionPredicate.in_list("dim0", "h01", "a")])
        assert query_fingerprint(between) != query_fingerprint(in_list)

    def test_range_bounds_matter(self):
        a = build([SelectionPredicate.between("dim0", "d0", 1, 3)])
        b = build([SelectionPredicate.between("dim0", "d0", 1, 4)])
        assert query_fingerprint(a) != query_fingerprint(b)
