"""Small cubes + engines shared by the serving-layer tests."""

import pytest

from repro.bench import bench_settings, build_cube_engine
from repro.data import SyntheticCubeConfig

CONFIG = SyntheticCubeConfig(
    name="served",
    dim_sizes=(6, 6, 10),
    n_valid=180,
    chunk_shape=(3, 3, 5),
    fanout1=3,
    fanout2=2,
    seed=11,
)


def fresh_engine(config=CONFIG):
    return build_cube_engine(config, bench_settings("small"))


@pytest.fixture
def engine():
    """A fresh engine per test — write tests mutate cube state."""
    return fresh_engine()


@pytest.fixture(scope="module")
def shared_engine():
    """One engine for the read-only tests in a module."""
    return fresh_engine()
