"""QueryService: caching, admission control, metrics, write invalidation."""

import pytest

from repro.bench import bench_settings, query1_for, query2_for
from repro.data import (
    SyntheticCubeConfig,
    cube_schema_for,
    generate_dimension_rows,
    generate_fact_rows,
)
from repro.errors import AdmissionError
from repro.olap import ExecutionOptions
from repro.serve import QueryService, ServiceConfig, query_fingerprint

from .conftest import CONFIG, fresh_engine

QUERY1 = query1_for(CONFIG)
QUERY2 = query2_for(CONFIG)
ARRAY_OPTS = ExecutionOptions(backend="array")


class TestCaching:
    def test_repeat_execute_hits_the_result_cache(self, engine):
        with QueryService(engine) as service:
            first = service.execute(QUERY1)
            second = service.execute(QUERY1)
        assert "result_cache_hit" not in first.stats
        assert second.stats["result_cache_hit"] == 1.0
        assert second.sim_io_s == 0.0
        assert second.rows == first.rows
        assert second.backend == first.backend

    def test_distinct_queries_cache_separately(self, engine):
        with QueryService(engine) as service:
            service.execute(QUERY1)
            service.execute(QUERY2)
            assert len(service.results) == 2
            stats = service.stats()
        # each cold execute misses twice: once lock-free, once on the
        # double-check under the engine lock
        assert stats["result_cache.misses"] == 4
        assert stats.get("result_cache.hits", 0) == 0

    def test_backend_is_part_of_the_key(self, engine):
        with QueryService(engine) as service:
            service.execute(QUERY1, ARRAY_OPTS)
            result = service.execute(QUERY1, ExecutionOptions(backend="starjoin"))
        assert "result_cache_hit" not in result.stats
        assert result.backend == "starjoin"

    def test_chunk_cache_attached_then_detached(self, engine):
        array = engine.cube(CONFIG.name).array
        service = QueryService(engine)
        assert array.chunk_cache is service.chunks
        service.close()
        assert array.chunk_cache is None

    def test_cold_config_disables_warm_engine_runs(self, engine):
        with QueryService(engine, ServiceConfig(cold=True)) as service:
            result = service.execute(QUERY1, ARRAY_OPTS)
        assert result.sim_io_s > 0


class TestAdmission:
    def test_backpressure_rejects_beyond_max_in_flight(self, engine):
        service = QueryService(
            engine, ServiceConfig(max_workers=1, max_in_flight=1)
        )
        try:
            # park the worker behind the engine lock so the admitted
            # query cannot finish
            service._engine_lock.acquire()
            try:
                future = service.submit(QUERY1)
                with pytest.raises(AdmissionError):
                    service.submit(QUERY2)
                assert service.in_flight == 1
            finally:
                service._engine_lock.release()
            assert future.result().rows
            stats = service.stats()
            assert stats["serve.rejected"] == 1
            assert stats["serve.admitted"] == 1
        finally:
            service.close()
        assert service.in_flight == 0

    def test_closed_service_rejects(self, engine):
        service = QueryService(engine)
        service.close()
        with pytest.raises(AdmissionError):
            service.submit(QUERY1)

    def test_close_is_idempotent(self, engine):
        service = QueryService(engine)
        service.close()
        service.close()


class TestMetrics:
    def test_counters_and_gauges_registered(self, engine):
        with QueryService(engine) as service:
            service.execute(QUERY1)
            service.execute(QUERY1)
            names = engine.db.metrics.source_names()
            assert {"serve:service", "serve:result_cache",
                    "serve:chunk_cache"} <= set(names)
            gauges = engine.db.metrics.gauge_values()
            assert gauges["serve.in_flight"] == 0.0
            assert gauges["serve.result_cache_entries"] == 1.0
            assert gauges["serve.chunk_cache_entries"] >= 1.0
            merged = engine.db.metrics.merged_snapshot()
            assert merged["result_cache.hits"] == 1.0

    def test_counters_survive_engine_query_resets(self, engine):
        # the engine resets registry sources around each query; the
        # serve sources register with a no-op reset and stay cumulative
        with QueryService(engine) as service:
            for _ in range(3):
                service.execute(QUERY1)
            assert service.stats()["result_cache.hits"] == 2

    def test_sources_unregistered_on_close(self, engine):
        service = QueryService(engine)
        service.close()
        assert not any(
            name.startswith("serve:")
            for name in engine.db.metrics.source_names()
        )


class TestWriteInvalidation:
    def put_keys(self, engine):
        return [tuple(row[:3]) for row in generate_fact_rows(CONFIG)]

    def test_write_cell_invalidates_and_recomputes(self, engine):
        with QueryService(engine) as service:
            before = service.execute(QUERY1, ARRAY_OPTS)
            generation = engine.cube_generation(CONFIG.name)
            keys = self.put_keys(engine)[0]
            service.write_cell(CONFIG.name, keys, (10_000,))
            assert engine.cube_generation(CONFIG.name) == generation + 1
            assert len(service.results) == 0
            after = service.execute(QUERY1, ARRAY_OPTS)
        assert "result_cache_hit" not in after.stats
        assert sum(r[-1] for r in after.rows) != sum(r[-1] for r in before.rows)
        assert service.stats()["serve.entries_invalidated"] == 1

    def test_append_facts_invalidates(self, engine):
        with QueryService(engine) as service:
            before = service.execute(QUERY1, ARRAY_OPTS)
            service.append_facts(CONFIG.name, [(0, 0, 0, 500)])
            after = service.execute(QUERY1, ARRAY_OPTS)
        assert sum(r[-1] for r in after.rows) == (
            sum(r[-1] for r in before.rows) + 500
        )

    def test_rebuild_array_invalidates(self, engine):
        with QueryService(engine) as service:
            service.execute(QUERY1, ARRAY_OPTS)
            service.rebuild_array(CONFIG.name)
            assert len(service.results) == 0
            result = service.execute(QUERY1, ARRAY_OPTS)
            assert "result_cache_hit" not in result.stats

    def test_writes_invalidate_exactly_the_written_cube(self, engine):
        other = SyntheticCubeConfig(
            name="other",
            dim_sizes=(4, 4, 6),
            n_valid=40,
            chunk_shape=(2, 2, 3),
            fanout1=2,
            seed=3,
        )
        engine.load_cube(
            cube_schema_for(other),
            generate_dimension_rows(other),
            generate_fact_rows(other),
            chunk_shape=other.chunk_shape,
        )
        other_query = query1_for(other)
        with QueryService(engine) as service:
            service.execute(QUERY1)
            service.execute(other_query)
            assert len(service.results) == 2
            service.write_cell(other.name, (0, 0, 0), (1,))
            keys = service.results.keys()
            assert keys == [(CONFIG.name, query_fingerprint(QUERY1))]
            # the untouched cube still hits
            hit = service.execute(QUERY1)
        assert hit.stats["result_cache_hit"] == 1.0

    def test_stale_generation_read_is_lazy_dropped(self, engine):
        # bypass the listener to prove the generation check alone is
        # enough to prevent a stale read
        with QueryService(engine) as service:
            service.execute(QUERY1)
            fingerprint = query_fingerprint(QUERY1)
            generation = engine.cube_generation(CONFIG.name)
            assert (
                service.results.get(CONFIG.name, fingerprint, generation + 1)
                is None
            )


def test_run_warm_leaves_no_dangling_chunk_cache():
    # regression: run_warm's service must detach its chunk cache on
    # close, or the next service accounts into an orphaned cache
    from repro.bench import run_warm

    engine = fresh_engine()
    run_warm(engine, QUERY1, backend="array", repeats=1)
    assert engine.cube(CONFIG.name).array.chunk_cache is None
    with QueryService(engine) as service:
        service.execute(QUERY1, ARRAY_OPTS)
        assert service.stats()["chunk_cache.misses"] > 0
