"""Slow-query capture through the serving stack.

The ring-buffer mechanics are unit-tested directly; the integration
tests drive real queries through a :class:`QueryService` with the
threshold tuned so a deliberately slowed query crosses it, then assert
the captured profile carries the full span tree (engine phases under
the ``query`` span), the planner's choice and reason, the cache
disposition, and the counter deltas.
"""

import json
import time

import pytest

from repro.obs import ObservabilityServer, SlowQueryLog
from repro.olap.query import ConsolidationQuery
from repro.serve import QueryService, ServiceConfig

from .conftest import CONFIG


def _query1():
    return ConsolidationQuery.build(
        CONFIG.name,
        group_by={f"dim{d}": f"h{d}1" for d in range(CONFIG.ndim)},
    )


class TestRingBuffer:
    def test_threshold_gates_capture(self):
        log = SlowQueryLog(threshold_s=0.1)
        assert log.record("fp", "cube", "array", latency_s=0.05) is None
        assert log.record("fp", "cube", "array", latency_s=0.15) is not None
        assert len(log) == 1
        assert log.captured == 1

    def test_ring_keeps_newest(self):
        log = SlowQueryLog(capacity=3, threshold_s=0.0)
        for i in range(5):
            log.record(f"fp{i}", "cube", "array", latency_s=float(i + 1))
        entries = log.entries()
        assert [e.fingerprint for e in entries] == ["fp2", "fp3", "fp4"]
        assert log.captured == 5  # total survives eviction

    def test_find_returns_most_recent_for_fingerprint(self):
        log = SlowQueryLog(threshold_s=0.0)
        log.record("fp", "cube", "array", latency_s=1.0)
        log.record("fp", "cube", "bitmap", latency_s=2.0)
        found = log.find("fp")
        assert found is not None and found.backend == "bitmap"
        assert log.find("missing") is None

    def test_to_json_round_trips(self):
        log = SlowQueryLog(threshold_s=0.0)
        log.record("fp", "cube", "array", latency_s=1.0, cache="hit")
        payload = json.loads(log.to_json())
        assert payload[0]["fingerprint"] == "fp"
        assert payload[0]["cache"] == "hit"

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            SlowQueryLog(capacity=0)


class TestServiceCapture:
    def test_slow_query_captured_with_full_span_tree(self, engine):
        """A deliberately slowed query lands in the log with its profile."""
        config = ServiceConfig(
            max_workers=2, slowlog_threshold_s=0.05, slowlog_capacity=8
        )
        with QueryService(engine, config) as service:
            # make the first (cache-miss) execution deliberately slow
            original = engine.query

            def slowed(*args, **kwargs):
                time.sleep(0.06)
                return original(*args, **kwargs)

            engine.query = slowed
            try:
                service.execute(_query1())
            finally:
                engine.query = original

            assert len(service.slowlog) == 1
            entry = service.slowlog.entries()[0]
            assert entry.latency_s >= 0.05
            assert entry.cube == CONFIG.name
            assert entry.cache == "miss"
            assert entry.plan["backend"] == entry.backend
            assert entry.plan["reason"] == "no-selections"
            assert entry.plan["requested"] == "auto"
            # full span tree: serve_query wraps the engine's query span,
            # which wraps the consolidation phases
            (root,) = entry.trace
            assert root["name"] == "serve_query"
            (query_span,) = root["children"]
            assert query_span["name"] == "query"
            assert query_span["attrs"]["planner_reason"] == "no-selections"
            phases = [child["name"] for child in query_span["children"]]
            assert "consolidate" in phases
            # counter deltas rode along with the profile
            assert entry.counters.get("chunk_cache.misses", 0) > 0
            assert service.counters.get("serve.slow_queries") == 1

    def test_fast_queries_not_captured(self, engine):
        config = ServiceConfig(max_workers=2, slowlog_threshold_s=30.0)
        with QueryService(engine, config) as service:
            service.execute(_query1())
            assert len(service.slowlog) == 0
            assert service.counters.get("serve.slow_queries") == 0

    def test_cache_hit_capture_notes_disposition(self, engine):
        config = ServiceConfig(max_workers=2, slowlog_threshold_s=0.0)
        with QueryService(engine, config) as service:
            service.execute(_query1())
            service.execute(_query1())
            entries = service.slowlog.entries()
            assert [e.cache for e in entries] == ["miss", "hit"]
            # both executions of the same query share a fingerprint
            assert entries[0].fingerprint == entries[1].fingerprint

    def test_profile_capture_can_be_disabled(self, engine):
        config = ServiceConfig(
            max_workers=2, slowlog_threshold_s=0.0, profile_queries=False
        )
        with QueryService(engine, config) as service:
            service.execute(_query1())
            entry = service.slowlog.entries()[0]
            # still logged, but without the span-tree profile
            assert entry.trace == []

    def test_slowlog_entries_gauge_exported(self, engine):
        config = ServiceConfig(max_workers=2, slowlog_threshold_s=0.0)
        with QueryService(engine, config) as service:
            service.execute(_query1())
            gauges = engine.db.metrics.gauge_values()
            assert gauges["serve.slowlog_entries"] == 1.0

    def test_live_trace_route_serves_capture(self, engine):
        """End to end: slow query -> /slowlog and /trace/<fingerprint>."""
        import urllib.request

        config = ServiceConfig(max_workers=2, slowlog_threshold_s=0.0)
        with QueryService(engine, config) as service:
            service.execute(_query1())
            fingerprint = service.slowlog.entries()[0].fingerprint
            with ObservabilityServer(
                engine.db.metrics, service=service
            ) as server:
                with urllib.request.urlopen(
                    f"{server.url}/trace/{fingerprint}", timeout=5
                ) as response:
                    payload = json.loads(response.read().decode("utf-8"))
        assert payload["fingerprint"] == fingerprint
        assert payload["trace"][0]["name"] == "serve_query"
