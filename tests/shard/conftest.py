"""Shared synthetic cube for the shard-execution tests.

The cube has 8 chunks (8x6x10 cells in 4x3x5 chunks -> a 2x2x2 chunk
grid), deliberately *not* divisible by every shard count the oracle
matrix uses (7 in particular), so remainder assignment is always
exercised.
"""

import pytest

from repro.data import (
    SyntheticCubeConfig,
    cube_schema_for,
    generate_dimension_rows,
    generate_fact_rows,
)
from repro.olap import OlapEngine

CONFIG = SyntheticCubeConfig(
    name="cube",
    dim_sizes=(8, 6, 10),
    n_valid=200,
    chunk_shape=(4, 3, 5),
    fanout1=3,
    fanout2=2,
    seed=7,
)


@pytest.fixture(scope="package")
def loaded():
    engine = OlapEngine(page_size=1024, pool_bytes=1024 * 1024)
    schema = cube_schema_for(CONFIG)
    fact_rows = generate_fact_rows(CONFIG)
    engine.load_cube(
        schema,
        generate_dimension_rows(CONFIG),
        fact_rows,
        chunk_shape=CONFIG.chunk_shape,
        fact_btrees=True,
    )
    yield engine, schema, fact_rows
    engine.close_shards()


@pytest.fixture
def engine(loaded):
    return loaded[0]


@pytest.fixture
def fact_rows(loaded):
    return loaded[2]
