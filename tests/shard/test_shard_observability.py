"""Scatter/gather visibility: EXPLAIN nodes, service metrics, /metrics."""

import pytest

from repro.obs.exporters import prometheus_text
from repro.olap import ConsolidationQuery, ExecutionOptions
from repro.serve import QueryService, ServiceConfig, query_fingerprint


def query():
    return ConsolidationQuery.build(
        "cube", group_by={"dim0": "h01", "dim1": "h11"}
    )


class TestExplainSharded:
    def test_plan_grows_scatter_gather_nodes(self, engine):
        plan = engine.explain(
            query(),
            ExecutionOptions(backend="array", shards=2, executor="thread"),
        )
        ops = [n.op for n in plan.root.walk()]
        assert "array.shard_consolidate" in ops
        assert "shard.scatter" in ops
        assert "shard.scan[0]" in ops
        assert "shard.scan[1]" in ops
        assert "shard.gather" in ops
        scatter = next(n for n in plan.root.walk() if n.op == "shard.scatter")
        assert scatter.estimates["chunks_read"] > 0
        assert scatter.estimates["cells_scanned"] > 0

    def test_unsharded_plan_keeps_classic_shape(self, engine):
        plan = engine.explain(query(), ExecutionOptions(backend="array"))
        ops = [n.op for n in plan.root.walk()]
        assert "shard.scatter" not in ops

    def test_analyze_binds_per_shard_actuals(self, engine):
        plan = engine.explain(
            query(),
            ExecutionOptions(backend="array", shards=2, executor="thread"),
            analyze=True,
        )
        assert plan.analyzed
        scans = [
            n for n in plan.root.walk() if n.op.startswith("shard.scan[")
        ]
        assert len(scans) == 2
        for node in scans:
            assert node.actuals.get("chunks_read", 0) > 0
            assert node.actuals.get("cells_scanned", 0) > 0
        # every chunk is scanned exactly once across the shards
        n_chunks = len(engine._cubes["cube"].array._entries())
        assert sum(n.actuals["chunks_read"] for n in scans) == n_chunks

    def test_fingerprint_carries_shard_plan(self, engine):
        sharded = engine.explain(
            query(), ExecutionOptions(backend="array", shards=2)
        )
        classic = engine.explain(query(), ExecutionOptions(backend="array"))
        assert sharded.fingerprint != classic.fingerprint
        assert classic.fingerprint == query_fingerprint(
            query(), backend="array"
        )


class TestShardedService:
    @pytest.fixture()
    def service(self, engine):
        config = ServiceConfig(shards=2, executor="thread", max_workers=2)
        with QueryService(engine, config) as svc:
            yield svc

    def test_misses_route_through_coordinator(self, engine, service):
        bag = engine.shard_coordinator.counters
        before = bag.snapshot().get("shard.queries", 0)
        result = service.query(query())
        assert result.rows == engine.query(
            query(), backend="array", mode="interpreted", shards=1
        ).rows
        assert bag.snapshot()["shard.queries"] == before + 1
        # hit: served from the result cache, no second scatter
        service.query(query())
        assert bag.snapshot()["shard.queries"] == before + 1

    def test_cache_keyed_by_shard_plan(self, service):
        fp_sharded = query_fingerprint(query(), shards=2, executor="thread")
        fp_classic = query_fingerprint(query())
        service.query(query())
        assert fp_sharded != fp_classic

    def test_query_accepts_execution_options(self, service):
        opts = ExecutionOptions(shards=4, executor="local")
        result = service.query(query(), opts)
        assert result.rows

    def test_legacy_keywords_raise(self, service):
        with pytest.raises(TypeError, match="ExecutionOptions"):
            service.query(query(), shards=1)

    def test_shard_counters_reach_metrics_endpoint(self, engine, service):
        service.query(query())
        text = prometheus_text(engine.db.metrics)
        assert 'source="engine:shard"' in text
        assert "shard_queries_total" in text or "shard.queries" in text
