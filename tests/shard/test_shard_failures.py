"""Shard-level failure handling: re-scatter, exhaustion, partial mode."""

import pytest

from repro.errors import ShardScatterError, TransientError
from repro.olap import ConsolidationQuery


def query():
    return ConsolidationQuery.build("cube", group_by={"dim0": "h01"})


def oracle(engine):
    return engine.query(
        query(), backend="array", mode="interpreted", shards=1
    ).rows


class TestRescatter:
    @pytest.mark.parametrize("executor", ["local", "thread", "process"])
    def test_worker_crash_is_rescattered(self, engine, executor):
        coord = engine.shard_coordinator
        before = coord.counters.snapshot().get("shard.retries", 0)
        coord.inject_fail_once(1)
        result = engine.query(
            query(), backend="array", shards=4, executor=executor
        )
        assert result.rows == oracle(engine)
        assert coord.counters.snapshot()["shard.retries"] == before + 1


class TestExhaustion:
    def test_exhausted_retries_raise_scatter_error(self, engine, monkeypatch):
        coord = engine.shard_coordinator
        monkeypatch.setattr(coord, "MAX_RETRY_ROUNDS", 0)
        coord.inject_fail_once(0)
        with pytest.raises(ShardScatterError):
            engine.query(query(), backend="array", shards=4, executor="local")

    def test_scatter_error_is_transient(self):
        # the serving layer's retry loop must treat a lost scatter as
        # retryable: worker pools respawn lazily, the next run can pass
        assert issubclass(ShardScatterError, TransientError)

    def test_allow_partial_degrades_instead_of_raising(
        self, engine, monkeypatch
    ):
        coord = engine.shard_coordinator
        monkeypatch.setattr(coord, "MAX_RETRY_ROUNDS", 0)
        before = coord.counters.snapshot().get("shard.partial_results", 0)
        coord.inject_fail_once(0)
        result = engine.query(
            query(),
            backend="array",
            shards=4,
            executor="local",
            allow_partial=True,
        )
        # shard 0's chunk range is missing: a strict subset of the
        # oracle's aggregate, flagged in both counter surfaces
        assert result.stats["shard_partial"] == 1
        assert coord.counters.snapshot()["shard.partial_results"] == before + 1
        full = {row[:-1]: row[-1] for row in oracle(engine)}
        partial = {row[:-1]: row[-1] for row in result.rows}
        assert set(partial) <= set(full)
        assert partial != full
