"""Trace context across the shard scatter: one contiguous tree.

Worker threads and processes run their scans under their own tracers;
the coordinator re-parents each shipped span tree under its live
``shard_scan_<i>`` span.  These tests pin the contract end to end: the
serialized (pickle-free) tree round-trips, re-parenting produces one
contiguous tree whose counter deltas decompose exactly, and the
zero-valued-delta fold regression stays fixed.
"""

from types import SimpleNamespace

import pytest

from repro.obs.exporters import span_from_dict, span_to_dict
from repro.obs.tracer import Tracer, thread_tracing
from repro.obs.tracing import new_trace_context, trace_context
from repro.olap import ConsolidationQuery
from repro.util.stats import Counters

QUERY = ConsolidationQuery.build(
    "cube", group_by={"dim0": "h01", "dim1": "h11"}
)

class RecordingCounters(Counters):
    """Counters that remember every ``add`` call.

    ``Counters.snapshot()`` drops zero values, so asserting on a
    snapshot cannot distinguish "folded a measured zero" from "dropped
    the key" — the exact regression under test.  Observing the add()
    call path can.
    """

    def __init__(self):
        super().__init__()
        self.calls: dict[str, list] = {}

    def add(self, name, amount=1.0):
        self.calls.setdefault(name, []).append(amount)
        super().add(name, amount)


def traced_scatter(engine, shards, executor):
    """Run one sharded query traced; returns the shard_scatter span."""
    ctx = new_trace_context(origin="test")
    tracer = Tracer(registry=engine.db.metrics)
    with trace_context(ctx), thread_tracing(tracer):
        engine.query(
            QUERY, backend="array", shards=shards, executor=executor
        )
    root = tracer.roots[0]
    scatter = root.find("shard_scatter")
    assert scatter is not None
    return ctx, scatter


def scan_spans(scatter):
    return [
        child
        for child in scatter.children
        if child.name.startswith("shard_scan_")
    ]


def worker_spans(scatter):
    return [
        span for span in scatter.walk() if span.name == "shard_worker"
    ]


class TestContiguousTree:
    @pytest.mark.parametrize("executor", ["thread", "process"])
    def test_every_scan_carries_its_worker_subtree(self, engine, executor):
        _, scatter = traced_scatter(engine, 4, executor)
        scans = scan_spans(scatter)
        assert len(scans) == 4
        for scan in scans:
            workers = [
                c for c in scan.children if c.name == "shard_worker"
            ]
            assert len(workers) == 1
            assert workers[0].attrs["shard"] == scan.attrs["shard"]

    def test_worker_spans_carry_the_propagated_context(self, engine):
        ctx, scatter = traced_scatter(engine, 2, "process")
        assert scatter.attrs["trace_id"] == ctx.trace_id
        for worker in worker_spans(scatter):
            assert worker.attrs["trace_id"] == ctx.trace_id
            # each task got its own child context under the scatter's
            assert worker.attrs["parent_span_id"] is not None
        span_ids = {w.attrs["span_id"] for w in worker_spans(scatter)}
        assert len(span_ids) == 2

    @pytest.mark.parametrize("executor", ["thread", "process"])
    def test_scatter_deltas_decompose_over_workers(self, engine, executor):
        _, scatter = traced_scatter(engine, 4, executor)
        scans, workers = scan_spans(scatter), worker_spans(scatter)
        for key in ("chunks_read", "cells_scanned"):
            scan_sum = sum(s.io.get(key, 0.0) for s in scans)
            worker_sum = sum(w.io.get(key, 0.0) for w in workers)
            assert scan_sum == pytest.approx(scatter.io.get(key, 0.0))
            assert worker_sum == pytest.approx(scan_sum)
            assert scan_sum > 0

    def test_shipped_tree_round_trips_through_dict_form(self, engine):
        _, scatter = traced_scatter(engine, 2, "process")
        worker = worker_spans(scatter)[0]
        clone = span_from_dict(span_to_dict(worker))
        assert clone.name == worker.name
        assert clone.attrs == worker.attrs
        assert clone.io == worker.io
        assert clone.duration_s == worker.duration_s
        assert len(clone.children) == len(worker.children)

    def test_untraced_scatter_ships_no_worker_trees(self, engine):
        # no installed context and no live tracer: workers must skip
        # their local tracer entirely (result carries no span tree)
        tracer = Tracer(registry=engine.db.metrics)
        with thread_tracing(tracer):
            # a live tracer but no context still mints a scatter-local
            # root so EXPLAIN ANALYZE keeps its contiguous tree
            engine.query(QUERY, backend="array", shards=2, executor="process")
        scatter = tracer.roots[0].find("shard_scatter")
        assert len(worker_spans(scatter)) == 2


class TestZeroDeltaFold:
    def _run_fold(self, engine, deltas):
        """Drive _bind_shard_actuals with one fake shard result."""
        coordinator = engine.shard_coordinator
        recorded = RecordingCounters()
        ctx = SimpleNamespace(counters=recorded)
        plan = SimpleNamespace(
            executor="process",
            assignments=[
                SimpleNamespace(shard_no=0, start=0, stop=4, n_chunks=4)
            ],
        )
        partials = {
            0: {"counters": dict(deltas), "scan_s": 0.001, "trace": None}
        }
        coordinator._bind_shard_actuals(ctx, plan, partials)
        return recorded

    def test_zero_valued_deltas_fold_on_key_presence(self, engine):
        # regression: a measured zero ("this shard read nothing") used
        # to be dropped by `deltas.get(key)` truthiness.  Counters
        # snapshots drop zero values, so observe the add() path itself.
        recorded = self._run_fold(
            engine,
            {"chunks_read": 0, "cells_scanned": 0, "chunks_skipped": 4},
        )
        calls = recorded.calls
        assert calls["chunks_read"] == [0]
        assert calls["cells_scanned"] == [0]
        assert calls["chunks_skipped"] == [4]

    def test_absent_keys_stay_absent(self, engine):
        recorded = self._run_fold(engine, {"chunks_read": 2})
        assert "cells_scanned" not in recorded.calls
        assert recorded.calls["chunks_read"] == [2]
