"""The unified ExecutionOptions surface (loose keywords are gone)."""

import warnings

import pytest

from repro.core import ConsolidationSpec, consolidate_partitioned
from repro.errors import QueryError
from repro.olap import ConsolidationQuery, ExecutionOptions, resolve_mode


def query():
    return ConsolidationQuery.build("cube", group_by={"dim0": "h01"})


class TestValidation:
    def test_defaults(self):
        opts = ExecutionOptions()
        assert opts.backend == "auto"
        assert opts.mode == "auto"
        assert opts.executor == "local"
        assert opts.shards == 1
        assert opts.allow_partial is False

    @pytest.mark.parametrize(
        "bad",
        [
            {"mode": "fast"},
            {"executor": "fiber"},
            {"shards": 0},
            {"order": "spiral"},
        ],
    )
    def test_bad_values_rejected(self, bad):
        with pytest.raises(QueryError):
            ExecutionOptions(**bad)

    def test_merged_with_revalidates(self):
        opts = ExecutionOptions(shards=2)
        assert opts.merged_with(executor="process").shards == 2
        with pytest.raises(QueryError):
            opts.merged_with(shards=-1)


class TestResolveMode:
    def test_vectorizable_aggregates_go_vectorized(self):
        for agg in ("sum", "count", "min", "max", "avg"):
            assert resolve_mode("auto", agg, "array") == "vectorized"

    def test_non_vectorizable_falls_back_interpreted(self):
        assert resolve_mode("auto", "stddev", "array") == "interpreted"
        assert resolve_mode("auto", "var", "auto") == "interpreted"

    def test_non_array_backend_is_interpreted(self):
        assert resolve_mode("auto", "sum", "starjoin") == "interpreted"

    def test_explicit_mode_passes_through(self):
        assert resolve_mode("interpreted", "sum", "array") == "interpreted"
        assert resolve_mode("vectorized", "stddev", "array") == "vectorized"


class TestEngineSurface:
    def test_run_accepts_options(self, engine):
        opts = ExecutionOptions(backend="array", shards=2, executor="thread")
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # the new surface must not warn
            result = engine.run(query(), opts)
        assert result.rows == engine.query(query(), backend="array").rows

    def test_run_legacy_keywords_raise_pointing_at_options(self, engine):
        with pytest.raises(TypeError, match="ExecutionOptions"):
            engine.run(query(), backend="array", mode="interpreted")

    def test_explain_legacy_keywords_raise(self, engine):
        with pytest.raises(TypeError, match="ExecutionOptions"):
            engine.explain(query(), backend="array")

    def test_run_unknown_keyword_raises(self, engine):
        with pytest.raises(TypeError, match="unexpected keyword"):
            engine.run(query(), executor_name="process")

    def test_query_attached_options_are_used(self, engine):
        attached = ConsolidationQuery.build(
            "cube",
            group_by={"dim0": "h01"},
            options=ExecutionOptions(backend="array", mode="interpreted"),
        )
        result = engine.run(attached)
        assert result.mode == "interpreted"

    def test_builder_options_chain(self, engine):
        result = (
            ConsolidationQuery.builder("cube")
            .group_by("dim0", "h01")
            .options(backend="array", shards=2, executor="thread")
            .run(engine)
        )
        assert result.rows == engine.query(query(), backend="array").rows

    def test_auto_mode_resolves_per_aggregate(self, engine):
        assert engine.query(query(), backend="array").mode == "vectorized"
        stddev = ConsolidationQuery.build(
            "cube", group_by={"dim0": "h01"}, aggregate="stddev"
        )
        assert engine.query(stddev, backend="array").mode == "interpreted"


class TestParallelShim:
    def test_serial_alias_removed(self, engine):
        state = engine._cubes["cube"]
        specs = [ConsolidationSpec.level("h01")] + [
            ConsolidationSpec.drop()
        ] * 2
        with pytest.raises(QueryError, match="unknown executor"):
            consolidate_partitioned(state.array, specs, 2, executor="serial")
