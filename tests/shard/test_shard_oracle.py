"""Sharded consolidation equals the single-process interpreted oracle.

The property the coordinator must preserve (§6: the accumulators are
mergeable sketches): for every shard count, executor, and execution
mode, the scatter/gather result is row-identical to the classic
single-shard interpreted scan.
"""

import pytest

from repro.olap import ConsolidationQuery, SelectionPredicate

from tests.shard.conftest import CONFIG

SHARD_COUNTS = (1, 2, 4, 7)
EXECUTORS = ("local", "thread", "process")
MODES = ("interpreted", "vectorized")


def plain_query():
    return ConsolidationQuery.build(
        "cube", group_by={"dim0": "h01", "dim1": "h11"}
    )


def selective_query():
    return ConsolidationQuery.build(
        "cube",
        group_by={"dim0": "h01", "dim2": "h21"},
        selections=[
            SelectionPredicate.in_list("dim1", "h11", "AA0", "AA1"),
            SelectionPredicate.between("dim2", "d2", 1, 8),
        ],
    )


def oracle(engine, query):
    return engine.query(
        query, backend="array", mode="interpreted", shards=1
    ).rows


class TestOracleMatrix:
    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    @pytest.mark.parametrize("executor", EXECUTORS)
    @pytest.mark.parametrize("mode", MODES)
    def test_plain_consolidation_matches(self, engine, shards, executor, mode):
        expected = oracle(engine, plain_query())
        result = engine.query(
            plain_query(),
            backend="array",
            mode=mode,
            shards=shards,
            executor=executor,
        )
        assert result.rows == expected
        if shards > 1:
            assert result.stats.get("shards") == shards

    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    @pytest.mark.parametrize("executor", EXECUTORS)
    def test_selection_pushdown_matches(self, engine, shards, executor):
        expected = oracle(engine, selective_query())
        result = engine.query(
            selective_query(),
            backend="array",
            mode="vectorized",
            shards=shards,
            executor=executor,
        )
        assert result.rows == expected

    def test_remainder_assignment_covers_every_chunk(self, engine):
        # 8 chunks over 7 shards: one shard gets the remainder, none
        # may be dropped or double-counted
        state = engine._cubes["cube"]
        n_chunks = len(state.array._entries())
        assert n_chunks % 7 != 0
        plan = engine.shard_coordinator.plan(
            state.array, 7, "local", "cube", state.generation
        )
        covered = sorted(
            c
            for a in plan.assignments
            for c in range(a.chunk_range.start, a.chunk_range.stop)
        )
        assert covered == list(range(n_chunks))

    def test_matches_raw_fact_oracle(self, engine, fact_rows):
        # one independent check against the raw fact rows, not just
        # the engine's own single-shard path
        result = engine.query(
            plain_query(),
            backend="array",
            mode="vectorized",
            shards=4,
            executor="thread",
        )
        groups = {}
        for row in fact_rows:
            key = (
                f"AA{row[0] % CONFIG.fanout1}",
                f"AA{row[1] % CONFIG.fanout1}",
            )
            groups[key] = groups.get(key, 0) + row[-1]
        assert sorted(result.rows) == sorted(
            k + (v,) for k, v in groups.items()
        )

    def test_per_shard_metrics_flow_into_registry(self, engine):
        bag = engine.shard_coordinator.counters
        before = bag.snapshot().get("shard.queries", 0)
        engine.query(
            plain_query(), backend="array", shards=2, executor="thread"
        )
        after = bag.snapshot()
        assert after["shard.queries"] == before + 1
        assert after["shard.scatter_ms"] >= 0
        assert after["shard.merge_ms"] >= 0
