"""Tests for the command-line interface."""

import pytest

from repro.cli import EXPERIMENTS, build_parser, main


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fly"])

    def test_bench_requires_known_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bench", "fig99"])

    def test_scale_choices_enforced(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["demo", "--scale", "galactic"])

    def test_experiment_list_covers_benchmark_modules(self):
        import os

        bench_dir = os.path.join(
            os.path.dirname(__file__), "..", "benchmarks"
        )
        modules = {
            f[len("test_"):-len(".py")]
            for f in os.listdir(bench_dir)
            if f.startswith("test_") and f.endswith(".py")
        }
        for experiment in EXPERIMENTS:
            assert any(m.startswith(experiment) for m in modules), experiment


class TestCommands:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "repro" in out
        assert "fig4" in out

    def test_demo_small(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "small")
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "Query 1" in out and "Query 3" in out
        assert "planner would pick" in out

    def test_sql_small(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "small")
        statement = (
            "select sum(volume), dim0.h01 from fact, dim0 "
            "where fact.d0 = dim0.d0 group by h01"
        )
        assert main(["sql", statement, "--limit", "3"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("AA")

    def test_storage_small(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "small")
        assert main(["storage"]) == 0
        out = capsys.readouterr().out
        assert "fact_file" in out
        assert "array_total" in out
