"""Tests for the command-line interface."""

import pytest

from repro.cli import EXPERIMENTS, build_parser, main


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fly"])

    def test_bench_requires_known_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bench", "fig99"])

    def test_scale_choices_enforced(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["demo", "--scale", "galactic"])

    def test_experiment_list_covers_benchmark_modules(self):
        import os

        bench_dir = os.path.join(
            os.path.dirname(__file__), "..", "benchmarks"
        )
        modules = {
            f[len("test_"):-len(".py")]
            for f in os.listdir(bench_dir)
            if f.startswith("test_") and f.endswith(".py")
        }
        for experiment in EXPERIMENTS:
            assert any(m.startswith(experiment) for m in modules), experiment


class TestCommands:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "repro" in out
        assert "fig4" in out

    def test_demo_small(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "small")
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "Query 1" in out and "Query 3" in out
        assert "planner would pick" in out

    def test_demo_small_json(self, capsys, monkeypatch):
        import json

        monkeypatch.setenv("REPRO_SCALE", "small")
        assert main(["demo", "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["scale"] == "small"
        assert len(report["queries"]) == 3
        first = report["queries"][0]
        assert first["planner_pick"]
        assert all(b["cost_s"] > 0 for b in first["backends"])

    def test_trace_small(self, capsys, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_SCALE", "small")
        trace_file = tmp_path / "trace.json"
        prom_file = tmp_path / "metrics.prom"
        assert main(
            [
                "trace", "q2", "--backend", "array",
                "--json", str(trace_file), "--prom", str(prom_file),
            ]
        ) == 0
        out = capsys.readouterr().out
        assert out.startswith("query")
        assert "probe_chunks" in out
        from repro.obs import trace_from_json

        spans = trace_from_json(trace_file.read_text())
        assert spans[0].name == "query"
        assert spans[0].leaf_io_totals() == spans[0].io
        assert "repro_pages_read_total" in prom_file.read_text()

    def test_sql_small(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "small")
        statement = (
            "select sum(volume), dim0.h01 from fact, dim0 "
            "where fact.d0 = dim0.d0 group by h01"
        )
        assert main(["sql", statement, "--limit", "3"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("AA")

    def test_storage_small(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "small")
        assert main(["storage"]) == 0
        out = capsys.readouterr().out
        assert "fact_file" in out
        assert "array_total" in out


class TestExplainCommand:
    def test_explain_renders_a_text_tree(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "small")
        assert main(["explain", "q1", "--backend", "array"]) == 0
        out = capsys.readouterr().out
        assert "EXPLAIN" in out
        assert "array.scan_chunks" in out
        assert "est{" in out
        assert "act{" not in out  # estimate-only

    def test_explain_analyze_shows_actuals(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "small")
        assert main(
            ["explain", "q2", "--backend", "array", "--analyze"]
        ) == 0
        out = capsys.readouterr().out
        assert "EXPLAIN ANALYZE" in out
        assert "act{" in out
        assert "worst=x" in out

    def test_explain_json_validates_against_checked_in_schema(
        self, capsys, monkeypatch
    ):
        import json
        import os

        from repro.util.jsonschema_lite import validate

        monkeypatch.setenv("REPRO_SCALE", "small")
        schema_path = os.path.join(
            os.path.dirname(__file__),
            "..", "benchmarks", "schemas", "explain_plan.schema.json",
        )
        assert main(
            ["explain", "q1", "--json", "--validate", schema_path]
        ) == 0
        captured = capsys.readouterr()
        payload = json.loads(captured.out)
        assert payload["backend"]
        assert payload["plan"]["op"].endswith(".query")
        with open(schema_path, encoding="utf-8") as handle:
            validate(payload, json.load(handle))
        assert "validates" in captured.err

    def test_explain_validate_failure_is_nonzero(
        self, capsys, monkeypatch, tmp_path
    ):
        monkeypatch.setenv("REPRO_SCALE", "small")
        bad_schema = tmp_path / "strict.json"
        bad_schema.write_text(
            '{"type": "object", "required": ["no_such_key"]}'
        )
        assert main(
            ["explain", "q1", "--json", "--validate", str(bad_schema)]
        ) == 1
        assert "FAIL" in capsys.readouterr().err


class TestBenchDiffCommand:
    def _write(self, path, p95, scale="small"):
        import json

        path.write_text(json.dumps({
            "scale": scale,
            "threads": 2,
            "queries": 16,
            "concurrent": {
                "p50_s": 0.001, "p95_s": p95, "p99_s": 0.05,
                "hit_rate": 0.5,
            },
        }))

    def test_pass_and_fail_exit_codes(self, capsys, tmp_path):
        base, cand = tmp_path / "a.json", tmp_path / "b.json"
        self._write(base, p95=0.010)
        self._write(cand, p95=0.011)
        assert main(["bench-diff", str(base), str(cand)]) == 0
        assert "ok" in capsys.readouterr().out
        self._write(cand, p95=0.100)
        assert main(["bench-diff", str(base), str(cand)]) == 1
        assert "regressed" in capsys.readouterr().out

    def test_custom_limit_flag(self, tmp_path):
        base, cand = tmp_path / "a.json", tmp_path / "b.json"
        self._write(base, p95=0.010)
        self._write(cand, p95=0.012)
        assert main(
            ["bench-diff", str(base), str(cand),
             "--max-p95-regress", "1.1"]
        ) == 1

    def test_unreadable_artifact_fails_cleanly(self, capsys, tmp_path):
        base = tmp_path / "a.json"
        self._write(base, p95=0.010)
        assert main(
            ["bench-diff", str(base), str(tmp_path / "missing.json")]
        ) == 1
        assert "FAIL" in capsys.readouterr().err

    def test_one_path_defaults_baseline_to_repo_root_artifact(
        self, capsys, tmp_path, monkeypatch
    ):
        monkeypatch.chdir(tmp_path)
        self._write(tmp_path / "BENCH_serving.json", p95=0.010)
        cand = tmp_path / "candidate.json"
        self._write(cand, p95=0.011)
        assert main(["bench-diff", str(cand)]) == 0
        captured = capsys.readouterr()
        assert "baseline defaulted to BENCH_serving.json" in captured.err
        assert "ok" in captured.out

    def test_zero_paths_fails(self, capsys):
        assert main(["bench-diff"]) == 1
        assert "needs at least a candidate" in capsys.readouterr().err


class TestBenchTrendCommand:
    def _write(self, path, p95, scale="small", mtime=None):
        import json
        import os

        path.write_text(json.dumps({
            "scale": scale,
            "concurrent": {
                "p50_s": p95 / 2, "p95_s": p95, "p99_s": p95 * 1.2,
                "hit_rate": 0.5,
            },
        }))
        if mtime is not None:
            os.utime(path, (mtime, mtime))

    def test_empty_archive_passes(self, capsys, tmp_path):
        assert main(["bench-trend", "--results-dir", str(tmp_path)]) == 0
        assert "no archived artifacts" in capsys.readouterr().out

    def test_steady_trajectory_passes(self, capsys, tmp_path):
        self._write(tmp_path / "BENCH_serving.small.a.json", 0.010, mtime=100)
        self._write(tmp_path / "BENCH_serving.small.b.json", 0.011, mtime=200)
        assert main(["bench-trend", "--results-dir", str(tmp_path)]) == 0
        assert "ok   trend:" in capsys.readouterr().out

    def test_regression_fails(self, tmp_path):
        self._write(tmp_path / "BENCH_serving.small.a.json", 0.010, mtime=100)
        self._write(tmp_path / "BENCH_serving.small.b.json", 0.100, mtime=200)
        assert main(["bench-trend", "--results-dir", str(tmp_path)]) == 1

    def test_json_mode_emits_grouped_payload(self, capsys, tmp_path):
        import json

        self._write(tmp_path / "BENCH_serving.small.a.json", 0.010, mtime=100)
        assert main(
            ["bench-trend", "--results-dir", str(tmp_path), "--json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert list(payload) == ["small"]


class TestAlertLintCommand:
    def test_shipped_rule_file_lints(self, capsys, monkeypatch):
        import os

        monkeypatch.chdir(os.path.join(os.path.dirname(__file__), ".."))
        assert main(["alert-lint"]) == 0
        out = capsys.readouterr().out
        assert "7 rules validate" in out
        assert "serve-latency-p99" in out

    def test_schema_violation_fails(self, capsys, tmp_path, monkeypatch):
        import json
        import os

        bad = tmp_path / "rules.json"
        bad.write_text(json.dumps([{"name": "x", "kind": "telepathy"}]))
        monkeypatch.chdir(os.path.join(os.path.dirname(__file__), ".."))
        assert main(["alert-lint", "--rules", str(bad)]) == 1
        assert "schema validation" in capsys.readouterr().err

    def test_semantic_violation_fails(self, capsys, tmp_path, monkeypatch):
        import json
        import os

        # schema-shaped but semantically wrong: a latency rule with no
        # ceiling passes the (oneOf-free) schema, SloRule rejects it
        bad = tmp_path / "rules.json"
        bad.write_text(json.dumps([
            {"name": "x", "kind": "latency_quantile_ceiling", "metric": "m"}
        ]))
        monkeypatch.chdir(os.path.join(os.path.dirname(__file__), ".."))
        assert main(["alert-lint", "--rules", str(bad)]) == 1
        assert "needs" in capsys.readouterr().err


class TestTemporalParsers:
    def test_soak_defaults(self):
        args = build_parser().parse_args(["soak"])
        assert args.seconds == 10.0
        assert args.seed == 0
        assert args.clients == 4
        assert args.inject_breach is False
        assert args.output == "BENCH_soak.json"
        assert args.validate is None

    def test_soak_flags(self):
        args = build_parser().parse_args(
            ["soak", "--seconds", "8", "--inject-breach", "--scale", "small",
             "--validate", "schema.json"]
        )
        assert args.seconds == 8.0
        assert args.inject_breach is True
        assert args.validate == "schema.json"

    def test_watch_requires_url(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["watch"])

    def test_watch_defaults(self):
        args = build_parser().parse_args(["watch", "--url", "http://x"])
        assert args.interval == 2.0
        assert args.iterations == 0
        assert args.seconds == 60.0
        assert args.q == 0.95
        assert args.plain is False
