"""Tests for bitmap join indices."""

import pytest

from repro.errors import BitmapError
from repro.index import BitmapIndex
from repro.storage import BufferPool, FileManager, SimulatedDisk


def make_fm(page_size=512):
    disk = SimulatedDisk(page_size=page_size)
    return FileManager(BufferPool(disk, capacity_bytes=64 * page_size))


class TestBuild:
    def test_bitmaps_partition_positions(self):
        fm = make_fm()
        values = ["a", "b", "a", "c", "b", "a"]
        index = BitmapIndex.build(fm, "h01", len(values), values)
        assert index.values() == ["a", "b", "c"]
        assert index.bitmap_for("a").set_positions().tolist() == [0, 2, 5]
        assert index.bitmap_for("b").set_positions().tolist() == [1, 4]
        assert index.bitmap_for("c").set_positions().tolist() == [3]

    def test_every_position_in_exactly_one_bitmap(self):
        fm = make_fm()
        values = [i % 7 for i in range(200)]
        index = BitmapIndex.build(fm, "x", 200, values)
        union = index.bitmap_for_any(index.values())
        assert union.count() == 200
        total = sum(index.bitmap_for(v).count() for v in index.values())
        assert total == 200

    def test_length_mismatch_rejected(self):
        fm = make_fm()
        with pytest.raises(BitmapError):
            BitmapIndex.build(fm, "x", 10, ["a"] * 9)

    def test_negative_length_rejected(self):
        fm = make_fm()
        with pytest.raises(BitmapError):
            BitmapIndex(fm, "x", -1)


class TestLookup:
    def test_unknown_value_is_empty_bitmap(self):
        fm = make_fm()
        index = BitmapIndex.build(fm, "x", 3, ["a", "a", "a"])
        assert index.bitmap_for("zzz").count() == 0

    def test_bitmap_for_any_ors_values(self):
        fm = make_fm()
        values = ["a", "b", "c", "a", "b", "c"]
        index = BitmapIndex.build(fm, "x", 6, values)
        merged = index.bitmap_for_any(["a", "c"])
        assert merged.set_positions().tolist() == [0, 2, 3, 5]

    def test_selection_and_pattern(self):
        # the §4.5 algorithm: AND bitmaps across dimensions
        fm = make_fm()
        dim1 = BitmapIndex.build(fm, "d1", 8, ["x", "x", "y", "y"] * 2)
        dim2 = BitmapIndex.build(fm, "d2", 8, ["p", "q"] * 4)
        result = dim1.bitmap_for("x") & dim2.bitmap_for("q")
        assert result.set_positions().tolist() == [1, 5]

    def test_int_values_supported(self):
        fm = make_fm()
        index = BitmapIndex.build(fm, "x", 4, [10, 20, 10, 30])
        assert index.bitmap_for(10).set_positions().tolist() == [0, 2]


class TestPersistence:
    def test_survives_cold_restart(self):
        fm = make_fm()
        index = BitmapIndex.build(fm, "h01", 5, ["a", "b", "a", "b", "a"])
        fm.pool.clear()
        reopened = BitmapIndex(fm, "h01", 5)
        assert reopened.bitmap_for("a").set_positions().tolist() == [0, 2, 4]

    def test_footprint_scales_with_distinct_values(self):
        fm = make_fm()
        small = BitmapIndex.build(fm, "two", 1000, [i % 2 for i in range(1000)])
        big = BitmapIndex.build(fm, "ten", 1000, [i % 10 for i in range(1000)])
        assert big.footprint_bytes() > small.footprint_bytes()


class TestRangeLookup:
    def test_bitmap_for_range_inclusive(self):
        fm = make_fm()
        values = [i % 5 for i in range(50)]
        index = BitmapIndex.build(fm, "x", 50, values)
        bits = index.bitmap_for_range(1, 3)
        expected = [i for i in range(50) if 1 <= i % 5 <= 3]
        assert bits.set_positions().tolist() == expected

    def test_open_bounds(self):
        fm = make_fm()
        values = [i % 4 for i in range(20)]
        index = BitmapIndex.build(fm, "x", 20, values)
        assert index.bitmap_for_range(None, 1).count() == 10
        assert index.bitmap_for_range(2, None).count() == 10
        assert index.bitmap_for_range(None, None).count() == 20

    def test_empty_range(self):
        fm = make_fm()
        index = BitmapIndex.build(fm, "x", 6, ["a"] * 6)
        assert index.bitmap_for_range("b", "c").count() == 0

    def test_string_range(self):
        fm = make_fm()
        values = ["AA0", "AA1", "AA2", "AA1"]
        index = BitmapIndex.build(fm, "x", 4, values)
        bits = index.bitmap_for_range("AA1", "AA2")
        assert bits.set_positions().tolist() == [1, 2, 3]
