"""Unit and property tests for the paged B+tree."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import BTreeError
from repro.index import BTree
from repro.storage import BufferPool, FileManager, SimulatedDisk


def make_tree(page_size=256, frames=64):
    disk = SimulatedDisk(page_size=page_size)
    pool = BufferPool(disk, capacity_bytes=frames * page_size)
    fm = FileManager(pool)
    return BTree.create(fm, "idx"), fm


class TestBasics:
    def test_empty_tree(self):
        tree, _ = make_tree()
        assert len(tree) == 0
        assert tree.search(5) == []
        assert 5 not in tree
        assert list(tree.items()) == []

    def test_single_insert(self):
        tree, _ = make_tree()
        tree.insert(10, 100)
        assert tree.search(10) == [100]
        assert 10 in tree
        assert len(tree) == 1

    def test_many_int_inserts_split_nodes(self):
        tree, _ = make_tree()
        for i in range(500):
            tree.insert(i, i * 2)
        assert tree.height() > 1
        tree.validate()
        for i in range(500):
            assert tree.search(i) == [i * 2]

    def test_reverse_order_inserts(self):
        tree, _ = make_tree()
        for i in reversed(range(300)):
            tree.insert(i, i)
        tree.validate()
        assert [k for k, _ in tree.items()] == list(range(300))

    def test_random_order_inserts(self):
        tree, _ = make_tree()
        keys = list(range(400))
        random.Random(7).shuffle(keys)
        for k in keys:
            tree.insert(k, -k)
        tree.validate()
        assert tree.search(399) == [-399]
        assert tree.search(0) == [0]

    def test_string_keys(self):
        tree, _ = make_tree()
        words = [f"city-{i:04d}" for i in range(200)]
        for i, w in enumerate(words):
            tree.insert(w, i)
        tree.validate()
        assert tree.search("city-0123") == [123]
        assert [k for k, _ in tree.items()] == sorted(words)

    def test_mixed_key_types_rejected(self):
        tree, _ = make_tree()
        tree.insert(1, 1)
        with pytest.raises(BTreeError):
            tree.insert("one", 2)

    def test_bool_and_float_keys_rejected(self):
        tree, _ = make_tree()
        with pytest.raises(BTreeError):
            tree.insert(True, 1)
        with pytest.raises(BTreeError):
            tree.insert(1.5, 1)


class TestDuplicates:
    def test_duplicate_values_returned_ascending(self):
        tree, _ = make_tree()
        for v in (30, 10, 20):
            tree.insert(5, v)
        assert tree.search(5) == [10, 20, 30]

    def test_duplicates_across_leaf_splits(self):
        tree, _ = make_tree()
        for v in range(100):
            tree.insert(42, v)
        for i in range(1000, 1050):
            tree.insert(i, 0)
        tree.validate()
        assert tree.search(42) == list(range(100))

    def test_index_list_usage_pattern(self):
        # the §4.2 join-index pattern: attribute value -> array index list
        tree, _ = make_tree()
        for array_index in range(60):
            tree.insert(f"AA{array_index % 3}", array_index)
        assert tree.search("AA0") == list(range(0, 60, 3))


class TestRangeSearch:
    def test_closed_range(self):
        tree, _ = make_tree()
        for i in range(100):
            tree.insert(i, i)
        assert [k for k, _ in tree.range_search(10, 20)] == list(range(10, 21))

    def test_open_low(self):
        tree, _ = make_tree()
        for i in range(50):
            tree.insert(i, i)
        assert [k for k, _ in tree.range_search(high=5)] == list(range(6))

    def test_open_high(self):
        tree, _ = make_tree()
        for i in range(50):
            tree.insert(i, i)
        assert [k for k, _ in tree.range_search(low=45)] == list(range(45, 50))

    def test_empty_range(self):
        tree, _ = make_tree()
        for i in range(0, 100, 10):
            tree.insert(i, i)
        assert list(tree.range_search(41, 49)) == []


class TestDelete:
    def test_delete_existing(self):
        tree, _ = make_tree()
        tree.insert(1, 10)
        tree.insert(1, 20)
        assert tree.delete(1, 10)
        assert tree.search(1) == [20]
        assert len(tree) == 1

    def test_delete_missing_value(self):
        tree, _ = make_tree()
        tree.insert(1, 10)
        assert not tree.delete(1, 99)
        assert not tree.delete(2, 10)
        assert len(tree) == 1

    def test_delete_from_empty(self):
        tree, _ = make_tree()
        assert not tree.delete(1, 1)

    def test_delete_then_validate(self):
        tree, _ = make_tree()
        for i in range(200):
            tree.insert(i, i)
        for i in range(0, 200, 2):
            assert tree.delete(i, i)
        tree.validate()
        assert [k for k, _ in tree.items()] == list(range(1, 200, 2))


class TestBulkLoad:
    def test_matches_incremental_build(self):
        import random

        rng = random.Random(11)
        items = [(rng.randint(0, 200), i) for i in range(800)]
        bulk, fm = make_tree()
        bulk = BTree.bulk_load(fm, "bulk", items)
        bulk.validate()
        incremental, _ = make_tree()
        for key, value in items:
            incremental.insert(key, value)
        assert list(bulk.items()) == list(incremental.items())

    def test_unsorted_input_accepted(self):
        _, fm = make_tree()
        tree = BTree.bulk_load(fm, "bulk", [(3, 0), (1, 1), (2, 2)])
        assert [k for k, _ in tree.items()] == [1, 2, 3]

    def test_empty_input(self):
        _, fm = make_tree()
        tree = BTree.bulk_load(fm, "bulk", [])
        assert len(tree) == 0
        assert tree.search(1) == []

    def test_string_keys(self):
        _, fm = make_tree()
        items = [(f"k{i:05d}", i) for i in range(500)]
        tree = BTree.bulk_load(fm, "bulk", items)
        tree.validate()
        assert tree.search("k00321") == [321]
        assert tree.height() > 1

    def test_duplicates_preserved(self):
        _, fm = make_tree()
        tree = BTree.bulk_load(fm, "bulk", [(5, v) for v in range(300)])
        tree.validate()
        assert tree.search(5) == list(range(300))

    def test_inserts_after_bulk_load(self):
        _, fm = make_tree()
        tree = BTree.bulk_load(fm, "bulk", [(i, i) for i in range(400)])
        for i in range(400, 450):
            tree.insert(i, i)
        tree.insert(-5, 99)
        tree.validate()
        assert tree.search(-5) == [99]
        assert tree.search(449) == [449]

    def test_deletes_after_bulk_load(self):
        _, fm = make_tree()
        tree = BTree.bulk_load(fm, "bulk", [(i, i) for i in range(200)])
        for i in range(0, 200, 4):
            assert tree.delete(i, i)
        tree.validate()
        assert len(tree) == 150


class TestPersistence:
    def test_tree_survives_cold_restart(self):
        tree, fm = make_tree()
        for i in range(150):
            tree.insert(i, i + 1000)
        fm.pool.clear()
        reopened = BTree.open(fm, "idx")
        assert len(reopened) == 150
        assert reopened.search(77) == [1077]
        reopened.validate()

    def test_footprint_reported(self):
        tree, _ = make_tree()
        for i in range(100):
            tree.insert(i, i)
        assert tree.size_bytes() > 0


@settings(max_examples=40, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.integers(min_value=-1000, max_value=1000),
            st.integers(min_value=0, max_value=10_000),
        ),
        max_size=300,
    )
)
def test_matches_sorted_reference(entries):
    tree, _ = make_tree()
    for key, value in entries:
        tree.insert(key, value)
    tree.validate()
    assert list(tree.items()) == sorted(entries)
    for key in {k for k, _ in entries[:20]}:
        assert tree.search(key) == sorted(v for k, v in entries if k == key)


@settings(max_examples=25, deadline=None)
@given(
    st.lists(
        st.tuples(st.integers(0, 50), st.integers(0, 50)),
        min_size=1,
        max_size=150,
    ),
    st.data(),
)
def test_delete_matches_reference(entries, data):
    tree, _ = make_tree()
    reference = []
    for key, value in entries:
        tree.insert(key, value)
        reference.append((key, value))
    doomed = data.draw(
        st.lists(st.sampled_from(reference), max_size=len(reference), unique=True)
    )
    for key, value in doomed:
        assert tree.delete(key, value)
        reference.remove((key, value))
    tree.validate()
    assert list(tree.items()) == sorted(reference)
