"""Tests for the shared aggregate functions."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.aggregates import get_aggregate
from repro.errors import QueryError


def fold(name, values):
    agg = get_aggregate(name)
    state = agg.initial()
    for v in values:
        state = agg.add(state, v)
    return agg.result(state)


class TestFolds:
    def test_sum(self):
        assert fold("sum", [1, 2, 3]) == 6

    def test_sum_empty(self):
        assert fold("sum", []) == 0

    def test_count(self):
        assert fold("count", [5, 5, 5, 5]) == 4

    def test_min_max(self):
        assert fold("min", [3, -1, 7]) == -1
        assert fold("max", [3, -1, 7]) == 7

    def test_min_empty_is_none(self):
        assert fold("min", []) is None
        assert fold("max", []) is None

    def test_avg(self):
        assert fold("avg", [1, 2, 3, 4]) == 2.5

    def test_avg_empty_is_none(self):
        assert fold("avg", []) is None

    def test_variance_matches_numpy(self):
        import numpy as np

        values = [3, 7, 7, 19, 2, 2, 5]
        assert fold("var", values) == pytest.approx(np.var(values))
        assert fold("stddev", values) == pytest.approx(np.std(values))

    def test_variance_of_constant_is_zero(self):
        assert fold("var", [4, 4, 4]) == 0.0

    def test_variance_empty_is_none(self):
        assert fold("var", []) is None
        assert fold("stddev", []) is None

    def test_case_insensitive_lookup(self):
        assert get_aggregate("SUM").name == "sum"

    def test_unknown_rejected(self):
        with pytest.raises(QueryError):
            get_aggregate("median")


@given(
    st.sampled_from(["sum", "count", "min", "max", "avg", "var", "stddev"]),
    st.lists(st.integers(-100, 100), min_size=1),
    st.data(),
)
def test_merge_equals_sequential_fold(name, values, data):
    agg = get_aggregate(name)
    cut = data.draw(st.integers(min_value=0, max_value=len(values)))
    left = agg.initial()
    for v in values[:cut]:
        left = agg.add(left, v)
    right = agg.initial()
    for v in values[cut:]:
        right = agg.add(right, v)
    merged = agg.result(agg.merge(left, right))
    sequential = fold(name, values)
    if isinstance(sequential, float):
        assert merged == pytest.approx(sequential)
    else:
        assert merged == sequential
