"""Tests for extent-based page files and the file manager."""

import pytest

from repro.errors import FileError
from repro.storage import FileManager, PageFile


class TestPageFile:
    def test_new_file_is_empty(self, fm):
        pfile = fm.create("t")
        assert pfile.npages == 0

    def test_append_and_map_pages(self, fm):
        pfile = fm.create("t", extent_pages=4)
        logicals = [pfile.append_page() for _ in range(10)]
        assert logicals == list(range(10))
        # pages within an extent are physically contiguous
        base = pfile.page_id(0)
        assert [pfile.page_id(i) for i in range(4)] == [base + i for i in range(4)]

    def test_extents_allocated_lazily(self, fm):
        pfile = fm.create("t", extent_pages=4)
        pfile.append_page()
        one_extent = pfile.size_bytes()
        for _ in range(4):
            pfile.append_page()
        assert pfile.size_bytes() == one_extent + 4 * fm.pool.disk.page_size

    def test_page_id_out_of_range(self, fm):
        pfile = fm.create("t")
        with pytest.raises(FileError):
            pfile.page_id(0)

    def test_data_roundtrip_through_pool(self, fm):
        pfile = fm.create("t")
        pfile.append_page()
        buf = pfile.read(0)
        buf[:5] = b"hello"
        pfile.mark_dirty(0)
        fm.pool.clear()
        assert bytes(fm.open("t").read(0)[:5]) == b"hello"

    def test_write_full_image(self, fm):
        pfile = fm.create("t")
        pfile.append_page()
        image = bytes([3]) * fm.pool.disk.page_size
        pfile.write(0, image)
        assert bytes(pfile.read(0)) == image

    def test_metadata_roundtrip(self, fm):
        pfile = fm.create("t")
        pfile.set_meta(b"record_size=20")
        assert pfile.get_meta() == b"record_size=20"

    def test_metadata_survives_reopen(self, fm):
        pfile = fm.create("t")
        pfile.set_meta(b"xyz")
        fm.pool.clear()
        assert fm.open("t").get_meta() == b"xyz"

    def test_metadata_too_large(self, fm):
        pfile = fm.create("t")
        with pytest.raises(FileError):
            pfile.set_meta(b"x" * 4096)

    def test_ensure_pages(self, fm):
        pfile = fm.create("t")
        pfile.ensure_pages(7)
        assert pfile.npages == 7
        pfile.ensure_pages(3)
        assert pfile.npages == 7

    def test_bad_extent_size(self, pool):
        with pytest.raises(FileError):
            PageFile.create(pool, extent_pages=0)

    def test_header_survives_cold_reopen(self, fm):
        pfile = fm.create("t", extent_pages=2)
        for _ in range(5):
            pfile.append_page()
        mapping = [pfile.page_id(i) for i in range(5)]
        fm.pool.clear()
        reopened = fm.open("t")
        assert reopened.npages == 5
        assert [reopened.page_id(i) for i in range(5)] == mapping


class TestFileManager:
    def test_duplicate_name_rejected(self, fm):
        fm.create("t")
        with pytest.raises(FileError):
            fm.create("t")

    def test_open_missing_rejected(self, fm):
        with pytest.raises(FileError):
            fm.open("ghost")

    def test_names_sorted(self, fm):
        fm.create("zeta")
        fm.create("alpha")
        assert fm.names() == ["alpha", "zeta"]

    def test_exists(self, fm):
        assert not fm.exists("t")
        fm.create("t")
        assert fm.exists("t")

    def test_catalog_survives_cold_restart(self, fm):
        fm.create("a").set_meta(b"A")
        fm.create("b").set_meta(b"B")
        fm.pool.clear()
        reloaded = FileManager(fm.pool, master_page_id=fm.master_page_id)
        assert reloaded.names() == ["a", "b"]
        assert reloaded.open("a").get_meta() == b"A"
