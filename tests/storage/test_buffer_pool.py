"""Tests for the LRU buffer pool, pinning, and WAL integration."""

import pytest

from repro.errors import BufferPoolError, PageError
from repro.storage import BufferPool, SimulatedDisk, WriteAheadLog, recover


def make_pool(frames=4, page_size=256, wal=None):
    disk = SimulatedDisk(page_size=page_size)
    return disk, BufferPool(disk, capacity_bytes=frames * page_size, wal=wal)


class TestCaching:
    def test_hit_avoids_disk_read(self):
        disk, pool = make_pool()
        pid = pool.new_page()
        pool.flush_all()
        disk.reset_stats()
        pool.get(pid)
        pool.get(pid)
        assert disk.counters.get("pages_read") == 0
        assert pool.counters.get("pool_hits") == 2

    def test_miss_reads_from_disk(self):
        disk, pool = make_pool()
        pid = pool.new_page()
        pool.clear()
        disk.reset_stats()
        pool.get(pid)
        assert disk.counters.get("pages_read") == 1
        assert pool.counters.get("pool_misses") == 1

    def test_lru_eviction_order(self):
        disk, pool = make_pool(frames=2)
        a = pool.new_page()
        b = pool.new_page()
        pool.flush_all()
        pool.get(a)  # a is now most recent
        pool.new_page()  # evicts b
        assert pool.resident_pages() == 2
        disk.reset_stats()
        pool.get(a)
        assert disk.counters.get("pages_read") == 0  # a stayed resident
        pool.get(b)
        assert disk.counters.get("pages_read") == 1  # b was evicted

    def test_dirty_eviction_writes_back(self):
        disk, pool = make_pool(frames=1)
        a = pool.new_page()
        buf = pool.get(a)
        buf[0] = 0xAB
        pool.mark_dirty(a)
        pool.new_page()  # forces eviction of a
        assert disk.read_page(a)[0] == 0xAB

    def test_write_replaces_image(self):
        disk, pool = make_pool()
        pid = pool.new_page()
        image = bytes([7]) * disk.page_size
        pool.write(pid, image)
        pool.flush_all()
        assert disk.read_page(pid) == image

    def test_write_wrong_size_rejected(self):
        _, pool = make_pool()
        pid = pool.new_page()
        with pytest.raises(PageError):
            pool.write(pid, b"nope")

    def test_mark_dirty_nonresident_rejected(self):
        disk, pool = make_pool()
        pid = pool.new_page()
        pool.clear()
        with pytest.raises(BufferPoolError):
            pool.mark_dirty(pid)


class TestPinning:
    def test_pinned_page_survives_pressure(self):
        disk, pool = make_pool(frames=2)
        a = pool.new_page()
        pool.flush_all()
        pool.pin(a)
        pool.new_page()
        pool.new_page()  # must evict the other page, not a
        disk.reset_stats()
        pool.get(a)
        assert disk.counters.get("pages_read") == 0
        pool.unpin(a)

    def test_all_pinned_raises(self):
        _, pool = make_pool(frames=1)
        a = pool.new_page()
        pool.pin(a)
        with pytest.raises(BufferPoolError):
            pool.new_page()

    def test_unpin_without_pin_raises(self):
        _, pool = make_pool()
        pid = pool.new_page()
        with pytest.raises(BufferPoolError):
            pool.unpin(pid)

    def test_clear_with_pins_raises(self):
        _, pool = make_pool()
        pid = pool.new_page()
        pool.pin(pid)
        with pytest.raises(BufferPoolError):
            pool.clear()


class TestColdReset:
    def test_clear_flushes_and_drops(self):
        disk, pool = make_pool()
        pid = pool.new_page()
        buf = pool.get(pid)
        buf[1] = 0x42
        pool.mark_dirty(pid)
        pool.clear()
        assert pool.resident_pages() == 0
        assert disk.read_page(pid)[1] == 0x42

    def test_reset_stats_returns_pre_reset_snapshot(self):
        disk, pool = make_pool()
        pid = pool.new_page()
        pool.clear()
        pool.get(pid)
        pool.get(pid)
        before = pool.reset_stats()
        assert before["pool_misses"] == 1
        assert before["pool_hits"] == 1
        assert pool.counters.get("pool_hits") == 0

    def test_hit_rate(self):
        disk, pool = make_pool()
        pid = pool.new_page()
        pool.clear()
        pool.reset_stats()
        assert pool.hit_rate() == 0.0  # no accesses yet
        pool.get(pid)  # miss
        pool.get(pid)  # hit
        pool.get(pid)  # hit
        assert pool.hit_rate() == pytest.approx(2 / 3)


class TestWALIntegration:
    def test_crash_before_commit_loses_writes(self):
        wal = WriteAheadLog()
        disk, pool = make_pool(wal=wal)
        pid = pool.new_page()
        buf = pool.get(pid)
        buf[0] = 0x11
        pool.mark_dirty(pid)
        pool.crash()
        recover(disk, wal)
        assert disk.read_page(pid)[0] == 0

    def test_crash_after_commit_recovers(self):
        wal = WriteAheadLog()
        disk, pool = make_pool(wal=wal)
        pid = pool.new_page()
        buf = pool.get(pid)
        buf[0] = 0x11
        pool.mark_dirty(pid)
        pool.commit()
        pool.crash()
        assert disk.read_page(pid)[0] == 0  # never flushed...
        recover(disk, wal)
        assert disk.read_page(pid)[0] == 0x11  # ...but WAL replays it

    def test_no_steal_blocks_eviction_of_unlogged_dirty(self):
        wal = WriteAheadLog()
        _, pool = make_pool(frames=1, wal=wal)
        pid = pool.new_page()
        buf = pool.get(pid)
        buf[0] = 1
        pool.mark_dirty(pid)
        with pytest.raises(BufferPoolError):
            pool.new_page()
        pool.commit()
        pool.new_page()  # after commit the frame is evictable

    def test_recover_is_idempotent(self):
        wal = WriteAheadLog()
        disk, pool = make_pool(wal=wal)
        pid = pool.new_page()
        pool.get(pid)[0] = 9
        pool.mark_dirty(pid)
        pool.commit()
        pool.crash()
        assert recover(disk, wal) == 1
        assert recover(disk, wal) == 1
        assert disk.read_page(pid)[0] == 9
