"""Tests for the table-level lock manager."""

import pytest

from repro.errors import StorageError
from repro.storage import LockManager
from repro.storage.locks import EXCLUSIVE, SHARED


class TestLockManager:
    def test_shared_locks_coexist(self):
        lm = LockManager()
        lm.acquire("sales", SHARED, "t1")
        lm.acquire("sales", SHARED, "t2")
        assert lm.mode("sales", "t1") == SHARED
        assert lm.mode("sales", "t2") == SHARED

    def test_exclusive_conflicts_with_shared(self):
        lm = LockManager()
        lm.acquire("sales", SHARED, "t1")
        with pytest.raises(StorageError):
            lm.acquire("sales", EXCLUSIVE, "t2")

    def test_shared_conflicts_with_exclusive(self):
        lm = LockManager()
        lm.acquire("sales", EXCLUSIVE, "t1")
        with pytest.raises(StorageError):
            lm.acquire("sales", SHARED, "t2")

    def test_upgrade_when_sole_holder(self):
        lm = LockManager()
        lm.acquire("sales", SHARED, "t1")
        lm.acquire("sales", EXCLUSIVE, "t1")
        assert lm.mode("sales", "t1") == EXCLUSIVE

    def test_upgrade_blocked_by_other_reader(self):
        lm = LockManager()
        lm.acquire("sales", SHARED, "t1")
        lm.acquire("sales", SHARED, "t2")
        with pytest.raises(StorageError):
            lm.acquire("sales", EXCLUSIVE, "t1")

    def test_reacquire_is_idempotent(self):
        lm = LockManager()
        lm.acquire("sales", SHARED, "t1")
        lm.acquire("sales", SHARED, "t1")
        lm.release("sales", "t1")
        assert lm.mode("sales", "t1") is None

    def test_exclusive_holder_may_ask_for_shared(self):
        lm = LockManager()
        lm.acquire("sales", EXCLUSIVE, "t1")
        lm.acquire("sales", SHARED, "t1")  # no-op, keeps X
        assert lm.mode("sales", "t1") == EXCLUSIVE

    def test_release_unheld_raises(self):
        lm = LockManager()
        with pytest.raises(StorageError):
            lm.release("sales", "t1")

    def test_release_all(self):
        lm = LockManager()
        lm.acquire("a", SHARED, "t1")
        lm.acquire("b", EXCLUSIVE, "t1")
        lm.acquire("a", SHARED, "t2")
        lm.release_all("t1")
        assert lm.mode("a", "t1") is None
        assert lm.mode("b", "t1") is None
        assert lm.mode("a", "t2") == SHARED

    def test_unknown_mode_rejected(self):
        lm = LockManager()
        with pytest.raises(StorageError):
            lm.acquire("a", "Z", "t1")

    def test_context_manager(self):
        lm = LockManager()
        with lm.locked("sales", EXCLUSIVE, "t1"):
            assert lm.mode("sales", "t1") == EXCLUSIVE
        assert lm.mode("sales", "t1") is None
