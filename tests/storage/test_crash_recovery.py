"""Crash-recovery property tests: the acceptance harness for PR 3.

For every registered crash point, crash a write workload mid-flight,
recover from the checkpoint image + WAL, and assert:

- **atomicity**: the surviving transactions form a prefix ``0..k-1``
  (no partial transaction is visible),
- **durability**: ``k`` covers every transaction acknowledged before
  the crash,
- **consistency**: array and star-join query results equal a serial
  no-crash oracle with exactly those ``k`` transactions applied,
- a torn final WAL record (``wal.torn_sync``) is detected and
  discarded, never replayed.
"""

import pytest

from repro.bench.faultcheck import (
    N_TXNS,
    TORN_TAIL_POINTS,
    run_crash_matrix,
    run_crash_scenario,
)
from repro.storage.crashpoints import (
    register_crash_point,
    registered_crash_points,
)

SEED = 1998  # the paper's year; any seed must pass


@pytest.mark.parametrize("crash_at", registered_crash_points())
def test_crash_point_upholds_recovery_property(crash_at, tmp_path):
    outcome = run_crash_scenario(crash_at, SEED, str(tmp_path))
    assert outcome.crashed, f"{crash_at} never fired"
    assert outcome.prefix_ok, outcome.errors
    assert outcome.durable_ok, outcome.errors
    assert outcome.oracle_ok, outcome.errors
    assert outcome.ok


def test_torn_final_wal_record_detected_not_replayed(tmp_path):
    for point in TORN_TAIL_POINTS:
        outcome = run_crash_scenario(point, SEED, str(tmp_path))
        assert outcome.torn_tail, "torn tail went undetected"
        assert outcome.ok, outcome.errors


def test_commit_after_recovery_survives_second_crash(tmp_path):
    # crash → recover → commit → crash → recover: the orphaned records
    # of the first crash's aborted transaction must not be retroactively
    # committed by the survivor's first commit marker
    for point in ("wal.torn_sync", "wal.commit", "wal.append"):
        outcome = run_crash_scenario(point, SEED, str(tmp_path))
        assert outcome.crashed
        assert outcome.aftershock_ok, outcome.errors
        assert outcome.ok, outcome.errors


def test_matrix_flags_missing_torn_tail(tmp_path):
    # run_crash_matrix itself enforces the torn-tail expectation
    outcomes = run_crash_matrix(
        SEED, str(tmp_path), points=("wal.torn_sync",)
    )
    assert outcomes[0].torn_tail and outcomes[0].ok


def test_different_seeds_move_the_crash(tmp_path):
    confirmed = {
        run_crash_scenario("wal.sync", seed, str(tmp_path)).confirmed
        for seed in range(6)
    }
    assert len(confirmed) > 1  # the Nth-occurrence schedule varies


def test_no_crash_workload_recovers_completely(tmp_path):
    # a registered point the workload never reaches: the "crash" never
    # fires, and restart must still reconstruct the full workload
    register_crash_point("test.unreached")
    outcome = run_crash_scenario("test.unreached", SEED, str(tmp_path))
    assert not outcome.crashed
    assert outcome.confirmed == outcome.recovered == N_TXNS
    assert outcome.ok
