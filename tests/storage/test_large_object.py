"""Tests for the large-object store (chunk storage substrate)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import FileError
from repro.storage import BufferPool, FileManager, LargeObjectStore, SimulatedDisk


@pytest.fixture
def store(fm):
    return LargeObjectStore(fm, "chunks")


class TestBasics:
    def test_oids_are_dense(self, store):
        assert [store.create(b"a"), store.create(b"b")] == [0, 1]
        assert len(store) == 2

    def test_roundtrip_small_object(self, store):
        oid = store.create(b"hello world")
        assert store.read(oid) == b"hello world"
        assert store.length(oid) == 11

    def test_roundtrip_multi_page_object(self, store):
        payload = bytes(range(256)) * 20  # 5120 bytes over 1 KiB pages
        oid = store.create(payload)
        assert store.read(oid) == payload
        assert store.object_pages(oid) == 5

    def test_empty_object(self, store):
        oid = store.create(b"")
        assert store.read(oid) == b""
        assert store.object_pages(oid) == 1  # minimum allocation

    def test_exact_page_multiple(self, store):
        payload = b"z" * 2048
        oid = store.create(payload)
        assert store.read(oid) == payload
        assert store.object_pages(oid) == 2

    def test_unknown_oid(self, store):
        with pytest.raises(FileError):
            store.read(5)

    def test_sequential_objects_get_sequential_pages(self, store):
        first = store.create(b"x" * 2000)
        second = store.create(b"y" * 100)
        end_of_first = store.first_page(first) + store.object_pages(first)
        assert store.first_page(second) == end_of_first

    def test_footprint_accounts_pages_and_directory(self, store):
        store.create(b"x" * 3000)
        page = store.pool.disk.page_size
        assert store.footprint_bytes() >= 3 * page
        assert store.data_bytes() == 3000

    def test_survives_cold_restart(self, fm):
        store = LargeObjectStore(fm, "chunks")
        oid = store.create(b"persistent")
        fm.pool.clear()
        reopened = LargeObjectStore(fm, "chunks")
        assert len(reopened) == 1
        assert reopened.read(oid) == b"persistent"

    def test_directory_spans_pages(self, fm):
        store = LargeObjectStore(fm, "chunks")
        # 1 KiB pages hold 64 directory entries; force a second page.
        oids = [store.create(bytes([i % 256])) for i in range(70)]
        for i, oid in enumerate(oids):
            assert store.read(oid) == bytes([i % 256])


@settings(max_examples=30)
@given(st.lists(st.binary(max_size=5000), min_size=1, max_size=12))
def test_many_objects_roundtrip(payloads):
    disk = SimulatedDisk(page_size=512)
    pool = BufferPool(disk, capacity_bytes=16 * 512)
    store = LargeObjectStore(FileManager(pool), "objs")
    oids = [store.create(p) for p in payloads]
    for oid, payload in zip(oids, payloads):
        assert store.read(oid) == payload
