"""Unit tests for crash points, fault plans, and the Faulty* wrappers."""

import pytest

from repro.errors import (
    FaultError,
    SimulatedCrash,
    TransientDiskError,
    TransientError,
)
from repro.storage import BufferPool
from repro.storage.faults import (
    FaultPlan,
    FaultyDisk,
    FaultyWAL,
    active_plan,
    crash_point,
    fault_plan,
    register_crash_point,
    registered_crash_points,
)


class TestCrashPointRegistry:
    def test_builtins_registered(self):
        points = registered_crash_points()
        for name in ("pool.flush_page", "wal.append", "wal.torn_sync",
                     "disk.torn_write", "checkpoint.pre_truncate"):
            assert name in points

    def test_register_is_idempotent(self):
        before = registered_crash_points()
        register_crash_point("pool.flush_page")
        assert registered_crash_points() == before

    def test_no_plan_is_a_noop(self):
        assert active_plan() is None
        crash_point("wal.append")  # must not raise

    def test_unregistered_name_rejected_under_a_plan(self):
        with fault_plan(FaultPlan()):
            with pytest.raises(FaultError, match="unregistered"):
                crash_point("no.such.point")

    def test_unknown_crash_at_rejected(self):
        with pytest.raises(FaultError, match="unknown crash point"):
            FaultPlan(crash_at="no.such.point")

    def test_bad_crash_on_hit_rejected(self):
        with pytest.raises(FaultError):
            FaultPlan(crash_at="wal.append", crash_on_hit=0)


class TestFaultPlan:
    def test_crash_fires_on_nth_hit_once(self):
        plan = FaultPlan(crash_at="wal.append", crash_on_hit=3)
        with fault_plan(plan):
            crash_point("wal.append")
            crash_point("wal.append")
            assert not plan.crashed
            with pytest.raises(SimulatedCrash):
                crash_point("wal.append")
            assert plan.crashed
            crash_point("wal.append")  # inert after the crash

    def test_other_points_never_fire(self):
        plan = FaultPlan(crash_at="wal.append")
        with fault_plan(plan):
            crash_point("wal.commit")
            crash_point("pool.flush_page")
        assert not plan.crashed
        assert plan.hits == {"wal.commit": 1, "pool.flush_page": 1}

    def test_plans_nest_and_restore(self):
        outer, inner = FaultPlan(), FaultPlan()
        with fault_plan(outer):
            with fault_plan(inner):
                assert active_plan() is inner
            assert active_plan() is outer
        assert active_plan() is None

    def test_same_seed_same_torn_cuts(self):
        a, b = FaultPlan(seed=9), FaultPlan(seed=9)
        assert [a.torn_cut(500) for _ in range(5)] == [
            b.torn_cut(500) for _ in range(5)
        ]

    def test_torn_tail_cut_lands_in_final_window(self):
        plan = FaultPlan(seed=1)
        for _ in range(50):
            cut = plan.torn_tail_cut(1000, window=25)
            assert 1000 - 25 < cut < 1000


class TestFaultyDisk:
    def test_transient_reads_heal_after_budget(self):
        disk = FaultyDisk(page_size=64)
        disk.allocate(1)
        disk.write_page(0, b"\x05" * 64)
        with fault_plan(FaultPlan(transient_read_errors=2)):
            for _ in range(2):
                with pytest.raises(TransientDiskError):
                    disk.read_page(0)
            assert disk.read_page(0) == b"\x05" * 64  # healed
        assert disk.counters.get("transient_read_errors") == 2

    def test_transient_error_is_transient(self):
        assert issubclass(TransientDiskError, TransientError)

    def test_fault_free_without_plan(self):
        disk = FaultyDisk(page_size=64)
        disk.allocate(1)
        disk.write_page(0, b"\x01" * 64)
        assert disk.read_page(0) == b"\x01" * 64

    def test_clean_write_crash(self):
        disk = FaultyDisk(page_size=64)
        disk.allocate(1)
        with fault_plan(FaultPlan(crash_at="disk.write")):
            with pytest.raises(SimulatedCrash):
                disk.write_page(0, b"\x02" * 64)
        assert disk.read_page(0) == bytes(64)  # nothing landed

    def test_torn_write_persists_a_prefix(self):
        disk = FaultyDisk(page_size=64)
        disk.allocate(1)
        with fault_plan(FaultPlan(seed=4, crash_at="disk.torn_write")):
            with pytest.raises(SimulatedCrash):
                disk.write_page(0, b"\xaa" * 64)
        torn = disk.read_page(0)
        prefix = torn.rstrip(b"\x00")
        assert 0 < len(prefix) < 64 and set(prefix) == {0xAA}
        assert disk.counters.get("torn_page_writes") == 1


class TestFaultyWAL:
    def test_torn_sync_leaves_torn_tail_on_disk(self, tmp_path):
        waldir = str(tmp_path / "wal")
        wal = FaultyWAL(waldir)
        wal.log_page(0, b"before the crash")
        wal.log_commit()  # durable, fault-free
        wal.log_page(1, b"doomed batch")
        with fault_plan(FaultPlan(seed=2, crash_at="wal.torn_sync")):
            with pytest.raises(SimulatedCrash):
                wal.log_commit()

        again = FaultyWAL(waldir)
        assert again.torn_tail_detected
        # the first committed transaction survives intact
        records = again.records()
        assert records[0].image == b"before the crash"
        again.close()

    def test_pool_flush_crash_point_fires(self):
        disk = FaultyDisk(page_size=64)
        pool = BufferPool(disk, capacity_bytes=64 * 4)
        page = pool.new_page()
        pool.get(page)[:3] = b"abc"
        pool.mark_dirty(page)
        with fault_plan(FaultPlan(crash_at="pool.flush_page")):
            with pytest.raises(SimulatedCrash):
                pool.flush_all()
