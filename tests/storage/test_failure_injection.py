"""Failure injection: corrupted bytes must raise, never mis-answer."""

import pytest

from repro.core import OLAPArray
from repro.core.builder import build_olap_array
from repro.core.compression import decode_chunk
from repro.errors import (
    ArrayError,
    BTreeError,
    CompressionError,
    FileError,
    ReproError,
    WALError,
)
from repro.index import BTree
from repro.storage import (
    BufferPool,
    FileManager,
    PageFile,
    SimulatedDisk,
    WriteAheadLog,
)


def make_stack(page_size=512, frames=128):
    disk = SimulatedDisk(page_size=page_size)
    pool = BufferPool(disk, capacity_bytes=frames * page_size)
    return disk, pool, FileManager(pool)


class TestCorruptPages:
    def test_page_file_header_corruption_detected(self):
        disk, pool, fm = make_stack()
        pfile = fm.create("t")
        pool.clear()  # flush first so the corruption below sticks
        disk.write_page(pfile.header_page_id, b"\xde\xad" * (disk.page_size // 2))
        with pytest.raises(FileError):
            PageFile(pool, pfile.header_page_id)

    def test_corrupt_chunk_payload_detected(self):
        disk, pool, fm = make_stack()
        from tests.core.conftest import make_dimensions, make_facts

        array = build_olap_array(
            fm, "c", make_dimensions(), make_facts(density=0.3), (3, 2, 4)
        )
        # flip the codec tag of the first stored chunk
        first_nonempty = next(
            c
            for c in range(array.geometry.n_chunks)
            if array.directory.entry(c)[0] != -1
        )
        oid, _, _ = array.directory.entry(first_nonempty)
        first_page = array.chunks.first_page(oid)
        image = bytearray(disk.read_page(first_page))
        image[0] = 0xEE
        pool.clear()
        disk.write_page(first_page, bytes(image))
        array.invalidate_caches()
        with pytest.raises(CompressionError):
            array.read_chunk(first_nonempty)

    def test_truncated_chunk_payload_detected(self):
        with pytest.raises(CompressionError):
            decode_chunk(b"", 64, 1, "int64")


class TestCorruptWAL:
    def test_truncated_log_detected(self):
        wal = WriteAheadLog()
        wal.log_page(1, b"x" * 40)
        wal._buffer = wal._buffer[:-7]
        with pytest.raises(WALError):
            wal.records()


class TestBTreeValidation:
    def test_validate_catches_tampered_metadata(self):
        _, pool, fm = make_stack()
        tree = BTree.create(fm, "idx")
        for i in range(50):
            tree.insert(i, i)
        tree._count = 999  # simulate a torn metadata write
        with pytest.raises(BTreeError):
            tree.validate()


class TestErrorHierarchy:
    def test_every_domain_error_is_a_repro_error(self):
        import repro.errors as errors

        for name in dir(errors):
            obj = getattr(errors, name)
            if (
                isinstance(obj, type)
                and issubclass(obj, Exception)
                and obj is not Exception
            ):
                assert issubclass(obj, ReproError), name

    def test_array_open_without_metadata(self):
        _, pool, fm = make_stack()
        from repro.core.meta import ChunkDirectory

        ChunkDirectory.create(fm, "ghost.dir", 4)
        from repro.storage import LargeObjectStore

        LargeObjectStore(fm, "ghost.aux")
        with pytest.raises(ArrayError):
            OLAPArray.open(fm, "ghost")
