"""Tests for the write-ahead log and recovery."""

import pytest

from repro.errors import WALError
from repro.storage import SimulatedDisk, WriteAheadLog, recover
from repro.storage.wal import LogRecord, _KIND_COMMIT, _KIND_PAGE


class TestLog:
    def test_lsns_increase(self):
        wal = WriteAheadLog()
        assert wal.log_page(3, b"abc") == 0
        assert wal.log_commit() == 1
        assert wal.log_page(4, b"") == 2

    def test_records_decode_in_order(self):
        wal = WriteAheadLog()
        wal.log_page(7, b"payload")
        wal.log_commit()
        records = wal.records()
        assert [r.kind for r in records] == [_KIND_PAGE, _KIND_COMMIT]
        assert records[0].page_id == 7
        assert records[0].image == b"payload"

    def test_checkpoint_truncates(self):
        wal = WriteAheadLog()
        wal.log_page(1, b"x")
        wal.checkpoint()
        assert wal.records() == []
        assert wal.size_bytes() == 0

    def test_decode_rejects_truncated_header(self):
        with pytest.raises(WALError):
            LogRecord.decode(b"\x00\x01", 0)

    def test_decode_rejects_truncated_payload(self):
        wal = WriteAheadLog()
        wal.log_page(1, b"abcdef")
        raw = wal._buffer[:-2]
        with pytest.raises(WALError):
            LogRecord.decode(bytes(raw), 0)


class TestRecovery:
    def make_disk(self, pages=4, page_size=128):
        disk = SimulatedDisk(page_size=page_size)
        disk.allocate(pages)
        return disk

    def page_image(self, disk, fill):
        return bytes([fill]) * disk.page_size

    def test_only_committed_records_replay(self):
        disk = self.make_disk()
        wal = WriteAheadLog()
        wal.log_page(0, self.page_image(disk, 1))
        wal.log_commit()
        wal.log_page(1, self.page_image(disk, 2))  # uncommitted
        assert recover(disk, wal) == 1
        assert disk.read_page(0)[0] == 1
        assert disk.read_page(1)[0] == 0

    def test_latest_committed_image_wins(self):
        disk = self.make_disk()
        wal = WriteAheadLog()
        wal.log_page(0, self.page_image(disk, 1))
        wal.log_commit()
        wal.log_page(0, self.page_image(disk, 9))
        wal.log_commit()
        recover(disk, wal)
        assert disk.read_page(0)[0] == 9

    def test_recovery_extends_volume_for_new_pages(self):
        disk = self.make_disk(pages=1)
        wal = WriteAheadLog()
        wal.log_page(5, self.page_image(disk, 7))
        wal.log_commit()
        recover(disk, wal)
        assert disk.num_pages == 6
        assert disk.read_page(5)[0] == 7

    def test_empty_log_recovers_nothing(self):
        disk = self.make_disk()
        assert recover(disk, WriteAheadLog()) == 0
