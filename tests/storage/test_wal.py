"""Tests for the write-ahead log and recovery."""

import os

import pytest

from repro.errors import WALError
from repro.storage import SimulatedDisk, WriteAheadLog, recover
from repro.storage.wal import LogRecord, _KIND_COMMIT, _KIND_PAGE


class TestLog:
    def test_lsns_increase(self):
        wal = WriteAheadLog()
        assert wal.log_page(3, b"abc") == 0
        assert wal.log_commit() == 1
        assert wal.log_page(4, b"") == 2

    def test_records_decode_in_order(self):
        wal = WriteAheadLog()
        wal.log_page(7, b"payload")
        wal.log_commit()
        records = wal.records()
        assert [r.kind for r in records] == [_KIND_PAGE, _KIND_COMMIT]
        assert records[0].page_id == 7
        assert records[0].image == b"payload"

    def test_checkpoint_truncates(self):
        wal = WriteAheadLog()
        wal.log_page(1, b"x")
        wal.checkpoint()
        assert wal.records() == []
        assert wal.size_bytes() == 0

    def test_decode_rejects_truncated_header(self):
        with pytest.raises(WALError):
            LogRecord.decode(b"\x00\x01", 0)

    def test_decode_rejects_truncated_payload(self):
        wal = WriteAheadLog()
        wal.log_page(1, b"abcdef")
        raw = wal._buffer[:-2]
        with pytest.raises(WALError):
            LogRecord.decode(bytes(raw), 0)


class TestRecovery:
    def make_disk(self, pages=4, page_size=128):
        disk = SimulatedDisk(page_size=page_size)
        disk.allocate(pages)
        return disk

    def page_image(self, disk, fill):
        return bytes([fill]) * disk.page_size

    def test_only_committed_records_replay(self):
        disk = self.make_disk()
        wal = WriteAheadLog()
        wal.log_page(0, self.page_image(disk, 1))
        wal.log_commit()
        wal.log_page(1, self.page_image(disk, 2))  # uncommitted
        assert recover(disk, wal) == 1
        assert disk.read_page(0)[0] == 1
        assert disk.read_page(1)[0] == 0

    def test_latest_committed_image_wins(self):
        disk = self.make_disk()
        wal = WriteAheadLog()
        wal.log_page(0, self.page_image(disk, 1))
        wal.log_commit()
        wal.log_page(0, self.page_image(disk, 9))
        wal.log_commit()
        recover(disk, wal)
        assert disk.read_page(0)[0] == 9

    def test_recovery_extends_volume_for_new_pages(self):
        disk = self.make_disk(pages=1)
        wal = WriteAheadLog()
        wal.log_page(5, self.page_image(disk, 7))
        wal.log_commit()
        recover(disk, wal)
        assert disk.num_pages == 6
        assert disk.read_page(5)[0] == 7

    def test_empty_log_recovers_nothing(self):
        disk = self.make_disk()
        assert recover(disk, WriteAheadLog()) == 0

    def test_recover_discards_uncommitted_tail_in_process(self):
        # in-place recovery (recover_cube) must drop an aborted
        # transaction's records, or the next commit covers them
        disk = self.make_disk()
        wal = WriteAheadLog()
        wal.log_page(0, self.page_image(disk, 1))
        wal.log_commit()
        wal.log_page(1, self.page_image(disk, 2))  # aborted, never committed
        recover(disk, wal)
        assert len(wal.records()) == 2  # the aborted record is gone
        wal.log_page(2, self.page_image(disk, 3))
        wal.log_commit()
        fresh = self.make_disk()
        recover(fresh, wal)
        assert fresh.read_page(2)[0] == 3
        assert fresh.read_page(1)[0] == 0  # aborted image never replays

    def test_double_crash_does_not_resurrect_aborted_pages(self, tmp_path):
        # regression for the retroactive-commit hazard across restarts:
        # crash → recover → commit → crash → recover must not replay the
        # first crash's aborted after-images
        disk = self.make_disk()
        waldir = str(tmp_path / "wal")
        wal = WriteAheadLog.open(waldir)
        wal.log_page(0, self.page_image(disk, 1))
        wal.log_commit()
        wal.log_page(1, self.page_image(disk, 2))
        wal.sync()  # synced, but the commit marker never lands
        del wal  # first crash

        wal2 = WriteAheadLog.open(waldir)
        recover(disk, wal2)
        assert disk.read_page(1)[0] == 0
        wal2.log_page(2, self.page_image(disk, 3))
        wal2.log_commit()  # the survivor's first commit
        del wal2  # second crash

        fresh = self.make_disk()
        wal3 = WriteAheadLog.open(waldir)
        recover(fresh, wal3)
        assert fresh.read_page(0)[0] == 1
        assert fresh.read_page(2)[0] == 3
        assert fresh.read_page(1)[0] == 0  # page never reverts to aborted data
        wal3.close()


class TestFileBackedLog:
    def waldir(self, tmp_path):
        return str(tmp_path / "wal")

    def test_commit_is_the_fsync_point(self, tmp_path):
        wal = WriteAheadLog.open(self.waldir(tmp_path))
        wal.log_page(0, b"page image")
        assert wal.pending_bytes > 0  # appended, not yet durable
        wal.log_commit()
        assert wal.pending_bytes == 0

    def test_reopen_resumes_log_and_lsns(self, tmp_path):
        waldir = self.waldir(tmp_path)
        with WriteAheadLog.open(waldir) as wal:
            wal.log_page(0, b"aa")
            wal.log_commit()
        again = WriteAheadLog.open(waldir)
        assert [r.kind for r in again.records()] == [_KIND_PAGE, _KIND_COMMIT]
        assert again.log_page(1, b"bb") == 2  # LSNs continue
        again.close()

    def test_segments_roll_over(self, tmp_path):
        waldir = self.waldir(tmp_path)
        wal = WriteAheadLog.open(waldir, segment_bytes=128)
        for _ in range(4):
            wal.log_page(0, b"x" * 100)
            wal.log_commit()
        segments = [n for n in os.listdir(waldir) if n.endswith(".wal")]
        assert len(segments) > 1
        again = WriteAheadLog.open(waldir, segment_bytes=128)
        assert len(again.records()) == 8  # 4 pages + 4 commits, all files
        again.close()
        wal.close()

    def test_unsynced_records_do_not_survive_reopen(self, tmp_path):
        waldir = self.waldir(tmp_path)
        wal = WriteAheadLog.open(waldir)
        wal.log_page(0, b"committed")
        wal.log_commit()
        wal.log_page(1, b"volatile")  # never synced
        # no close(): the "process" dies here
        again = WriteAheadLog.open(waldir)
        assert len(again.records()) == 2
        again.close()

    def test_close_without_sync_models_abrupt_exit(self, tmp_path):
        waldir = self.waldir(tmp_path)
        wal = WriteAheadLog.open(waldir)
        wal.log_page(0, b"volatile")
        wal.close(sync=False)
        assert WriteAheadLog.open(waldir).records() == []

    def test_torn_tail_detected_and_discarded(self, tmp_path):
        waldir = self.waldir(tmp_path)
        wal = WriteAheadLog.open(waldir)
        wal.log_page(0, b"first")
        wal.log_commit()
        wal.log_page(1, b"second")
        wal.log_commit()
        wal.close()
        segment = os.path.join(waldir, sorted(os.listdir(waldir))[-1])
        with open(segment, "r+b") as handle:
            handle.truncate(os.path.getsize(segment) - 7)

        again = WriteAheadLog.open(waldir)
        assert again.torn_tail_detected
        # tearing off the commit marker aborts the whole second
        # transaction: its page record is discarded with the tear, so a
        # later commit marker cannot retroactively commit it
        kinds = [r.kind for r in again.records()]
        assert kinds == [_KIND_PAGE, _KIND_COMMIT]
        # the torn bytes were physically truncated: appends stay valid
        again.log_page(1, b"second again")
        again.log_commit()
        final = WriteAheadLog.open(waldir)
        assert not final.torn_tail_detected
        assert len(final.records()) == 4
        final.close()
        again.close()

    def test_orphan_tail_not_retroactively_committed(self, tmp_path):
        # regression: a synced-but-uncommitted tail (torn commit marker)
        # used to linger in the log; the restarted process's first
        # commit then "committed" the aborted transaction and the NEXT
        # recovery replayed it
        waldir = self.waldir(tmp_path)
        wal = WriteAheadLog.open(waldir)
        wal.log_page(0, b"committed")
        wal.log_commit()
        wal.log_page(1, b"aborted")
        wal.sync()  # durable, but the commit marker never lands
        del wal  # the process dies

        again = WriteAheadLog.open(waldir)
        assert int(again.counters.get("wal_orphan_bytes_discarded")) > 0
        again.log_page(2, b"survivor")
        again.log_commit()
        again.close()

        final = WriteAheadLog.open(waldir)
        pages = [r.page_id for r in final.records() if r.kind == _KIND_PAGE]
        assert pages == [0, 2]  # the aborted page 1 image is gone for good
        final.close()

    def test_torn_tail_filling_whole_final_segment(self, tmp_path):
        # regression: when the tear starts exactly at a segment
        # boundary the final segment is deleted outright, and reopen
        # used to stat the deleted path and die with FileNotFoundError
        waldir = self.waldir(tmp_path)
        wal = WriteAheadLog.open(waldir, segment_bytes=64)
        wal.log_page(0, b"x" * 50)
        wal.log_commit()  # overflows 64 bytes: segment 0 rolls
        wal.log_page(1, b"y" * 10)
        wal.log_commit()  # lands in segment 1
        wal.close()
        segments = sorted(
            n for n in os.listdir(waldir) if n.endswith(".wal")
        )
        assert len(segments) == 2
        with open(os.path.join(waldir, segments[-1]), "r+b") as handle:
            handle.truncate(8 + 5)  # magic + a torn header fragment

        again = WriteAheadLog.open(waldir, segment_bytes=64)
        assert again.torn_tail_detected
        assert [r.page_id for r in again.records() if r.kind == _KIND_PAGE] == [0]
        # appends after the deleted segment still work
        again.log_page(2, b"z")
        again.log_commit()
        again.close()
        final = WriteAheadLog.open(waldir, segment_bytes=64)
        assert len(final.records()) == 4
        final.close()

    def test_mid_log_corruption_raises_instead_of_truncating(self, tmp_path):
        # a CRC flip in the middle of the log is damage, not a tear:
        # committed records follow it, so reopen must refuse to
        # silently discard them
        waldir = self.waldir(tmp_path)
        wal = WriteAheadLog.open(waldir)
        wal.log_page(0, b"first")
        wal.log_commit()
        wal.log_page(1, b"second")
        wal.log_commit()
        wal.close()
        segment = os.path.join(waldir, sorted(os.listdir(waldir))[-1])
        with open(segment, "r+b") as handle:
            handle.seek(8 + 25)  # magic + header: inside record 0's image
            byte = handle.read(1)
            handle.seek(-1, os.SEEK_CUR)
            handle.write(bytes([byte[0] ^ 0xFF]))
        with pytest.raises(WALError, match="corruption"):
            WriteAheadLog.open(waldir)

    def test_crc_failure_on_final_record_is_a_tear(self, tmp_path):
        # the final record's CRC trailer never fully landing is
        # indistinguishable from a partial sector write: recoverable
        waldir = self.waldir(tmp_path)
        wal = WriteAheadLog.open(waldir)
        wal.log_page(0, b"first")
        wal.log_commit()
        wal.log_page(1, b"second")
        wal.log_commit()
        wal.close()
        segment = os.path.join(waldir, sorted(os.listdir(waldir))[-1])
        with open(segment, "r+b") as handle:
            handle.seek(-1, os.SEEK_END)
            byte = handle.read(1)
            handle.seek(-1, os.SEEK_CUR)
            handle.write(bytes([byte[0] ^ 0xFF]))
        again = WriteAheadLog.open(waldir)
        assert again.torn_tail_detected
        assert [r.kind for r in again.records()] == [_KIND_PAGE, _KIND_COMMIT]
        again.close()

    def test_corrupt_mid_log_record_still_raises(self, tmp_path):
        wal = WriteAheadLog.open(self.waldir(tmp_path))
        wal.log_page(0, b"abcdef")
        wal.log_commit()
        wal._buffer[5] ^= 0xFF  # flip a byte mid-record
        with pytest.raises(WALError):
            wal.records()

    def test_checkpoint_saves_image_and_truncates(self, tmp_path):
        waldir = self.waldir(tmp_path)
        disk = SimulatedDisk(page_size=64)
        disk.allocate(2)
        disk.write_page(0, b"\x07" * 64)
        wal = WriteAheadLog.open(waldir)
        wal.log_page(0, b"\x07" * 64)
        wal.log_commit()
        image = wal.checkpoint(disk)
        assert image == os.path.join(waldir, "checkpoint.img")
        assert wal.size_bytes() == 0
        assert not [n for n in os.listdir(waldir) if n.endswith(".wal")]
        assert SimulatedDisk.load(image).read_page(0) == b"\x07" * 64
        assert wal.checkpoint_image_path() == image
        wal.close()

    def test_in_memory_checkpoint_with_disk_needs_image_path(self):
        wal = WriteAheadLog()
        disk = SimulatedDisk(page_size=64)
        with pytest.raises(WALError, match="image path"):
            wal.checkpoint(disk)

    def test_bad_segment_magic_rejected(self, tmp_path):
        waldir = self.waldir(tmp_path)
        os.makedirs(waldir)
        with open(os.path.join(waldir, "00000000.wal"), "wb") as handle:
            handle.write(b"NOTAWAL!" + bytes(32))
        with pytest.raises(WALError, match="not a WAL segment"):
            WriteAheadLog.open(waldir)

    def test_bad_segment_bytes_rejected(self, tmp_path):
        with pytest.raises(WALError, match="segment_bytes"):
            WriteAheadLog.open(self.waldir(tmp_path), segment_bytes=0)
