"""Tests for the slot-directory page layout."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import PageError
from repro.storage import SlottedPage


def fresh_page(size=512):
    return SlottedPage.format(bytearray(size))


class TestBasics:
    def test_insert_get_roundtrip(self):
        page = fresh_page()
        slot = page.insert(b"hello")
        assert slot == 0
        assert page.get(slot) == b"hello"

    def test_slots_are_sequential(self):
        page = fresh_page()
        assert [page.insert(b"x") for _ in range(5)] == list(range(5))
        assert page.nslots == 5

    def test_insert_returns_none_when_full(self):
        page = fresh_page(size=64)
        payload = b"y" * 20
        inserted = 0
        while page.insert(payload) is not None:
            inserted += 1
        assert 0 < inserted < 4
        assert page.insert(b"z" * 60) is None

    def test_zero_length_record(self):
        page = fresh_page()
        slot = page.insert(b"")
        assert page.get(slot) == b""

    def test_delete_and_iterate(self):
        page = fresh_page()
        page.insert(b"a")
        doomed = page.insert(b"b")
        page.insert(b"c")
        page.delete(doomed)
        assert [(s, r) for s, r in page.records()] == [(0, b"a"), (2, b"c")]

    def test_get_deleted_raises(self):
        page = fresh_page()
        slot = page.insert(b"a")
        page.delete(slot)
        with pytest.raises(PageError):
            page.get(slot)

    def test_double_delete_raises(self):
        page = fresh_page()
        slot = page.insert(b"a")
        page.delete(slot)
        with pytest.raises(PageError):
            page.delete(slot)

    def test_bad_slot_raises(self):
        page = fresh_page()
        with pytest.raises(PageError):
            page.get(0)

    def test_free_space_shrinks_by_payload_plus_slot(self):
        page = fresh_page()
        before = page.free_space()
        page.insert(b"12345")
        assert before - page.free_space() == 5 + 4


@given(st.lists(st.binary(max_size=40), max_size=30))
def test_inserted_records_always_readable(payloads):
    page = fresh_page(size=2048)
    stored = []
    for payload in payloads:
        slot = page.insert(payload)
        if slot is None:
            break
        stored.append((slot, payload))
    for slot, payload in stored:
        assert page.get(slot) == payload
    assert list(page.records()) == stored


@given(
    st.lists(st.binary(min_size=1, max_size=20), min_size=1, max_size=20),
    st.data(),
)
def test_deletion_only_affects_target(payloads, data):
    page = fresh_page(size=2048)
    slots = [page.insert(p) for p in payloads]
    victim = data.draw(st.integers(min_value=0, max_value=len(slots) - 1))
    page.delete(slots[victim])
    survivors = [
        (s, p) for i, (s, p) in enumerate(zip(slots, payloads)) if i != victim
    ]
    assert list(page.records()) == survivors
