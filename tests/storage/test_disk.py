"""Tests for the simulated disk and its 1997 cost model."""

import pytest

from repro.errors import PageError
from repro.storage import DiskModel, SimulatedDisk


class TestAllocation:
    def test_allocations_are_contiguous(self, disk):
        first = disk.allocate(4)
        second = disk.allocate(2)
        assert second == first + 4
        assert disk.num_pages == 6

    def test_bad_allocation_count(self, disk):
        with pytest.raises(PageError):
            disk.allocate(0)

    def test_bad_page_size(self):
        with pytest.raises(PageError):
            SimulatedDisk(page_size=0)


class TestIO:
    def test_unwritten_page_reads_zeros(self, disk):
        pid = disk.allocate()
        assert disk.read_page(pid) == bytes(disk.page_size)

    def test_write_read_roundtrip(self, disk):
        pid = disk.allocate()
        image = bytes(range(256)) * (disk.page_size // 256)
        disk.write_page(pid, image)
        assert disk.read_page(pid) == image

    def test_wrong_image_size_rejected(self, disk):
        pid = disk.allocate()
        with pytest.raises(PageError):
            disk.write_page(pid, b"short")

    def test_out_of_range_page(self, disk):
        with pytest.raises(PageError):
            disk.read_page(99)


class TestCostModel:
    def test_sequential_reads_cost_no_seek(self):
        disk = SimulatedDisk(page_size=1024, model=DiskModel(seek_ms=10))
        disk.allocate(10)
        for pid in range(10):
            disk.read_page(pid)
        # first access seeks, the other nine are sequential
        assert disk.counters.get("seeks") == 1

    def test_random_reads_each_seek(self):
        disk = SimulatedDisk(page_size=1024, model=DiskModel(seek_ms=10))
        disk.allocate(10)
        for pid in (0, 5, 2, 9):
            disk.read_page(pid)
        assert disk.counters.get("seeks") == 4

    def test_near_forward_skip_charged_as_read_through(self):
        model = DiskModel(seek_ms=10, transfer_mb_per_s=1, near_window_pages=8)
        disk = SimulatedDisk(page_size=1024 * 1024, model=model)
        disk.allocate(10)
        disk.read_page(0)
        disk.reset_stats()
        disk._last_accessed = 0
        disk.read_page(4)  # forward skip of 4 pages within the window
        assert disk.counters.get("sim_io_s") == pytest.approx(4.0)

    def test_far_forward_skip_is_a_seek(self):
        model = DiskModel(seek_ms=10, transfer_mb_per_s=1, near_window_pages=2)
        disk = SimulatedDisk(page_size=1024 * 1024, model=model)
        disk.allocate(20)
        disk.read_page(0)
        disk.reset_stats()
        disk._last_accessed = 0
        disk.read_page(10)
        assert disk.counters.get("sim_io_s") == pytest.approx(1.01)

    def test_backward_jump_is_a_seek(self):
        model = DiskModel(seek_ms=10, transfer_mb_per_s=1, near_window_pages=8)
        disk = SimulatedDisk(page_size=1024 * 1024, model=model)
        disk.allocate(10)
        disk.read_page(5)
        disk.read_page(2)
        assert disk.counters.get("seeks") == 2

    def test_sim_io_seconds_accumulate(self):
        model = DiskModel(seek_ms=10, transfer_mb_per_s=10)
        disk = SimulatedDisk(page_size=1024 * 1024, model=model)
        disk.allocate(2)
        disk.read_page(0)
        disk.read_page(1)
        # one seek (10 ms) + 2 MB transfer at 10 MB/s (200 ms)
        assert disk.counters.get("sim_io_s") == pytest.approx(0.21)

    def test_reset_stats_forgets_arm_position(self, disk):
        disk.allocate(2)
        disk.read_page(0)
        disk.reset_stats()
        disk.read_page(1)
        assert disk.counters.get("seeks") == 1
        assert disk.counters.get("pages_read") == 1

    def test_used_bytes(self, disk):
        disk.allocate(3)
        assert disk.used_bytes() == 3 * disk.page_size

    def test_access_seconds_formula(self):
        model = DiskModel(seek_ms=5, transfer_mb_per_s=1)
        assert model.access_seconds(1024 * 1024, jump_pages=1) == pytest.approx(1.0)
        assert model.access_seconds(1024 * 1024, jump_pages=0) == pytest.approx(
            1.005
        )
        assert model.access_seconds(1024 * 1024, jump_pages=-3) == pytest.approx(
            1.005
        )
