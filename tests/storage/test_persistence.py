"""End-to-end persistence: save the volume, reload, query again."""

import pytest

from repro.data import (
    SyntheticCubeConfig,
    cube_schema_for,
    generate_dimension_rows,
    generate_fact_rows,
)
from repro.errors import CatalogError, PageError
from repro.olap import ConsolidationQuery, OlapEngine
from repro.relational import Database, Schema
from repro.storage import SimulatedDisk

CONFIG = SyntheticCubeConfig(
    name="persist",
    dim_sizes=(6, 5, 8),
    n_valid=100,
    chunk_shape=(3, 3, 4),
    fanout1=3,
)
QUERY = ConsolidationQuery.build(
    "persist", group_by={"dim0": "h01", "dim1": "h11"}
)


class TestDiskImage:
    def test_roundtrip(self, tmp_path):
        disk = SimulatedDisk(page_size=256)
        disk.allocate(5)
        disk.write_page(2, b"\x42" * 256)
        path = str(tmp_path / "volume.img")
        disk.save(path)
        again = SimulatedDisk.load(path)
        assert again.page_size == 256
        assert again.num_pages == 5
        assert again.read_page(2) == b"\x42" * 256
        assert again.read_page(0) == bytes(256)

    def test_empty_volume(self, tmp_path):
        disk = SimulatedDisk(page_size=128)
        path = str(tmp_path / "empty.img")
        disk.save(path)
        assert SimulatedDisk.load(path).num_pages == 0

    def test_bad_magic_rejected(self, tmp_path):
        path = str(tmp_path / "junk.img")
        with open(path, "wb") as handle:
            handle.write(b"NOTADISK" + bytes(100))
        with pytest.raises(PageError):
            SimulatedDisk.load(path)

    def test_unwritten_pages_load_as_zero(self, tmp_path):
        disk = SimulatedDisk(page_size=64)
        disk.allocate(3)  # never written: saved and reloaded as zero pages
        path = str(tmp_path / "zeros.img")
        disk.save(path)
        again = SimulatedDisk.load(path)
        assert again.num_pages == 3
        assert all(again.read_page(i) == bytes(64) for i in range(3))

    def test_truncated_header_rejected(self, tmp_path):
        path = str(tmp_path / "short.img")
        with open(path, "wb") as handle:
            handle.write(SimulatedDisk._IMAGE_MAGIC + b"\x01\x02")
        with pytest.raises(PageError, match="truncated"):
            SimulatedDisk.load(path)

    def test_page_size_mismatch_rejected(self, tmp_path):
        # header promises 2 pages of 256 bytes but only 1.5 are present
        disk = SimulatedDisk(page_size=256)
        disk.allocate(2)
        disk.write_page(0, b"\x11" * 256)
        path = str(tmp_path / "cut.img")
        disk.save(path)
        size = 8 + 12 + 2 * 256
        with open(path, "r+b") as handle:
            handle.truncate(size - 128)
        with pytest.raises(PageError, match="truncated at page 1"):
            SimulatedDisk.load(path)

    def test_corrupt_header_fields_rejected(self, tmp_path):
        import struct

        path = str(tmp_path / "neg.img")
        with open(path, "wb") as handle:
            handle.write(SimulatedDisk._IMAGE_MAGIC)
            handle.write(struct.pack("<iq", -8, 1))
        with pytest.raises(PageError, match="corrupt"):
            SimulatedDisk.load(path)


class TestDatabaseAttach:
    def test_tables_and_indexes_survive(self, tmp_path):
        db = Database(page_size=512, pool_bytes=128 * 512)
        dim = db.create_heap_table(
            "dim", Schema([("k", "int32"), ("h", "str:4")])
        )
        dim.insert_many([(i, f"h{i % 2}") for i in range(20)])
        fact = db.create_fact_table(
            "fact", Schema([("k", "int32"), ("v", "int32")])
        )
        fact.append_many([(i % 20, i) for i in range(200)])
        db.create_btree_index("fact.k.idx", "fact", "k")
        db.create_bitmap_index("fact.h.bm", 200, (f"h{(i % 20) % 2}" for i in range(200)))
        db.pool.flush_all()

        path = str(tmp_path / "db.img")
        db.disk.save(path)

        attached = Database.attach(SimulatedDisk.load(path))
        assert attached.table_names() == ["dim", "fact"]
        assert len(attached.table("fact")) == 200
        assert attached.table("fact").get(7) == (7, 7)
        assert attached.btree("fact.k.idx").search(3) == [3, 23, 43, 63, 83,
                                                          103, 123, 143, 163, 183]
        bitmap = attached.bitmap("fact.h.bm")
        assert bitmap.length == 200
        assert bitmap.bitmap_for("h1").count() == 100

    def test_attach_empty_database(self, tmp_path):
        db = Database(page_size=512)
        db.pool.flush_all()
        path = str(tmp_path / "empty.img")
        db.disk.save(path)
        attached = Database.attach(SimulatedDisk.load(path))
        assert attached.table_names() == []


class TestDatabaseLifecycle:
    def test_context_manager_flushes_on_exit(self, tmp_path):
        path = str(tmp_path / "ctx.img")
        with Database(page_size=512) as db:
            heap = db.create_heap_table("t", Schema([("k", "int32")]))
            heap.insert_many([(i,) for i in range(10)])
        # no explicit flush_all: __exit__ must leave the disk complete
        db.disk.save(path)
        attached = Database.attach(SimulatedDisk.load(path))
        assert len(list(attached.table("t").scan())) == 10

    def test_close_is_idempotent(self):
        db = Database(page_size=512)
        db.close()
        db.close()

    def test_open_replays_wal_past_checkpoint(self, tmp_path):
        waldir = str(tmp_path / "wal")
        db = Database(page_size=512, wal_dir=waldir)
        heap = db.create_heap_table("t", Schema([("k", "int32")]))
        heap.insert_many([(i,) for i in range(5)])
        image = db.checkpoint()
        heap.insert_many([(i,) for i in range(5, 9)])
        db.commit()  # durable in the WAL, never flushed to the image
        # no close(): simulate an abrupt exit after the commit

        reopened = Database.open(image, wal_dir=waldir)
        assert [r[0] for r in reopened.table("t").scan()] == list(range(9))
        reopened.close()

    def test_fresh_database_rejects_used_disk(self):
        disk = SimulatedDisk(page_size=512)
        disk.allocate(1)
        with pytest.raises(CatalogError, match="attach"):
            Database(disk=disk)


class TestEngineAttach:
    def test_full_cube_roundtrip(self, tmp_path):
        schema = cube_schema_for(CONFIG)
        engine = OlapEngine(page_size=1024, pool_bytes=512 * 1024)
        engine.load_cube(
            schema,
            generate_dimension_rows(CONFIG),
            generate_fact_rows(CONFIG),
            chunk_shape=CONFIG.chunk_shape,
            fact_btrees=True,
        )
        expected = engine.query(QUERY, backend="array").rows
        engine.db.pool.flush_all()
        path = str(tmp_path / "cube.img")
        engine.db.disk.save(path)

        reopened = OlapEngine(db=Database.attach(SimulatedDisk.load(path)))
        state = reopened.attach_cube(schema)
        assert state.available_backends() >= {
            "array", "starjoin", "bitmap", "btree", "leftdeep"
        }
        for backend in ("array", "starjoin"):
            assert reopened.query(QUERY, backend=backend).rows == expected

    def test_attach_relational_only_cube(self, tmp_path):
        schema = cube_schema_for(CONFIG)
        engine = OlapEngine(page_size=1024, pool_bytes=512 * 1024)
        engine.load_cube(
            schema,
            generate_dimension_rows(CONFIG),
            generate_fact_rows(CONFIG),
            backends=("relational",),
        )
        engine.db.pool.flush_all()
        path = str(tmp_path / "rel.img")
        engine.db.disk.save(path)

        reopened = OlapEngine(db=Database.attach(SimulatedDisk.load(path)))
        state = reopened.attach_cube(schema)
        assert state.array is None
        assert reopened.query(QUERY, backend="starjoin").rows
