"""Model-based test: the buffer pool must behave like a plain dict.

A random sequence of new-page / write / read / clear operations runs
against a tiny (heavy-eviction) pool and against an in-memory
reference; contents must agree after every step.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage import BufferPool, SimulatedDisk

PAGE = 64


@st.composite
def operation_sequences(draw):
    n_ops = draw(st.integers(1, 60))
    ops = []
    n_pages = 0
    for _ in range(n_ops):
        if n_pages == 0:
            kind = "new"
        else:
            kind = draw(
                st.sampled_from(["new", "write", "read", "clear", "flush"])
            )
        if kind == "new":
            ops.append(("new", draw(st.binary(min_size=PAGE, max_size=PAGE))))
            n_pages += 1
        elif kind == "write":
            ops.append(
                (
                    "write",
                    draw(st.integers(0, n_pages - 1)),
                    draw(st.binary(min_size=PAGE, max_size=PAGE)),
                )
            )
        elif kind == "read":
            ops.append(("read", draw(st.integers(0, n_pages - 1))))
        else:
            ops.append((kind,))
    return ops


@settings(max_examples=80, deadline=None)
@given(operation_sequences(), st.integers(1, 5))
def test_pool_matches_reference(ops, frames):
    disk = SimulatedDisk(page_size=PAGE)
    pool = BufferPool(disk, capacity_bytes=frames * PAGE)
    reference: dict[int, bytes] = {}
    for op in ops:
        if op[0] == "new":
            page_id = pool.new_page()
            pool.write(page_id, op[1])
            reference[page_id] = op[1]
        elif op[0] == "write":
            pool.write(op[1], op[2])
            reference[op[1]] = op[2]
        elif op[0] == "read":
            assert bytes(pool.get(op[1])) == reference[op[1]]
        elif op[0] == "clear":
            pool.clear()
        elif op[0] == "flush":
            pool.flush_all()
    # final audit: every page readable with the right contents
    for page_id, expected in reference.items():
        assert bytes(pool.get(page_id)) == expected
    pool.clear()
    for page_id, expected in reference.items():
        assert disk.read_page(page_id) == expected
