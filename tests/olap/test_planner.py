"""Tests for the backend-choice rule."""

import pytest

from repro.errors import PlanError
from repro.olap.planner import (
    DEFAULT_CROSSOVER_SELECTIVITY,
    PlannerInputs,
    choose_backend,
    require_backend_available,
)


def inputs(**kwargs):
    defaults = dict(
        has_array=True,
        has_bitmaps=True,
        has_selections=False,
        estimated_selectivity=1.0,
    )
    defaults.update(kwargs)
    return PlannerInputs(**defaults)


class TestChooseBackend:
    def test_no_selection_prefers_array(self):
        assert choose_backend(inputs()) == "array"

    def test_no_selection_no_array_falls_back_to_starjoin(self):
        assert choose_backend(inputs(has_array=False)) == "starjoin"

    def test_selection_above_crossover_uses_array(self):
        picked = choose_backend(
            inputs(has_selections=True, estimated_selectivity=0.01)
        )
        assert picked == "array"

    def test_selection_below_crossover_uses_bitmap(self):
        picked = choose_backend(
            inputs(has_selections=True, estimated_selectivity=0.0001)
        )
        assert picked == "bitmap"

    def test_paper_crossover_value(self):
        # §5.6: the observed crossover is S = 0.00024
        assert DEFAULT_CROSSOVER_SELECTIVITY == pytest.approx(0.00024)
        at_crossover = choose_backend(
            inputs(has_selections=True, estimated_selectivity=0.00024)
        )
        assert at_crossover == "array"  # strictly-below goes bitmap

    def test_no_bitmaps_keeps_array_even_when_tiny(self):
        picked = choose_backend(
            inputs(
                has_selections=True,
                has_bitmaps=False,
                estimated_selectivity=1e-9,
            )
        )
        assert picked == "array"

    def test_selection_without_array(self):
        picked = choose_backend(
            inputs(has_array=False, has_selections=True)
        )
        assert picked == "bitmap"
        picked = choose_backend(
            inputs(has_array=False, has_bitmaps=False, has_selections=True)
        )
        assert picked == "starjoin"

    def test_custom_crossover(self):
        picked = choose_backend(
            inputs(has_selections=True, estimated_selectivity=0.01),
            crossover_selectivity=0.5,
        )
        assert picked == "bitmap"


class TestRangeSelectionFallback:
    """Bitmaps can only serve BETWEEN by enumerating the domain — the
    planner must not pick them for range predicates."""

    def test_no_array_range_falls_back_to_starjoin(self):
        # the old rule returned "bitmap" here regardless of predicate shape
        picked = choose_backend(
            inputs(
                has_array=False,
                has_selections=True,
                has_range_selections=True,
            )
        )
        assert picked == "starjoin"

    def test_no_array_in_list_still_uses_bitmap(self):
        picked = choose_backend(
            inputs(
                has_array=False,
                has_selections=True,
                has_range_selections=False,
            )
        )
        assert picked == "bitmap"

    def test_range_below_crossover_keeps_array(self):
        picked = choose_backend(
            inputs(
                has_selections=True,
                has_range_selections=True,
                estimated_selectivity=1e-6,
            )
        )
        assert picked == "array"

    def test_regression_at_crossover_boundary(self):
        # §5.6 boundary: S exactly 0.00024 with a range predicate must
        # never flip to bitmap, with or without an array
        at_boundary = dict(
            has_selections=True,
            has_range_selections=True,
            estimated_selectivity=0.00024,
        )
        assert choose_backend(inputs(**at_boundary)) == "array"
        assert (
            choose_backend(inputs(has_array=False, **at_boundary))
            == "starjoin"
        )
        # and just below the boundary, where equality predicates *do*
        # go to bitmap, ranges still must not
        below = dict(at_boundary, estimated_selectivity=0.000239)
        assert choose_backend(inputs(**below)) == "array"
        below_eq = dict(below, has_range_selections=False)
        assert choose_backend(inputs(**below_eq)) == "bitmap"


class TestAvailability:
    def test_available_passes(self):
        require_backend_available("array", {"array", "starjoin"})

    def test_missing_raises(self):
        with pytest.raises(PlanError):
            require_backend_available("bitmap", {"array"})
