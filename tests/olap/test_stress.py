"""Stress: query correctness under heavy buffer-pool pressure and odd codecs.

The paper's 16 MB pool does not hold its 25 MB database; these tests
shrink the pool far below the data so every scan evicts constantly, and
swap codecs, to confirm the answers never change.
"""

import pytest

from repro.data import (
    SyntheticCubeConfig,
    cube_schema_for,
    generate_dimension_rows,
    generate_fact_rows,
)
from repro.olap import ConsolidationQuery, OlapEngine, SelectionPredicate

CONFIG = SyntheticCubeConfig(
    name="stress",
    dim_sizes=(10, 8, 12),
    n_valid=400,
    chunk_shape=(4, 4, 4),
    fanout1=4,
)
Q1 = ConsolidationQuery.build(
    "stress", group_by={"dim0": "h01", "dim1": "h11", "dim2": "h21"}
)
Q2 = ConsolidationQuery.build(
    "stress",
    group_by={"dim0": "h01"},
    selections=[SelectionPredicate("dim1", "h11", values=("AA1", "AA3"))],
)


def build(pool_frames, codec="chunk-offset", page_size=512):
    engine = OlapEngine(
        page_size=page_size, pool_bytes=pool_frames * page_size
    )
    engine.load_cube(
        cube_schema_for(CONFIG),
        generate_dimension_rows(CONFIG),
        generate_fact_rows(CONFIG),
        chunk_shape=CONFIG.chunk_shape,
        codec=codec,
    )
    return engine


@pytest.fixture(scope="module")
def roomy():
    return build(pool_frames=2048)


class TestPoolPressure:
    @pytest.mark.parametrize("frames", [8, 16, 64])
    def test_tiny_pool_answers_match(self, roomy, frames):
        tight = build(pool_frames=frames)
        for query, backend in (
            (Q1, "array"),
            (Q1, "starjoin"),
            (Q2, "array"),
            (Q2, "bitmap"),
        ):
            assert (
                tight.query(query, backend=backend).rows
                == roomy.query(query, backend=backend).rows
            )

    def test_tiny_pool_pays_more_io(self, roomy):
        tight = build(pool_frames=8)
        # warm both, then measure a warm run: the tight pool cannot hold
        # the working set and must re-read
        roomy.query(Q1, backend="starjoin")
        tight.query(Q1, backend="starjoin")
        warm_roomy = roomy.query(Q1, backend="starjoin", cold=False)
        warm_tight = tight.query(Q1, backend="starjoin", cold=False)
        assert warm_tight.stats.get("pages_read", 0) > warm_roomy.stats.get(
            "pages_read", 0
        )


class TestCodecTransparency:
    @pytest.mark.parametrize("codec", ["dense", "lzw-dense", "adaptive"])
    def test_all_codecs_answer_identically(self, roomy, codec):
        other = build(pool_frames=2048, codec=codec)
        for query, backend, kwargs in (
            (Q1, "array", {}),
            (Q1, "array", {"mode": "vectorized"}),
            (Q2, "array", {}),
            (Q2, "array", {"order": "naive"}),
        ):
            assert (
                other.query(query, backend=backend, **kwargs).rows
                == roomy.query(query, backend=backend, **kwargs).rows
            )

    def test_point_lookups_through_every_codec(self, roomy):
        facts = generate_fact_rows(CONFIG)
        for codec in ("dense", "lzw-dense", "adaptive"):
            other = build(pool_frames=256, codec=codec)
            array = other.cube("stress").array
            for row in facts[:10]:
                assert array.get_cell(row[:3])[0] == row[3]
