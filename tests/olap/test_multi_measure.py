"""Multi-measure cubes (p > 1) through every backend."""

import random

import pytest

from repro.olap import (
    ConsolidationQuery,
    CubeSchema,
    DimensionDef,
    MeasureDef,
    OlapEngine,
    SelectionPredicate,
)


@pytest.fixture(scope="module")
def loaded():
    rng = random.Random(3)
    schema = CubeSchema(
        name="mm",
        dimensions=(
            DimensionDef("a", key="ka", levels=(("ha", "str:6"),)),
            DimensionDef("b", key="kb", levels=(("hb", "str:6"),)),
        ),
        measures=(MeasureDef("units"), MeasureDef("revenue")),
    )
    dim_rows = {
        "a": [(k, f"A{k % 2}") for k in range(6)],
        "b": [(k, f"B{k % 3}") for k in range(5)],
    }
    facts = [
        (i, j, rng.randint(1, 20), rng.randint(100, 900))
        for i in range(6)
        for j in range(5)
        if rng.random() < 0.7
    ]
    engine = OlapEngine(page_size=1024, pool_bytes=512 * 1024)
    engine.load_cube(schema, dim_rows, facts, fact_btrees=True)
    return engine, facts


def reference(facts, selected_a=None):
    groups = {}
    for i, j, units, revenue in facts:
        if selected_a is not None and f"A{i % 2}" != selected_a:
            continue
        key = (f"A{i % 2}", f"B{j % 3}")
        u, r = groups.get(key, (0, 0))
        groups[key] = (u + units, r + revenue)
    return sorted(k + v for k, v in groups.items())


QUERY = ConsolidationQuery.build("mm", group_by={"a": "ha", "b": "hb"})


class TestBothMeasures:
    @pytest.mark.parametrize("backend", ["array", "starjoin", "leftdeep"])
    def test_rows_carry_every_measure(self, loaded, backend):
        engine, facts = loaded
        rows = engine.query(QUERY, backend=backend).rows
        assert rows == reference(facts)

    def test_vectorized_array(self, loaded):
        engine, facts = loaded
        rows = engine.query(QUERY, backend="array", mode="vectorized").rows
        assert rows == reference(facts)

    @pytest.mark.parametrize("backend", ["array", "bitmap", "btree", "starjoin"])
    def test_with_selection(self, loaded, backend):
        engine, facts = loaded
        query = ConsolidationQuery.build(
            "mm",
            group_by={"a": "ha", "b": "hb"},
            selections=[SelectionPredicate("a", "ha", values=("A1",))],
        )
        rows = engine.query(query, backend=backend).rows
        assert rows == reference(facts, selected_a="A1")


class TestMeasureSubset:
    @pytest.mark.parametrize("backend", ["array", "starjoin"])
    def test_single_measure_projected(self, loaded, backend):
        engine, facts = loaded
        query = ConsolidationQuery.build(
            "mm", group_by={"a": "ha", "b": "hb"}, measures=["revenue"]
        )
        rows = engine.query(query, backend=backend).rows
        expected = [(a, b, r) for a, b, _, r in reference(facts)]
        assert rows == expected

    def test_reordered_measures(self, loaded):
        engine, facts = loaded
        query = ConsolidationQuery.build(
            "mm",
            group_by={"a": "ha", "b": "hb"},
            measures=["revenue", "units"],
        )
        array = engine.query(query, backend="array").rows
        starjoin = engine.query(query, backend="starjoin").rows
        assert array == starjoin
        expected = [(a, b, r, u) for a, b, u, r in reference(facts)]
        assert array == expected

    def test_array_storage_holds_both(self, loaded):
        engine, facts = loaded
        array = engine.cube("mm").array
        assert array.n_measures == 2
        row = facts[0]
        cell = array.get_cell(row[:2])
        assert cell.tolist() == [row[2], row[3]]
