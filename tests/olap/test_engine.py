"""Integration tests for the OLAP engine: backend parity is the oracle."""

import pytest

from repro.errors import CatalogError, PlanError, QueryError
from repro.olap import ConsolidationQuery, SelectionPredicate

from .conftest import CONFIG, reference

Q1 = ConsolidationQuery.build(
    "cube", group_by={"dim0": "h01", "dim1": "h11", "dim2": "h21"}
)
Q2 = ConsolidationQuery.build(
    "cube",
    group_by={"dim0": "h01", "dim1": "h11", "dim2": "h21"},
    selections=[
        SelectionPredicate("dim0", "h01", values=("AA0",)),
        SelectionPredicate("dim1", "h11", values=("AA1",)),
        SelectionPredicate("dim2", "h21", values=("AA2",)),
    ],
)
Q3 = ConsolidationQuery.build(
    "cube",
    group_by={"dim0": "h01", "dim1": "h11"},
    selections=[
        SelectionPredicate("dim0", "h01", values=("AA1",)),
        SelectionPredicate("dim1", "h11", values=("AA0",)),
    ],
)

GROUPS_Q1 = [(0, 1), (1, 1), (2, 1)]


class TestQuery1:
    def test_array_matches_reference(self, engine, fact_rows):
        result = engine.query(Q1, backend="array")
        assert result.rows == reference(fact_rows, CONFIG, GROUPS_Q1)

    @pytest.mark.parametrize("backend", ["starjoin", "leftdeep"])
    def test_relational_backends_match(self, engine, fact_rows, backend):
        result = engine.query(Q1, backend=backend)
        assert result.rows == reference(fact_rows, CONFIG, GROUPS_Q1)

    def test_vectorized_array_matches(self, engine, fact_rows):
        result = engine.query(Q1, backend="array", mode="vectorized")
        assert result.rows == reference(fact_rows, CONFIG, GROUPS_Q1)

    def test_auto_picks_array_without_selection(self, engine):
        assert engine.query(Q1, backend="auto").backend == "array"

    def test_group_by_coarser_level(self, engine, fact_rows):
        query = ConsolidationQuery.build(
            "cube", group_by={"dim0": "h02", "dim2": "h22"}
        )
        expected = reference(fact_rows, CONFIG, [(0, 2), (2, 2)])
        for backend in ("array", "starjoin"):
            assert engine.query(query, backend=backend).rows == expected

    def test_group_by_key_attribute(self, engine, fact_rows):
        query = ConsolidationQuery.build(
            "cube", group_by={"dim1": "d1", "dim0": "h01"}
        )
        expected = reference(fact_rows, CONFIG, [(1, 0), (0, 1)])
        for backend in ("array", "starjoin", "leftdeep"):
            assert engine.query(query, backend=backend).rows == expected


class TestQuery2:
    @pytest.mark.parametrize("backend", ["array", "starjoin", "bitmap", "btree", "leftdeep"])
    def test_all_backends_agree(self, engine, fact_rows, backend):
        expected = reference(
            fact_rows,
            CONFIG,
            GROUPS_Q1,
            selected={0: {"AA0"}, 1: {"AA1"}, 2: {"AA2"}},
        )
        assert engine.query(Q2, backend=backend).rows == expected

    def test_in_list_selection(self, engine, fact_rows):
        query = ConsolidationQuery.build(
            "cube",
            group_by={"dim0": "h01", "dim1": "h11", "dim2": "h21"},
            selections=[SelectionPredicate("dim1", "h11", values=("AA0", "AA2"))],
        )
        expected = reference(
            fact_rows, CONFIG, GROUPS_Q1, selected={1: {"AA0", "AA2"}}
        )
        for backend in ("array", "bitmap", "starjoin"):
            assert engine.query(query, backend=backend).rows == expected

    def test_selection_on_key_attribute(self, engine, fact_rows):
        query = ConsolidationQuery.build(
            "cube",
            group_by={"dim0": "h01"},
            selections=[SelectionPredicate("dim1", "d1", values=(2, 3))],
        )
        groups = {}
        for row in fact_rows:
            if row[1] in (2, 3):
                key = (f"AA{row[0] % CONFIG.fanout1}",)
                groups[key] = groups.get(key, 0) + row[-1]
        expected = sorted(k + (v,) for k, v in groups.items())
        for backend in ("array", "starjoin", "btree"):
            assert engine.query(query, backend=backend).rows == expected


class TestQuery3:
    @pytest.mark.parametrize("backend", ["array", "starjoin", "bitmap", "btree", "leftdeep"])
    def test_ungrouped_dimension_aggregated_away(self, engine, fact_rows, backend):
        expected = reference(
            fact_rows,
            CONFIG,
            [(0, 1), (1, 1)],
            selected={0: {"AA1"}, 1: {"AA0"}},
        )
        assert engine.query(Q3, backend=backend).rows == expected

    def test_selection_on_ungrouped_dimension(self, engine, fact_rows):
        query = ConsolidationQuery.build(
            "cube",
            group_by={"dim0": "h01"},
            selections=[SelectionPredicate("dim2", "h21", values=("AA0",))],
        )
        expected = reference(
            fact_rows, CONFIG, [(0, 1)], selected={2: {"AA0"}}
        )
        for backend in ("array", "bitmap", "starjoin", "btree"):
            assert engine.query(query, backend=backend).rows == expected


class TestAggregates:
    @pytest.mark.parametrize("aggregate", ["count", "min", "max", "avg"])
    def test_array_and_starjoin_agree(self, engine, aggregate):
        query = ConsolidationQuery.build(
            "cube",
            group_by={"dim0": "h01", "dim1": "h11"},
            aggregate=aggregate,
        )
        array = engine.query(query, backend="array").rows
        starjoin = engine.query(query, backend="starjoin").rows
        for a, b in zip(array, starjoin):
            assert a[:-1] == b[:-1]
            assert a[-1] == pytest.approx(b[-1])

    def test_variance_through_both_designs(self, engine):
        query = ConsolidationQuery.build(
            "cube", group_by={"dim0": "h01"}, aggregate="var"
        )
        array = engine.query(query, backend="array").rows  # interpreted
        starjoin = engine.query(query, backend="starjoin").rows
        for a, b in zip(array, starjoin):
            assert a[0] == b[0]
            assert a[1] == pytest.approx(b[1])

    def test_variance_with_selection(self, engine):
        query = ConsolidationQuery.build(
            "cube",
            group_by={"dim0": "h01"},
            selections=[SelectionPredicate("dim1", "h11", values=("AA0",))],
            aggregate="stddev",
        )
        array = engine.query(query, backend="array").rows
        bitmap = engine.query(query, backend="bitmap").rows
        for a, b in zip(array, bitmap):
            assert a[0] == b[0]
            assert a[1] == pytest.approx(b[1])


class TestGroupByOrder:
    def test_query_order_respected_by_every_backend(self, engine):
        query = ConsolidationQuery.build(
            "cube", group_by={"dim2": "h21", "dim0": "h01"}
        )
        results = {
            backend: engine.query(query, backend=backend).rows
            for backend in ("array", "starjoin", "leftdeep")
        }
        baseline = results.pop("starjoin")
        assert baseline, "expected non-empty result"
        for rows in results.values():
            assert rows == baseline
        # first group column must be dim2's h21 (a string like AA0)
        assert all(r[0].startswith("AA") for r in baseline)


class TestPlannerIntegration:
    def test_auto_with_selection_above_crossover(self, engine):
        assert engine.query(Q2, backend="auto").backend == "array"

    def test_auto_below_crossover_picks_bitmap(self, engine):
        result = engine.query(Q2, backend="auto", crossover_selectivity=1.0)
        assert result.backend == "bitmap"

    def test_estimate_selectivity(self, engine):
        # fanout1=3 over sizes 8,6,10; h01='AA0' matches ceil-ish thirds
        s = engine.estimate_selectivity(Q2)
        assert 0 < s < 0.2


class TestResultMetadata:
    def test_cost_combines_cpu_and_io(self, engine):
        result = engine.query(Q1, backend="array")
        assert result.cost_s == result.elapsed_s + result.sim_io_s
        assert result.sim_io_s > 0  # cold run touched the disk

    def test_cold_vs_warm_io(self, engine):
        cold = engine.query(Q1, backend="starjoin", cold=True)
        warm = engine.query(Q1, backend="starjoin", cold=False)
        assert warm.stats.get("pages_read", 0) <= cold.stats["pages_read"]

    def test_stats_contain_algorithm_counters(self, engine):
        result = engine.query(Q1, backend="starjoin")
        assert result.stats["fact_tuples_scanned"] == CONFIG.n_valid
        array_result = engine.query(Q1, backend="array")
        assert array_result.stats["cells_scanned"] == CONFIG.n_valid

    def test_len_is_row_count(self, engine):
        result = engine.query(Q1, backend="array")
        assert len(result) == len(result.rows)


class TestStorageReport:
    def test_report_contains_both_designs(self, engine):
        report = engine.storage_report("cube")
        assert report["fact_file"] > 0
        assert report["array_total"] > report["array_chunks"] > 0
        assert report["bitmap_indices"] > 0
        assert report["btree_indices"] > 0
        assert report["dimension_tables"] > 0


class TestValidation:
    def test_unknown_cube(self, engine):
        with pytest.raises(CatalogError):
            engine.query(
                ConsolidationQuery.build("ghost", group_by={"dim0": "h01"})
            )

    def test_unknown_backend(self, engine):
        with pytest.raises(PlanError):
            engine.query(Q1, backend="quantum")

    def test_unknown_attribute(self, engine):
        query = ConsolidationQuery.build("cube", group_by={"dim0": "bogus"})
        with pytest.raises(QueryError):
            engine.query(query)

    def test_btree_backend_requires_selection(self, engine):
        with pytest.raises(PlanError):
            engine.query(Q1, backend="btree")

    def test_duplicate_cube_rejected(self, engine, schema):
        with pytest.raises(CatalogError):
            engine.load_cube(schema, {}, [])


class TestPartialBuilds:
    def test_array_only_cube(self, schema, fact_rows):
        from repro.data import generate_dimension_rows
        from repro.olap import OlapEngine

        engine = OlapEngine(page_size=1024, pool_bytes=512 * 1024)
        engine.load_cube(
            schema,
            generate_dimension_rows(CONFIG),
            fact_rows,
            chunk_shape=CONFIG.chunk_shape,
            backends=("array",),
        )
        assert engine.query(Q1, backend="array").rows
        with pytest.raises(PlanError):
            engine.query(Q1, backend="starjoin")

    def test_relational_only_cube(self, schema, fact_rows):
        from repro.data import generate_dimension_rows
        from repro.olap import OlapEngine

        engine = OlapEngine(page_size=1024, pool_bytes=512 * 1024)
        engine.load_cube(
            schema,
            generate_dimension_rows(CONFIG),
            fact_rows,
            backends=("relational",),
        )
        assert engine.query(Q1, backend="auto").backend == "starjoin"
        with pytest.raises(PlanError):
            engine.query(Q1, backend="array")
