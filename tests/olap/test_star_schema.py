"""Tests for the model → star schema mapping (§2.2)."""

import pytest

from repro.olap.model import retail_schema
from repro.olap.star_schema import (
    array_name,
    bitmap_index_name,
    btree_index_name,
    dimension_table_name,
    dimension_table_schema,
    fact_table_name,
    fact_table_schema,
)


class TestMapping:
    def test_dimension_table_columns(self):
        schema = retail_schema()
        table = dimension_table_schema(schema.dimension("product"))
        assert table.names == ("pid", "pname", "type", "category")

    def test_fact_table_is_keys_plus_measures(self):
        schema = retail_schema()
        table = fact_table_schema(schema)
        assert table.names == ("pid", "sid", "tid", "volume")

    def test_fact_record_is_fixed_length(self):
        schema = retail_schema()
        table = fact_table_schema(schema)
        # 3 int32 keys + 1 int64 measure
        assert table.record_size == 3 * 4 + 8

    def test_names_are_cube_scoped(self):
        schema = retail_schema()
        assert fact_table_name(schema) == "sales.fact"
        assert dimension_table_name(schema, "store") == "sales.store"
        assert array_name(schema) == "sales.array"
        assert bitmap_index_name(schema, "store", "city") == "sales.store.city.bm"
        assert btree_index_name(schema, "time") == "sales.fact.time.idx"

    def test_storage_ratio_formula(self):
        # §3.2: T_s/A_s = (n+p)/p at 100% density; for n=3, p=1 that is 4
        schema = retail_schema()
        fact = fact_table_schema(schema)
        measure_bytes = 8
        assert fact.record_size / measure_bytes == pytest.approx(2.5)
