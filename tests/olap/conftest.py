"""A small fully-built synthetic cube shared by the OLAP-layer tests."""

import pytest

from repro.data import (
    SyntheticCubeConfig,
    cube_schema_for,
    generate_dimension_rows,
    generate_fact_rows,
)
from repro.olap import OlapEngine

CONFIG = SyntheticCubeConfig(
    name="cube",
    dim_sizes=(8, 6, 10),
    n_valid=200,
    chunk_shape=(4, 3, 5),
    fanout1=3,
    fanout2=2,
    seed=7,
)


@pytest.fixture(scope="module")
def loaded():
    engine = OlapEngine(page_size=1024, pool_bytes=1024 * 1024)
    schema = cube_schema_for(CONFIG)
    fact_rows = generate_fact_rows(CONFIG)
    engine.load_cube(
        schema,
        generate_dimension_rows(CONFIG),
        fact_rows,
        chunk_shape=CONFIG.chunk_shape,
        fact_btrees=True,
    )
    return engine, schema, fact_rows


@pytest.fixture
def engine(loaded):
    return loaded[0]


@pytest.fixture
def schema(loaded):
    return loaded[1]


@pytest.fixture
def fact_rows(loaded):
    return loaded[2]


def reference(fact_rows, config, group_dims, selected=None, drop_rest=True):
    """Oracle consolidation on raw fact rows.

    ``group_dims``: list of (dim position, level) with level 1 → hX1,
    2 → hX2, 0 → key.  ``selected``: dict dim position → set of hX1
    values that pass.
    """

    def level_value(d, key, level):
        if level == 0:
            return key
        if level == 1:
            return f"AA{key % config.fanout1}"
        return f"BB{(key % config.fanout1) % config.fanout2}"

    groups = {}
    for row in fact_rows:
        if selected and any(
            level_value(d, row[d], 1) not in values
            for d, values in selected.items()
        ):
            continue
        key = tuple(level_value(d, row[d], lvl) for d, lvl in group_dims)
        groups[key] = groups.get(key, 0) + row[-1]
    return sorted(k + (v,) for k, v in groups.items())
