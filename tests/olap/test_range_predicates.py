"""Range (BETWEEN) predicates through every backend."""

import pytest

from repro.errors import QueryError
from repro.olap import ConsolidationQuery, SelectionPredicate, parse_query

from .conftest import CONFIG, reference


def key_range_reference(fact_rows, low, high):
    groups = {}
    for row in fact_rows:
        if not low <= row[1] <= high:
            continue
        key = (f"AA{row[0] % CONFIG.fanout1}",)
        groups[key] = groups.get(key, 0) + row[-1]
    return sorted(k + (v,) for k, v in groups.items())


class TestPredicate:
    def test_range_and_values_are_exclusive(self):
        with pytest.raises(QueryError):
            SelectionPredicate("d", "a", values=("x",), low=1)

    def test_needs_values_or_bounds(self):
        with pytest.raises(QueryError):
            SelectionPredicate("d", "a")

    def test_matches_semantics(self):
        between = SelectionPredicate("d", "a", low=2, high=5)
        assert between.matches(2) and between.matches(5)
        assert not between.matches(1) and not between.matches(6)
        open_low = SelectionPredicate("d", "a", high=3)
        assert open_low.matches(-100) and not open_low.matches(4)
        in_list = SelectionPredicate("d", "a", values=("x", "y"))
        assert in_list.matches("x") and not in_list.matches("z")


class TestKeyRanges:
    @pytest.mark.parametrize(
        "backend", ["array", "starjoin", "bitmap", "btree", "leftdeep"]
    )
    def test_key_between_all_backends(self, engine, fact_rows, backend):
        query = ConsolidationQuery.build(
            "cube",
            group_by={"dim0": "h01"},
            selections=[SelectionPredicate("dim1", "d1", low=1, high=3)],
        )
        if backend == "bitmap":
            pytest.skip("no bitmap index is built on key attributes")
        rows = engine.query(query, backend=backend).rows
        assert rows == key_range_reference(fact_rows, 1, 3)

    def test_open_bounds(self, engine, fact_rows):
        query = ConsolidationQuery.build(
            "cube",
            group_by={"dim0": "h01"},
            selections=[SelectionPredicate("dim1", "d1", high=2)],
        )
        rows = engine.query(query, backend="array").rows
        assert rows == key_range_reference(fact_rows, -(10**9), 2)


class TestLevelRanges:
    @pytest.mark.parametrize("backend", ["array", "bitmap", "starjoin", "btree"])
    def test_string_level_range(self, engine, fact_rows, backend):
        # hX1 values are AA0..AA2; the range AA1..AA2 behaves as an IN-list
        query = ConsolidationQuery.build(
            "cube",
            group_by={"dim0": "h01", "dim1": "h11", "dim2": "h21"},
            selections=[
                SelectionPredicate("dim1", "h11", low="AA1", high="AA2")
            ],
        )
        rows = engine.query(query, backend=backend).rows
        expected = reference(
            fact_rows,
            CONFIG,
            [(0, 1), (1, 1), (2, 1)],
            selected={1: {"AA1", "AA2"}},
        )
        assert rows == expected

    def test_empty_range(self, engine):
        query = ConsolidationQuery.build(
            "cube",
            group_by={"dim0": "h01"},
            selections=[SelectionPredicate("dim1", "h11", low="ZZ", high="ZZ9")],
        )
        for backend in ("array", "bitmap", "starjoin"):
            assert engine.query(query, backend=backend).rows == []


class TestAutoDispatchWithRanges:
    def test_relational_only_cube_routes_ranges_to_starjoin(self):
        """End-to-end regression for the planner fallback: with no array
        and a pure-range selection, auto must not hand the query to the
        bitmap backend."""
        from repro.data import (
            cube_schema_for,
            generate_dimension_rows,
            generate_fact_rows,
        )
        from repro.olap import OlapEngine

        engine = OlapEngine(page_size=1024, pool_bytes=1024 * 1024)
        engine.load_cube(
            cube_schema_for(CONFIG),
            generate_dimension_rows(CONFIG),
            generate_fact_rows(CONFIG),
            chunk_shape=CONFIG.chunk_shape,
            backends=("relational",),
        )
        query = ConsolidationQuery.build(
            "cube",
            group_by={"dim0": "h01"},
            selections=[SelectionPredicate("dim1", "d1", low=1, high=3)],
        )
        result = engine.query(query, backend="auto")
        assert result.backend == "starjoin"
        fact_rows = generate_fact_rows(CONFIG)
        assert result.rows == key_range_reference(fact_rows, 1, 3)

    def test_relational_only_cube_still_uses_bitmap_for_in_lists(self):
        from repro.data import (
            cube_schema_for,
            generate_dimension_rows,
            generate_fact_rows,
        )
        from repro.olap import OlapEngine

        engine = OlapEngine(page_size=1024, pool_bytes=1024 * 1024)
        engine.load_cube(
            cube_schema_for(CONFIG),
            generate_dimension_rows(CONFIG),
            generate_fact_rows(CONFIG),
            chunk_shape=CONFIG.chunk_shape,
            backends=("relational",),
        )
        query = ConsolidationQuery.build(
            "cube",
            group_by={"dim0": "h01"},
            selections=[SelectionPredicate("dim1", "h11", values=("AA1",))],
        )
        assert engine.query(query, backend="auto").backend == "bitmap"


class TestSQLBetween:
    def test_between_parses(self, schema):
        query = parse_query(
            "select sum(volume), dim0.h01 from fact, dim0, dim1 "
            "where fact.d0 = dim0.d0 and dim1.d1 between 1 and 3 "
            "group by h01",
            schema,
        )
        sel = query.selections[0]
        assert sel.is_range and (sel.low, sel.high) == (1, 3)

    def test_between_through_engine(self, engine, fact_rows):
        result = engine.sql(
            "cube",
            "select sum(volume), dim0.h01 from fact, dim0, dim1 "
            "where fact.d0 = dim0.d0 and dim1.d1 between 1 and 3 "
            "group by h01",
            backend="array",
        )
        assert result.rows == key_range_reference(fact_rows, 1, 3)

    def test_between_requires_and(self, schema):
        from repro.errors import SQLError

        with pytest.raises(SQLError):
            parse_query(
                "select sum(volume), dim0.h01 from fact, dim0 "
                "where dim0.d0 between 1 group by h01",
                schema,
            )
