"""Tests for aggregate navigation (answering queries from views)."""

import pytest

from repro.core import IndexToIndex
from repro.errors import DimensionError, PlanError, QueryError
from repro.olap import ConsolidationQuery, SelectionPredicate

from .conftest import CONFIG, reference


class TestFactor:
    def test_city_state_factoring(self):
        # base: 4 keys; fine = city level, coarse = state level
        fine = IndexToIndex.build(["mad", "mil", "chi", "mad"])
        coarse = IndexToIndex.build(["WI", "WI", "IL", "WI"])
        m = IndexToIndex.factor(fine, coarse)
        assert m.mapping.tolist() == [0, 0, 1]  # mad->WI, mil->WI, chi->IL
        assert m.target_keys == ["WI", "IL"]

    def test_factor_identity(self):
        fine = IndexToIndex.build(["a", "b", "a"])
        m = IndexToIndex.factor(fine, fine)
        assert m.mapping.tolist() == [0, 1]

    def test_non_functional_dependency_rejected(self):
        fine = IndexToIndex.build(["g", "g", "h"])
        coarse = IndexToIndex.build(["x", "y", "x"])  # g maps to both x and y
        with pytest.raises(DimensionError):
            IndexToIndex.factor(fine, coarse)

    def test_size_mismatch_rejected(self):
        with pytest.raises(DimensionError):
            IndexToIndex.factor(
                IndexToIndex.build(["a"]), IndexToIndex.build(["a", "b"])
            )


class TestQueryFromViews:
    @pytest.fixture()
    def engine_with_view(self, loaded):
        engine = loaded[0]
        view_query = ConsolidationQuery.build(
            "cube", group_by={"dim0": "h01", "dim1": "h11", "dim2": "h21"}
        )
        if "nav_view" not in engine.view_names():
            engine.materialize(view_query, "nav_view")
        return engine

    def test_same_grain_answered_from_view(self, engine_with_view, fact_rows):
        engine = engine_with_view
        query = ConsolidationQuery.build(
            "cube", group_by={"dim0": "h01", "dim1": "h11", "dim2": "h21"}
        )
        result = engine.query_from_views(query)
        assert result.backend == "view:nav_view"
        assert result.rows == engine.query(query, backend="array").rows

    def test_coarser_level_rolled_up(self, engine_with_view, fact_rows):
        # h02 is functionally determined by h01: the view can answer it
        engine = engine_with_view
        query = ConsolidationQuery.build(
            "cube", group_by={"dim0": "h02", "dim1": "h11"}
        )
        result = engine.query_from_views(query)
        assert result.rows == engine.query(query, backend="starjoin").rows

    def test_dropping_view_dimensions(self, engine_with_view):
        engine = engine_with_view
        query = ConsolidationQuery.build("cube", group_by={"dim1": "h11"})
        result = engine.query_from_views(query)
        assert result.rows == engine.query(query, backend="array").rows

    def test_view_query_touches_fewer_cells(self, engine_with_view, fact_rows):
        engine = engine_with_view
        query = ConsolidationQuery.build("cube", group_by={"dim0": "h01"})
        via_view = engine.query_from_views(query)
        # the view scan folds at most |view cells| << |fact| cells
        assert via_view.stats["cells_scanned"] < len(fact_rows)

    def test_finer_query_rejected(self, engine_with_view):
        # keys are finer than h01: the view cannot answer
        engine = engine_with_view
        query = ConsolidationQuery.build("cube", group_by={"dim0": "d0"})
        with pytest.raises(PlanError):
            engine.query_from_views(query)

    def test_selections_rejected(self, engine_with_view):
        engine = engine_with_view
        query = ConsolidationQuery.build(
            "cube",
            group_by={"dim0": "h01"},
            selections=[SelectionPredicate("dim1", "h11", values=("AA0",))],
        )
        with pytest.raises(PlanError):
            engine.query_from_views(query)

    def test_mismatched_aggregate_rejected(self, engine_with_view):
        engine = engine_with_view
        query = ConsolidationQuery.build(
            "cube", group_by={"dim0": "h01"}, aggregate="avg"
        )
        with pytest.raises(PlanError):
            engine.query_from_views(query)

    def test_key_grain_view_answers_any_level(self, loaded):
        engine = loaded[0]
        key_view = ConsolidationQuery.build(
            "cube", group_by={"dim0": "d0", "dim1": "d1"}
        )
        if "key_view" not in engine.view_names():
            engine.materialize(key_view, "key_view")
        query = ConsolidationQuery.build(
            "cube", group_by={"dim0": "h02", "dim1": "h11"}
        )
        result = engine.query_from_views(query)
        assert result.rows == engine.query(query, backend="array").rows

    def test_min_view_navigates(self, loaded):
        engine = loaded[0]
        min_view = ConsolidationQuery.build(
            "cube", group_by={"dim0": "h01", "dim1": "h11"}, aggregate="min"
        )
        if "min_view" not in engine.view_names():
            engine.materialize(min_view, "min_view")
        query = ConsolidationQuery.build(
            "cube", group_by={"dim1": "h11"}, aggregate="min"
        )
        result = engine.query_from_views(query)
        assert result.backend == "view:min_view"
        assert result.rows == engine.query(query, backend="array").rows

    def test_count_view_rolls_up_with_sum(self, loaded):
        engine = loaded[0]
        count_view = ConsolidationQuery.build(
            "cube", group_by={"dim0": "h01", "dim1": "h11"}, aggregate="count"
        )
        if "count_view" not in engine.view_names():
            engine.materialize(count_view, "count_view")
        query = ConsolidationQuery.build(
            "cube", group_by={"dim0": "h01"}, aggregate="count"
        )
        result = engine.query_from_views(query)
        assert result.backend == "view:count_view"
        assert result.rows == engine.query(query, backend="starjoin").rows
