"""Tests for the snowflake schema variant (§2.2)."""

import pytest

from repro.data import (
    SyntheticCubeConfig,
    cube_schema_for,
    generate_dimension_rows,
    generate_fact_rows,
)
from repro.errors import QueryError, SchemaError
from repro.olap import (
    ConsolidationQuery,
    CubeSchema,
    DimensionDef,
    OlapEngine,
    SelectionPredicate,
)
from repro.olap.snowflake import build_snowflake_dimension
from repro.relational import Database

CONFIG = SyntheticCubeConfig(
    name="snow",
    dim_sizes=(8, 6, 10),
    n_valid=180,
    chunk_shape=(4, 3, 5),
    fanout1=3,
    seed=11,
)


def build_engine(layout):
    engine = OlapEngine(page_size=1024, pool_bytes=1024 * 1024)
    engine.load_cube(
        cube_schema_for(CONFIG),
        generate_dimension_rows(CONFIG),
        generate_fact_rows(CONFIG),
        chunk_shape=CONFIG.chunk_shape,
        relational_layout=layout,
        fact_btrees=True,
    )
    return engine


@pytest.fixture(scope="module")
def star():
    return build_engine("star")


@pytest.fixture(scope="module")
def snowflake():
    return build_engine("snowflake")


class TestSnowflakeDimension:
    def test_view_reconstructs_denormalized_rows(self, snowflake):
        rows = generate_dimension_rows(CONFIG)["dim1"]
        view = snowflake.cube("snow").dim_tables["dim1"]
        assert list(view.scan()) == rows
        assert len(view) == len(rows)

    def test_schema_matches_star_dimension(self, star, snowflake):
        star_table = star.cube("snow").dim_tables["dim0"]
        snow_view = snowflake.cube("snow").dim_tables["dim0"]
        assert snow_view.schema.names == star_table.schema.names

    def test_level_tables_hold_distinct_values(self, snowflake):
        view = snowflake.cube("snow").dim_tables["dim0"]
        h1_table = dict(view.level_tables)["h01"]
        # fanout1=3 distinct hX1 values
        assert len(h1_table) == 3

    def test_non_functional_hierarchy_rejected(self):
        db = Database(page_size=1024, pool_bytes=256 * 1024)
        schema = CubeSchema(
            "bad",
            dimensions=(
                DimensionDef(
                    "d",
                    key="k",
                    levels=(("l1", "str:4"), ("l2", "str:4")),
                ),
            ),
        )
        rows = [(0, "a", "x"), (1, "a", "y")]  # l1='a' -> two l2 values
        with pytest.raises(SchemaError):
            build_snowflake_dimension(db, schema, "d", rows)


class TestQueryParity:
    QUERIES = [
        ConsolidationQuery.build(
            "snow", group_by={"dim0": "h01", "dim1": "h11", "dim2": "h21"}
        ),
        ConsolidationQuery.build(
            "snow", group_by={"dim0": "h02", "dim2": "h22"}
        ),
        ConsolidationQuery.build(
            "snow",
            group_by={"dim0": "h01"},
            selections=[SelectionPredicate("dim1", "h11", values=("AA1",))],
        ),
    ]

    @pytest.mark.parametrize("query_no", range(len(QUERIES)))
    @pytest.mark.parametrize("backend", ["starjoin", "bitmap", "leftdeep", "array"])
    def test_layouts_agree(self, star, snowflake, query_no, backend):
        query = self.QUERIES[query_no]
        if backend == "bitmap" and not query.selections:
            pytest.skip("bitmap path is for selections")
        assert (
            snowflake.query(query, backend=backend).rows
            == star.query(query, backend=backend).rows
        )

    def test_btree_backend_over_snowflake(self, star, snowflake):
        query = self.QUERIES[2]
        assert (
            snowflake.query(query, backend="btree").rows
            == star.query(query, backend="btree").rows
        )


class TestStorageAndValidation:
    def test_storage_reported_for_chain(self, snowflake):
        report = snowflake.storage_report("snow")
        assert report["dimension_tables"] > 0

    def test_snowflake_saves_space_on_wide_hierarchies(self):
        # long, highly redundant level strings: normalization pays off
        schema = CubeSchema(
            "wide",
            dimensions=(
                DimensionDef(
                    "d",
                    key="k",
                    levels=(("city", "str:40"), ("region", "str:40")),
                ),
            ),
        )
        rows = [
            (k, f"city-with-a-very-long-name-{k % 4}", f"region-long-{(k % 4) % 2}")
            for k in range(400)
        ]
        facts = [(k, 1) for k in range(400)]
        star = OlapEngine(page_size=1024, pool_bytes=512 * 1024)
        star.load_cube(schema, {"d": rows}, facts, relational_layout="star")
        snow = OlapEngine(page_size=1024, pool_bytes=512 * 1024)
        snow.load_cube(schema, {"d": rows}, facts, relational_layout="snowflake")
        assert (
            snow.storage_report("wide")["dimension_tables"]
            < star.storage_report("wide")["dimension_tables"] / 2
        )

    def test_unknown_layout_rejected(self):
        engine = OlapEngine(page_size=1024, pool_bytes=256 * 1024)
        with pytest.raises(QueryError):
            engine.load_cube(
                cube_schema_for(CONFIG),
                generate_dimension_rows(CONFIG),
                [],
                relational_layout="galaxy",
            )
