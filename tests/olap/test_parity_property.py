"""Property test: every backend answers every random query identically.

This is the repository's strongest oracle: random cubes, random
group-bys (mixed hierarchy levels, dropped dimensions), random
selections — the §4.1/§4.2 array algorithms, the §4.3 Starjoin, the
§4.5 bitmap algorithm, the B-tree baseline and the left-deep plan must
all return the same sorted rows.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.data import (
    SyntheticCubeConfig,
    cube_schema_for,
    generate_dimension_rows,
    generate_fact_rows,
)
from repro.olap import ConsolidationQuery, OlapEngine, SelectionPredicate


def build_engine(seed: int) -> tuple[OlapEngine, SyntheticCubeConfig]:
    config = SyntheticCubeConfig(
        name="p",
        dim_sizes=(7, 5, 9),
        n_valid=120,
        chunk_shape=(3, 2, 4),
        fanout1=3,
        fanout2=2,
        seed=seed,
    )
    engine = OlapEngine(page_size=1024, pool_bytes=1024 * 1024)
    engine.load_cube(
        cube_schema_for(config),
        generate_dimension_rows(config),
        generate_fact_rows(config),
        chunk_shape=config.chunk_shape,
        fact_btrees=True,
    )
    return engine, config


_ENGINE_CACHE: dict[int, tuple] = {}


def cached_engine(seed: int):
    if seed not in _ENGINE_CACHE:
        _ENGINE_CACHE.clear()  # keep at most one engine alive
        _ENGINE_CACHE[seed] = build_engine(seed)
    return _ENGINE_CACHE[seed]


@st.composite
def queries(draw):
    grouped_dims = draw(
        st.lists(st.sampled_from([0, 1, 2]), min_size=1, max_size=3, unique=True)
    )
    group_by = {}
    for d in grouped_dims:
        attr = draw(st.sampled_from([f"d{d}", f"h{d}1", f"h{d}2"]))
        group_by[f"dim{d}"] = attr
    selections = []
    for d in draw(
        st.lists(st.sampled_from([0, 1, 2]), max_size=2, unique=True)
    ):
        if draw(st.booleans()):
            values = draw(
                st.lists(
                    st.sampled_from(["AA0", "AA1", "AA2"]),
                    min_size=1,
                    max_size=2,
                    unique=True,
                )
            )
            selections.append(
                SelectionPredicate(f"dim{d}", f"h{d}1", values=tuple(values))
            )
        else:
            low = draw(st.integers(0, 6))
            high = draw(st.integers(low, 8))
            selections.append(
                SelectionPredicate(f"dim{d}", f"d{d}", low=low, high=high)
            )
    return ConsolidationQuery.build("p", group_by, selections)


@settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(seed=st.integers(0, 3), query=queries())
def test_all_backends_agree(seed, query):
    engine, _ = cached_engine(seed)
    backends = ["array", "starjoin", "leftdeep"]
    if query.selections:
        backends.append("btree")
        # bitmap indices exist only on level attributes, not keys
        if all(s.attribute.startswith("h") for s in query.selections):
            backends.append("bitmap")
    rows = {}
    for backend in backends:
        rows[backend] = engine.query(query, backend=backend, cold=False).rows
    rows["array-vectorized"] = engine.query(
        query, backend="array", mode="vectorized", cold=False
    ).rows
    baseline = rows.pop("starjoin")
    for backend, answer in rows.items():
        assert answer == baseline, backend


@settings(max_examples=10, deadline=None)
@given(query=queries())
def test_naive_order_agrees(query):
    engine, _ = cached_engine(0)
    chunked = engine.query(query, backend="array", cold=False).rows
    naive = engine.query(
        query, backend="array", order="naive", cold=False
    ).rows
    assert naive == chunked
