"""Tests for the OLAP data model."""

import pytest

from repro.errors import SchemaError
from repro.olap import CubeSchema, DimensionDef, MeasureDef
from repro.olap.model import retail_schema


class TestDimensionDef:
    def test_level_names(self):
        dim = DimensionDef(
            "store", key="sid", levels=(("city", "str:8"), ("state", "str:8"))
        )
        assert dim.level_names == ("city", "state")

    def test_attribute_type_lookup(self):
        dim = DimensionDef("store", key="sid", levels=(("city", "str:8"),))
        assert dim.attribute_type("sid") == "int32"
        assert dim.attribute_type("city") == "str:8"
        with pytest.raises(SchemaError):
            dim.attribute_type("nope")

    def test_duplicate_attribute_names_rejected(self):
        with pytest.raises(SchemaError):
            DimensionDef("d", key="k", levels=(("k", "str:4"),))

    def test_bad_key_type_rejected(self):
        with pytest.raises(SchemaError):
            DimensionDef("d", key="k", key_type="float64")

    def test_string_keys_allowed(self):
        dim = DimensionDef("d", key="k", key_type="str:8")
        assert dim.attribute_type("k") == "str:8"


class TestMeasureDef:
    def test_valid_types(self):
        assert MeasureDef("v").ctype == "int64"
        assert MeasureDef("w", "float64").ctype == "float64"

    def test_invalid_type_rejected(self):
        with pytest.raises(SchemaError):
            MeasureDef("v", "str:4")


class TestCubeSchema:
    def make(self):
        return CubeSchema(
            "c",
            dimensions=(
                DimensionDef("a", key="ka"),
                DimensionDef("b", key="kb"),
            ),
        )

    def test_ndim_and_lookup(self):
        cube = self.make()
        assert cube.ndim == 2
        assert cube.dimension("b").key == "kb"
        assert cube.dim_no("b") == 1

    def test_unknown_dimension(self):
        with pytest.raises(SchemaError):
            self.make().dimension("zz")
        with pytest.raises(SchemaError):
            self.make().dim_no("zz")

    def test_default_measure(self):
        assert self.make().measures[0].name == "volume"
        assert self.make().measure_dtype == "int64"

    def test_needs_dimensions_and_measures(self):
        with pytest.raises(SchemaError):
            CubeSchema("c", dimensions=())
        with pytest.raises(SchemaError):
            CubeSchema(
                "c", dimensions=(DimensionDef("a", key="k"),), measures=()
            )

    def test_duplicate_names_rejected(self):
        with pytest.raises(SchemaError):
            CubeSchema(
                "c",
                dimensions=(
                    DimensionDef("a", key="k1"),
                    DimensionDef("a", key="k2"),
                ),
            )

    def test_mixed_measure_types_rejected(self):
        with pytest.raises(SchemaError):
            CubeSchema(
                "c",
                dimensions=(DimensionDef("a", key="k"),),
                measures=(MeasureDef("x", "int64"), MeasureDef("y", "float64")),
            )

    def test_retail_example(self):
        schema = retail_schema()
        assert schema.ndim == 3
        assert schema.dimension("store").level_names == (
            "sname",
            "city",
            "state",
            "region",
        )
