"""Tests for the SQL-subset parser."""

import pytest

from repro.data import SyntheticCubeConfig, cube_schema_for
from repro.errors import SQLError
from repro.olap import parse_query
from repro.olap.model import retail_schema

CONFIG = SyntheticCubeConfig(
    name="cube",
    dim_sizes=(4, 4, 4, 4),
    n_valid=10,
    chunk_shape=(2, 2, 2, 2),
)
SCHEMA = cube_schema_for(CONFIG)

QUERY1 = """
select sum(volume), dim0.h01, dim1.h11, dim2.h21, dim3.h31
from fact, dim0, dim1, dim2, dim3
where fact.d0 = dim0.d0 and fact.d1 = dim1.d1 and
      fact.d2 = dim2.d2 and fact.d3 = dim3.d3
group by h01, h11, h21, h31
"""

QUERY2 = """
select sum(volume), dim0.h01, dim1.h11, dim2.h21, dim3.h31
from fact, dim0, dim1, dim2, dim3
where fact.d0 = dim0.d0 and fact.d1 = dim1.d1 and
      fact.d2 = dim2.d2 and fact.d3 = dim3.d3 and
      dim0.h01 = "AA1" and dim1.h11 = "AA2" and
      dim2.h21 = "AA3" and dim3.h31 = "AA1"
group by h01, h11, h21, h31
"""

QUERY3 = """
select sum(volume), dim0.h01, dim1.h11, dim2.h21
from fact, dim0, dim1, dim2
where fact.d0 = dim0.d0 and fact.d1 = dim1.d1 and fact.d2 = dim2.d2 and
      dim0.h01 = 'AA1' and dim1.h11 = 'AA2' and dim2.h21 = 'AA3'
group by h01, h11, h21
"""


class TestPaperQueries:
    def test_query1(self):
        q = parse_query(QUERY1, SCHEMA)
        assert q.group_by == (
            ("dim0", "h01"),
            ("dim1", "h11"),
            ("dim2", "h21"),
            ("dim3", "h31"),
        )
        assert q.selections == ()
        assert q.aggregate == "sum"
        assert q.measures == ("volume",)

    def test_query2_selections(self):
        q = parse_query(QUERY2, SCHEMA)
        assert len(q.selections) == 4
        assert q.selections[0].dimension == "dim0"
        assert q.selections[0].values == ("AA1",)

    def test_query3_drops_dim3(self):
        q = parse_query(QUERY3, SCHEMA)
        assert q.group_dims == ("dim0", "dim1", "dim2")
        assert "dim3" not in q.group_dims

    def test_queries_validate_against_schema(self):
        for sql in (QUERY1, QUERY2, QUERY3):
            parse_query(sql, SCHEMA).validate(SCHEMA)


class TestSyntaxFeatures:
    def test_in_list(self):
        q = parse_query(
            "select sum(volume), dim0.h01 from fact, dim0 "
            "where fact.d0 = dim0.d0 and dim0.h01 in ('AA0', 'AA2') "
            "group by h01",
            SCHEMA,
        )
        assert q.selections[0].values == ("AA0", "AA2")

    def test_numeric_literal(self):
        q = parse_query(
            "select sum(volume), dim0.h01 from fact, dim0 "
            "where dim0.d0 = 3 group by h01",
            SCHEMA,
        )
        assert q.selections[0].attribute == "d0"
        assert q.selections[0].values == (3,)

    def test_unqualified_group_by_resolved(self):
        q = parse_query(
            "select sum(volume), h21 from fact, dim2 group by h21", SCHEMA
        )
        assert q.group_by == (("dim2", "h21"),)

    def test_case_insensitive_keywords(self):
        q = parse_query(
            "SELECT sum(volume), dim0.h01 FROM fact, dim0 GROUP BY h01",
            SCHEMA,
        )
        assert q.group_dims == ("dim0",)

    def test_retail_schema_query(self):
        schema = retail_schema()
        q = parse_query(
            "select sum(volume), city, type from sales, product, store "
            "where sales.pid = product.pid and sales.sid = store.sid "
            "group by store.city, product.type",
            schema,
        )
        assert dict(q.group_by) == {"store": "city", "product": "type"}


class TestErrors:
    def test_unknown_table(self):
        with pytest.raises(SQLError):
            parse_query(
                "select sum(volume), h01 from nowhere group by h01", SCHEMA
            )

    def test_unknown_measure(self):
        with pytest.raises(SQLError):
            parse_query(
                "select sum(profit), dim0.h01 from fact, dim0 group by h01",
                SCHEMA,
            )

    def test_missing_aggregate(self):
        with pytest.raises(SQLError):
            parse_query(
                "select dim0.h01 from fact, dim0 group by h01", SCHEMA
            )

    def test_selected_column_not_grouped(self):
        with pytest.raises(SQLError):
            parse_query(
                "select sum(volume), dim0.h01 from fact, dim0 group by h02",
                SCHEMA,
            )

    def test_two_aggregate_functions(self):
        with pytest.raises(SQLError):
            parse_query(
                "select sum(volume), max(volume), dim0.h01 "
                "from fact, dim0 group by h01",
                SCHEMA,
            )

    def test_join_must_use_key(self):
        with pytest.raises(SQLError):
            parse_query(
                "select sum(volume), dim0.h01 from fact, dim0 "
                "where fact.d0 = dim0.h01 group by h01",
                SCHEMA,
            )

    def test_ambiguous_unqualified_attribute(self):
        from repro.olap import CubeSchema, DimensionDef

        clashing = CubeSchema(
            "c",
            dimensions=(
                DimensionDef("a", key="ka", levels=(("city", "str:8"),)),
                DimensionDef("b", key="kb", levels=(("city", "str:8"),)),
            ),
        )
        with pytest.raises(SQLError):
            parse_query(
                "select sum(volume), city from fact, a, b group by city",
                clashing,
            )

    def test_unknown_unqualified_attribute(self):
        with pytest.raises(SQLError):
            parse_query(
                "select sum(volume), nope from fact, dim0 group by nope",
                SCHEMA,
            )

    def test_trailing_tokens(self):
        with pytest.raises(SQLError):
            parse_query(
                "select sum(volume), dim0.h01 from fact, dim0 "
                "group by h01 order by h01",
                SCHEMA,
            )

    def test_garbage_input(self):
        with pytest.raises(SQLError):
            parse_query("select !!", SCHEMA)

    def test_missing_group_by(self):
        with pytest.raises(SQLError):
            parse_query("select sum(volume) from fact", SCHEMA)


class TestEngineIntegration:
    def test_sql_through_engine(self, engine, fact_rows):
        from repro.olap import ConsolidationQuery

        sql_result = engine.sql(
            "cube",
            "select sum(volume), dim0.h01, dim1.h11, dim2.h21 "
            "from fact, dim0, dim1, dim2 "
            "where fact.d0 = dim0.d0 and fact.d1 = dim1.d1 and "
            "fact.d2 = dim2.d2 group by h01, h11, h21",
            backend="array",
        )
        api_result = engine.query(
            ConsolidationQuery.build(
                "cube", group_by={"dim0": "h01", "dim1": "h11", "dim2": "h21"}
            ),
            backend="array",
        )
        assert sql_result.rows == api_result.rows
