"""EXPLAIN / EXPLAIN ANALYZE through the engine: estimates vs. actuals.

The acceptance property: on a cold array run the planner's estimates
are *exact* — the scan node's estimated ``chunks_read`` and
``cells_scanned`` equal the :class:`MetricsRegistry` counter deltas the
same query produces, because both derive from the same chunk directory
and the simulator is deterministic.
"""

import pytest

from repro.data import (
    SyntheticCubeConfig,
    cube_schema_for,
    generate_dimension_rows,
    generate_fact_rows,
)
from repro.errors import PlanError
from repro.olap import ConsolidationQuery, ExecutionOptions, OlapEngine
from repro.olap.query import SelectionPredicate

CONFIG = SyntheticCubeConfig(
    name="xcube",
    dim_sizes=(8, 6, 10),
    n_valid=200,
    chunk_shape=(4, 3, 5),
    fanout1=3,
    fanout2=2,
    seed=7,
)


@pytest.fixture(scope="module")
def engine():
    engine = OlapEngine(page_size=1024, pool_bytes=1024 * 1024)
    engine.load_cube(
        cube_schema_for(CONFIG),
        generate_dimension_rows(CONFIG),
        generate_fact_rows(CONFIG),
        chunk_shape=CONFIG.chunk_shape,
        fact_btrees=True,
    )
    return engine


def _q1():
    return ConsolidationQuery.build(
        CONFIG.name,
        group_by={f"dim{d}": f"h{d}1" for d in range(CONFIG.ndim)},
    )


def _q2():
    return ConsolidationQuery.build(
        CONFIG.name,
        group_by={f"dim{d}": f"h{d}1" for d in range(CONFIG.ndim)},
        selections=[
            SelectionPredicate.in_list(f"dim{d}", f"h{d}1", "AA1")
            for d in range(CONFIG.ndim)
        ],
    )


def _node(plan, op):
    matches = [n for n in plan.root.walk() if n.op == op]
    assert matches, f"plan has no {op!r} node"
    return matches[0]


class TestArrayExactness:
    def test_scan_actuals_equal_registry_deltas_of_the_same_query(
        self, engine
    ):
        plan = engine.explain(_q1(), ExecutionOptions(backend="array"), analyze=True, cold=True)
        reference = engine.query(_q1(), backend="array", cold=True)
        scan = _node(plan, "array.scan_chunks")
        # actuals are the registry counter deltas over the scan span;
        # the reference run's merged stats are the same deltas for the
        # whole query, and scanning is the only phase that touches them
        assert scan.actuals["chunks_read"] == reference.stats["chunks_read"]
        assert (
            scan.actuals["cells_scanned"] == reference.stats["cells_scanned"]
        )

    def test_cold_estimates_are_exact(self, engine):
        plan = engine.explain(_q1(), ExecutionOptions(backend="array"), analyze=True, cold=True)
        scan = _node(plan, "array.scan_chunks")
        for name in ("chunks_read", "cells_scanned", "chunk_bytes_read",
                     "dir_loads"):
            assert scan.estimates[name] == scan.actuals[name], name
        assert scan.worst_misestimate() == pytest.approx(1.0)
        mappings = _node(plan, "array.resolve_mappings")
        assert (
            mappings.estimates["i2i_loads"] == mappings.actuals["i2i_loads"]
        )

    def test_every_estimated_metric_gets_a_ratio(self, engine):
        plan = engine.explain(_q2(), ExecutionOptions(backend="array"), analyze=True, cold=True)
        estimated = [n for n in plan.root.walk() if n.estimates]
        assert estimated
        for node in estimated:
            assert set(node.misestimates()) == set(node.estimates)
            assert node.worst_misestimate() >= 1.0

    def test_selection_probe_estimates(self, engine):
        plan = engine.explain(_q2(), ExecutionOptions(backend="array"), analyze=True, cold=True)
        lookup = _node(plan, "array.btree_dimension_lookup")
        # one probe per in-list value, known exactly from the predicate
        assert lookup.estimates["btree_probes"] == CONFIG.ndim
        assert lookup.actuals["btree_probes"] == CONFIG.ndim
        probe = _node(plan, "array.consolidate_with_selection")
        assert (
            probe.estimates["cross_product_size"]
            == probe.actuals["cross_product_size"]
        )

    def test_heatmap_delta_rides_on_analyzed_array_plans(self, engine):
        plan = engine.explain(_q1(), ExecutionOptions(backend="array"), analyze=True, cold=True)
        scan = _node(plan, "array.scan_chunks")
        heat = plan.heatmap
        assert heat is not None and heat["array"]
        # cold run: every chunk access during the scan missed to disk
        assert sum(heat["disk_reads"]) == scan.actuals["chunks_read"]
        assert sum(heat["accesses"]) >= sum(heat["disk_reads"])
        assert heat["hottest"][0][1] >= 1


class TestPlanShape:
    def test_estimate_only_plan_has_no_actuals(self, engine):
        plan = engine.explain(_q1(), ExecutionOptions(backend="array"))
        assert not plan.analyzed
        assert all(n.actuals is None for n in plan.root.walk())
        assert plan.worst_misestimate() is None
        assert plan.heatmap is None

    def test_auto_resolution_matches_query_and_is_recorded(self, engine):
        plan = engine.explain(_q2(), ExecutionOptions(backend="auto"))
        result = engine.query(_q2(), backend="auto")
        assert plan.backend == result.backend
        assert plan.planner["requested"] == "auto"
        assert plan.planner["reason"]
        assert plan.backend in plan.planner["available_backends"]

    def test_fingerprint_keyed_by_requested_backend(self, engine):
        from repro.serve.fingerprint import query_fingerprint

        plan = engine.explain(_q2(), ExecutionOptions(backend="auto"))
        assert plan.fingerprint == query_fingerprint(_q2(), backend="auto")

    def test_unavailable_backend_raises_plan_error(self, engine):
        with pytest.raises(PlanError, match="mbtree"):
            engine.explain(_q2(), ExecutionOptions(backend="mbtree"))

    @pytest.mark.parametrize(
        "backend", ("array", "starjoin", "leftdeep", "bitmap", "btree")
    )
    def test_every_backend_produces_an_analyzable_plan(self, engine, backend):
        query = _q1() if backend in ("starjoin", "leftdeep") else _q2()
        plan = engine.explain(query, ExecutionOptions(backend=backend), analyze=True)
        assert plan.analyzed
        assert plan.rows == len(engine.query(query, backend=backend).rows)
        analyzed = [n for n in plan.root.walk() if n.actuals is not None]
        assert analyzed, f"{backend} plan has no analyzed nodes"
        assert plan.root.op == f"{backend}.query"

    def test_relational_backends_report_interpreted_mode(self, engine):
        plan = engine.explain(_q1(), ExecutionOptions(backend="starjoin", mode="vectorized"))
        assert plan.mode == "interpreted"


class TestMisestimateMetrics:
    def test_analyze_feeds_histogram_and_counters(self, engine):
        registry = engine.db.metrics
        before = registry.histogram(
            "engine.explain.misestimate_factor"
        ).count if (
            "engine.explain.misestimate_factor" in registry.histogram_names()
        ) else 0
        engine.explain(_q1(), ExecutionOptions(backend="array"), analyze=True)
        histogram = registry.histogram("engine.explain.misestimate_factor")
        assert histogram.count > before
        totals = registry.merged_snapshot()
        assert totals["explain.analyzed"] >= 1
        assert totals["explain.nodes_analyzed"] >= 1

    def test_counters_survive_cold_resets(self, engine):
        engine.explain(_q1(), ExecutionOptions(backend="array"), analyze=True)
        engine.query(_q1(), backend="array", cold=True)  # resets stats
        assert engine.db.metrics.merged_snapshot()["explain.analyzed"] >= 1


class TestChunkHeatmapEndpointPayload:
    def test_payload_shape_and_totals(self, engine):
        engine.query(_q1(), backend="array", cold=True)
        payload = engine.chunk_heatmap(CONFIG.name, top=3)
        assert payload["cube"] == CONFIG.name
        assert payload["n_chunks"] == 8
        assert payload["chunk_shape"] == list(CONFIG.chunk_shape)
        assert payload["total_accesses"] >= payload["total_disk_reads"] > 0
        assert len(payload["hottest"]) <= 3
        assert sum(payload["accesses"]) + payload["overflow_accesses"] == (
            payload["total_accesses"]
        )

    def test_cube_without_array_design_raises(self):
        engine = OlapEngine(page_size=1024, pool_bytes=1024 * 1024)
        engine.load_cube(
            cube_schema_for(CONFIG),
            generate_dimension_rows(CONFIG),
            generate_fact_rows(CONFIG),
            backends=("relational",),
        )
        with pytest.raises(PlanError, match="no array design"):
            engine.chunk_heatmap(CONFIG.name)

    def test_query_explain_convenience_delegates(self, engine):
        plan = _q1().explain(engine, ExecutionOptions(backend="array"))
        assert plan.cube == CONFIG.name
        assert plan.backend == "array"
