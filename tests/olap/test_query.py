"""Tests for ConsolidationQuery validation and construction surfaces."""

import warnings

import pytest

from repro.errors import QueryError
from repro.olap import ConsolidationQuery, SelectionPredicate
from repro.olap.model import retail_schema


class TestConstruction:
    def test_build_from_dicts(self):
        q = ConsolidationQuery.build(
            "sales", group_by={"store": "city", "product": "type"}
        )
        assert q.group_dims == ("store", "product")
        assert q.group_attr("store") == "city"

    def test_group_attr_unknown_dim(self):
        q = ConsolidationQuery.build("sales", group_by={"store": "city"})
        with pytest.raises(QueryError):
            q.group_attr("time")

    def test_empty_group_by_rejected(self):
        with pytest.raises(QueryError):
            ConsolidationQuery.build("sales", group_by={})

    def test_repeated_dimension_rejected(self):
        with pytest.raises(QueryError):
            ConsolidationQuery(
                "sales", group_by=(("store", "city"), ("store", "state"))
            )

    def test_empty_selection_values_rejected(self):
        with pytest.raises(QueryError):
            SelectionPredicate("store", "city", values=())

    def test_selected_dims_deduplicated_in_order(self):
        q = ConsolidationQuery.build(
            "sales",
            group_by={"store": "city"},
            selections=[
                SelectionPredicate("time", "year", values=(1997,)),
                SelectionPredicate("store", "region", values=("MW",)),
                SelectionPredicate("time", "month", values=(2,)),
            ],
        )
        assert q.selected_dims == ("time", "store")


class TestValidation:
    def test_valid_query_passes(self):
        schema = retail_schema()
        q = ConsolidationQuery.build(
            "sales",
            group_by={"store": "city", "product": "type"},
            selections=[SelectionPredicate("time", "year", values=(1997,))],
        )
        q.validate(schema)

    def test_group_by_key_is_valid(self):
        schema = retail_schema()
        ConsolidationQuery.build("sales", group_by={"store": "sid"}).validate(
            schema
        )

    def test_wrong_cube_name(self):
        schema = retail_schema()
        q = ConsolidationQuery.build("other", group_by={"store": "city"})
        with pytest.raises(QueryError):
            q.validate(schema)

    def test_unknown_group_attribute(self):
        schema = retail_schema()
        q = ConsolidationQuery.build("sales", group_by={"store": "bogus"})
        with pytest.raises(QueryError):
            q.validate(schema)

    def test_unknown_selection_attribute(self):
        schema = retail_schema()
        q = ConsolidationQuery.build(
            "sales",
            group_by={"store": "city"},
            selections=[SelectionPredicate("store", "bogus", values=("x",))],
        )
        with pytest.raises(QueryError):
            q.validate(schema)

    def test_unknown_measure(self):
        schema = retail_schema()
        q = ConsolidationQuery.build(
            "sales", group_by={"store": "city"}, measures=["profit"]
        )
        with pytest.raises(QueryError):
            q.validate(schema)


class TestBuilder:
    def test_fluent_chain_builds_full_query(self):
        q = (
            ConsolidationQuery.builder("sales")
            .group_by("store", "city")
            .group_by("product", "type")
            .where_in("time", "year", 1997)
            .where_between("time", "month", 1, 6)
            .aggregate("volume", "sum")
            .build()
        )
        assert q.cube == "sales"
        assert q.group_by == (("store", "city"), ("product", "type"))
        assert q.selections[0].values == (1997,)
        assert q.selections[1].is_range
        assert (q.selections[1].low, q.selections[1].high) == (1, 6)
        assert q.aggregate == "sum"
        assert q.measures == ("volume",)
        q.validate(retail_schema())

    def test_builder_defaults(self):
        q = ConsolidationQuery.builder("sales").group_by("store", "city").build()
        assert q.selections == ()
        assert q.aggregate == "sum"
        assert q.measures is None  # all cube measures

    def test_builder_matches_build_classmethod(self):
        fluent = (
            ConsolidationQuery.builder("sales")
            .group_by("store", "city")
            .where_in("time", "year", 1997)
            .build()
        )
        classic = ConsolidationQuery.build(
            "sales",
            group_by={"store": "city"},
            selections=[SelectionPredicate.in_list("time", "year", 1997)],
        )
        assert fluent == classic

    def test_conflicting_aggregate_functions_rejected(self):
        builder = ConsolidationQuery.builder("sales").group_by("store", "city")
        builder.aggregate("volume", "sum")
        with pytest.raises(QueryError):
            builder.aggregate("volume", "max")

    def test_repeated_measure_deduplicated(self):
        q = (
            ConsolidationQuery.builder("sales")
            .group_by("store", "city")
            .aggregate("volume")
            .aggregate("volume")
            .build()
        )
        assert q.measures == ("volume",)

    def test_builder_still_validates(self):
        with pytest.raises(QueryError):
            ConsolidationQuery.builder("sales").build()  # no group-by


class TestKeywordOnlyPredicateArgs:
    """The PR 2 positional deprecation is finished: values/low/high are
    keyword-only and positional use is a TypeError, not a warning."""

    def test_positional_values_rejected(self):
        with pytest.raises(TypeError):
            SelectionPredicate("store", "city", ("LA",))

    def test_positional_range_rejected(self):
        with pytest.raises(TypeError):
            SelectionPredicate("time", "year", None, 1996, 1998)

    def test_keyword_forms_work(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            sel = SelectionPredicate("store", "city", values=("LA",))
            rng = SelectionPredicate("time", "year", low=1996, high=1998)
            SelectionPredicate.in_list("store", "city", "LA", "SF")
            SelectionPredicate.between("time", "year", 1996, 1998)
        assert sel.values == ("LA",)
        assert rng.is_range and (rng.low, rng.high) == (1996, 1998)

    def test_named_constructors_equal_keyword_forms(self):
        assert SelectionPredicate.in_list(
            "store", "city", "LA"
        ) == SelectionPredicate("store", "city", values=("LA",))
        assert SelectionPredicate.between(
            "time", "year", 1996, 1998
        ) == SelectionPredicate("time", "year", low=1996, high=1998)
