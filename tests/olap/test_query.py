"""Tests for ConsolidationQuery validation."""

import pytest

from repro.errors import QueryError
from repro.olap import ConsolidationQuery, SelectionPredicate
from repro.olap.model import retail_schema


class TestConstruction:
    def test_build_from_dicts(self):
        q = ConsolidationQuery.build(
            "sales", group_by={"store": "city", "product": "type"}
        )
        assert q.group_dims == ("store", "product")
        assert q.group_attr("store") == "city"

    def test_group_attr_unknown_dim(self):
        q = ConsolidationQuery.build("sales", group_by={"store": "city"})
        with pytest.raises(QueryError):
            q.group_attr("time")

    def test_empty_group_by_rejected(self):
        with pytest.raises(QueryError):
            ConsolidationQuery.build("sales", group_by={})

    def test_repeated_dimension_rejected(self):
        with pytest.raises(QueryError):
            ConsolidationQuery(
                "sales", group_by=(("store", "city"), ("store", "state"))
            )

    def test_empty_selection_values_rejected(self):
        with pytest.raises(QueryError):
            SelectionPredicate("store", "city", ())

    def test_selected_dims_deduplicated_in_order(self):
        q = ConsolidationQuery.build(
            "sales",
            group_by={"store": "city"},
            selections=[
                SelectionPredicate("time", "year", (1997,)),
                SelectionPredicate("store", "region", ("MW",)),
                SelectionPredicate("time", "month", (2,)),
            ],
        )
        assert q.selected_dims == ("time", "store")


class TestValidation:
    def test_valid_query_passes(self):
        schema = retail_schema()
        q = ConsolidationQuery.build(
            "sales",
            group_by={"store": "city", "product": "type"},
            selections=[SelectionPredicate("time", "year", (1997,))],
        )
        q.validate(schema)

    def test_group_by_key_is_valid(self):
        schema = retail_schema()
        ConsolidationQuery.build("sales", group_by={"store": "sid"}).validate(
            schema
        )

    def test_wrong_cube_name(self):
        schema = retail_schema()
        q = ConsolidationQuery.build("other", group_by={"store": "city"})
        with pytest.raises(QueryError):
            q.validate(schema)

    def test_unknown_group_attribute(self):
        schema = retail_schema()
        q = ConsolidationQuery.build("sales", group_by={"store": "bogus"})
        with pytest.raises(QueryError):
            q.validate(schema)

    def test_unknown_selection_attribute(self):
        schema = retail_schema()
        q = ConsolidationQuery.build(
            "sales",
            group_by={"store": "city"},
            selections=[SelectionPredicate("store", "bogus", ("x",))],
        )
        with pytest.raises(QueryError):
            q.validate(schema)

    def test_unknown_measure(self):
        schema = retail_schema()
        q = ConsolidationQuery.build(
            "sales", group_by={"store": "city"}, measures=["profit"]
        )
        with pytest.raises(QueryError):
            q.validate(schema)
