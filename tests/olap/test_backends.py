"""The Backend protocol and registry (third-party pluggability)."""

import pytest

from repro.errors import PlanError
from repro.olap import (
    Backend,
    ConsolidationQuery,
    SelectionPredicate,
    available_backends,
    backend_names,
    get_backend,
    register_backend,
    unregister_backend,
)

BUILTINS = ("array", "starjoin", "bitmap", "btree", "mbtree", "leftdeep")


class EchoBackend(Backend):
    """Returns one row echoing the query, no storage touched."""

    name = "echo"

    def execute(self, ctx, query):
        return ctx.result([(query.cube, "echo")], self.name)


class TestRegistry:
    def test_builtins_are_registered(self):
        for name in BUILTINS:
            assert get_backend(name).name == name
        assert backend_names()[: len(BUILTINS)] == BUILTINS

    def test_unknown_backend_raises_plan_error(self):
        with pytest.raises(PlanError, match="unknown backend"):
            get_backend("nope")

    def test_register_and_unregister_third_party(self):
        register_backend(EchoBackend())
        try:
            assert get_backend("echo").name == "echo"
            assert backend_names()[-1] == "echo"  # extras sort after builtins
        finally:
            unregister_backend("echo")
        with pytest.raises(PlanError):
            get_backend("echo")

    def test_duplicate_registration_needs_replace(self):
        register_backend(EchoBackend())
        try:
            with pytest.raises(PlanError, match="already registered"):
                register_backend(EchoBackend())
            register_backend(EchoBackend(), replace=True)
        finally:
            unregister_backend("echo")

    def test_builtins_cannot_be_unregistered(self):
        with pytest.raises(PlanError):
            unregister_backend("array")

    def test_unregister_unknown_raises(self):
        with pytest.raises(PlanError):
            unregister_backend("nope")

    def test_auto_is_reserved(self):
        class AutoBackend(Backend):
            name = "auto"

            def execute(self, ctx, query):  # pragma: no cover
                raise AssertionError

        with pytest.raises(PlanError, match="reserved"):
            register_backend(AutoBackend())

    def test_empty_name_rejected(self):
        class Nameless(Backend):
            def execute(self, ctx, query):  # pragma: no cover
                raise AssertionError

        with pytest.raises(PlanError, match="non-empty"):
            register_backend(Nameless())


class TestEngineIntegration:
    def test_third_party_backend_runs_through_the_engine(self, engine):
        register_backend(EchoBackend())
        try:
            query = ConsolidationQuery.build("cube", group_by={"dim0": "h01"})
            result = engine.query(query, backend="echo")
        finally:
            unregister_backend("echo")
        assert result.backend == "echo"
        assert result.rows == [("cube", "echo")]
        assert result.elapsed_s >= 0

    def test_availability_reflects_physical_design(self, engine):
        state = engine.cube("cube")
        names = available_backends(state)
        assert {"array", "starjoin", "leftdeep"} <= names

    def test_unavailable_backend_rejected_by_engine(self, engine):
        # the shared cube is built without an mbtree
        query = ConsolidationQuery.build(
            "cube",
            group_by={"dim0": "h01"},
            selections=[SelectionPredicate.in_list("dim1", "h11", "AA1")],
        )
        with pytest.raises(PlanError):
            engine.query(query, backend="mbtree")
