"""Tests for materialized aggregate views."""

import pytest

from repro.core import ConsolidationSpec, consolidate
from repro.errors import CatalogError, PlanError, QueryError
from repro.olap import ConsolidationQuery, SelectionPredicate

from .conftest import CONFIG, reference

Q_VIEW = ConsolidationQuery.build(
    "cube", group_by={"dim0": "h01", "dim1": "h11"}
)


class TestMaterialize:
    def test_view_holds_the_query_result(self, engine, fact_rows):
        view = engine.materialize(Q_VIEW, "v_type_city")
        expected = reference(fact_rows, CONFIG, [(0, 1), (1, 1)])
        assert view.n_valid == len(expected)
        for row in expected:
            assert view.get_cell(row[:2])[0] == row[2]

    def test_view_registered_and_retrievable(self, engine):
        engine.materialize(Q_VIEW, "v_reg")
        assert "v_reg" in engine.view_names()
        assert engine.view("v_reg").geometry.ndim == 2

    def test_view_supports_further_rollup(self, engine, fact_rows):
        view = engine.materialize(Q_VIEW, "v_rollup")
        rolled = consolidate(
            view, [ConsolidationSpec.key(), ConsolidationSpec.drop()]
        )
        expected = reference(fact_rows, CONFIG, [(0, 1)])
        assert rolled.rows == expected

    def test_duplicate_view_name_rejected(self, engine):
        engine.materialize(Q_VIEW, "v_dup")
        with pytest.raises(CatalogError):
            engine.materialize(Q_VIEW, "v_dup")

    def test_unknown_view(self, engine):
        with pytest.raises(CatalogError):
            engine.view("ghost")

    def test_selections_rejected(self, engine):
        query = ConsolidationQuery.build(
            "cube",
            group_by={"dim0": "h01"},
            selections=[SelectionPredicate("dim1", "h11", values=("AA0",))],
        )
        with pytest.raises(QueryError):
            engine.materialize(query, "v_sel")

    def test_needs_array_backend(self, fact_rows, schema):
        from repro.data import generate_dimension_rows
        from repro.olap import OlapEngine

        relational_only = OlapEngine(page_size=1024, pool_bytes=512 * 1024)
        relational_only.load_cube(
            schema,
            generate_dimension_rows(CONFIG),
            fact_rows,
            backends=("relational",),
        )
        with pytest.raises(PlanError):
            relational_only.materialize(Q_VIEW, "v")
