"""Tests for slotted-page heap files."""

import pytest

from repro.errors import FileError
from repro.relational import HeapFile, Schema

DIM_SCHEMA = Schema([("d0", "int32"), ("h01", "str:8"), ("h02", "str:8")])


class TestHeapFile:
    def test_insert_and_get(self, fm):
        table = HeapFile.create(fm, "dim0", DIM_SCHEMA)
        rid = table.insert((1, "AA0", "BB0"))
        assert table.get(rid) == (1, "AA0", "BB0")
        assert len(table) == 1

    def test_scan_preserves_insert_order(self, fm):
        table = HeapFile.create(fm, "dim0", DIM_SCHEMA)
        rows = [(i, f"AA{i % 3}", f"BB{i % 2}") for i in range(50)]
        for row in rows:
            table.insert(row)
        assert list(table.scan()) == rows

    def test_rows_spill_across_pages(self, fm):
        table = HeapFile.create(fm, "dim0", DIM_SCHEMA)
        rows = [(i, "A", "B") for i in range(200)]
        table.insert_many(rows)
        assert list(table.scan()) == rows
        assert table._file.npages > 1

    def test_insert_many_counts(self, fm):
        table = HeapFile.create(fm, "dim0", DIM_SCHEMA)
        table.insert_many([(i, "x", "y") for i in range(10)])
        table.insert((99, "z", "w"))
        assert len(table) == 11

    def test_survives_cold_reopen(self, fm):
        table = HeapFile.create(fm, "dim0", DIM_SCHEMA)
        table.insert_many([(i, "a", "b") for i in range(25)])
        fm.pool.clear()
        reopened = HeapFile.open(fm, "dim0")
        assert reopened.schema == DIM_SCHEMA
        assert len(reopened) == 25
        assert list(reopened.scan())[24] == (24, "a", "b")

    def test_schema_mismatch_on_open(self, fm):
        HeapFile.create(fm, "dim0", DIM_SCHEMA)
        other = Schema([("x", "int64")])
        with pytest.raises(FileError):
            HeapFile(fm.open("dim0"), other)

    def test_new_file_requires_schema(self, fm):
        pfile = fm.create("raw")
        with pytest.raises(FileError):
            HeapFile(pfile)

    def test_delete(self, fm):
        table = HeapFile.create(fm, "dim0", DIM_SCHEMA)
        rids = [table.insert((i, "a", "b")) for i in range(5)]
        table.delete(rids[2])
        assert len(table) == 4
        assert [r[0] for r in table.scan()] == [0, 1, 3, 4]

    def test_delete_twice_raises(self, fm):
        from repro.errors import PageError

        table = HeapFile.create(fm, "dim0", DIM_SCHEMA)
        rid = table.insert((1, "a", "b"))
        table.delete(rid)
        import pytest as _pytest

        with _pytest.raises(PageError):
            table.delete(rid)

    def test_update_in_place(self, fm):
        table = HeapFile.create(fm, "dim0", DIM_SCHEMA)
        rid = table.insert((1, "old", "x"))
        new_rid = table.update(rid, (1, "new", "x"))
        assert table.get(new_rid) == (1, "new", "x")
        assert len(table) == 1

    def test_size_includes_slot_overhead(self, fm):
        table = HeapFile.create(fm, "dim0", DIM_SCHEMA)
        table.insert_many([(i, "a", "b") for i in range(100)])
        # footprint must exceed the raw record bytes: slots + headers
        assert table.size_bytes() > 100 * DIM_SCHEMA.record_size
