"""Tests for Volcano-style operators and the left-deep plan."""

import pytest

from repro.errors import QueryError
from repro.relational import (
    Database,
    Filter,
    HashGroupBy,
    HashJoin,
    Project,
    Schema,
    SeqScan,
)
from repro.relational.operators import left_deep_consolidation

from .conftest import h1, join_specs, reference_consolidation


@pytest.fixture
def tiny_db():
    db = Database(page_size=1024, pool_bytes=128 * 1024)
    left = db.create_heap_table(
        "left", Schema([("id", "int32"), ("tag", "str:4")])
    )
    left.insert_many([(1, "a"), (2, "b"), (3, "c")])
    right = db.create_heap_table(
        "right", Schema([("ref", "int32"), ("value", "int32")])
    )
    right.insert_many([(1, 10), (1, 11), (2, 20), (9, 90)])
    return db


class TestScanFilterProject:
    def test_seq_scan_names_unqualified(self, tiny_db):
        scan = SeqScan(tiny_db.table("left"))
        assert scan.names == ("id", "tag")
        assert list(scan) == [(1, "a"), (2, "b"), (3, "c")]

    def test_seq_scan_alias_qualifies(self, tiny_db):
        scan = SeqScan(tiny_db.table("left"), alias="l")
        assert scan.names == ("l.id", "l.tag")

    def test_filter_equals(self, tiny_db):
        scan = SeqScan(tiny_db.table("right"))
        out = list(Filter(scan, equals={"ref": 1}))
        assert out == [(1, 10), (1, 11)]

    def test_filter_predicate(self, tiny_db):
        scan = SeqScan(tiny_db.table("right"))
        out = list(Filter(scan, predicate=lambda r: r[1] > 15))
        assert out == [(2, 20), (9, 90)]

    def test_filter_requires_exactly_one_condition(self, tiny_db):
        scan = SeqScan(tiny_db.table("left"))
        with pytest.raises(QueryError):
            Filter(scan)
        with pytest.raises(QueryError):
            Filter(scan, predicate=lambda r: True, equals={"id": 1})

    def test_project_reorders(self, tiny_db):
        scan = SeqScan(tiny_db.table("left"))
        out = list(Project(scan, ["tag", "id"]))
        assert out == [("a", 1), ("b", 2), ("c", 3)]

    def test_project_unknown_column(self, tiny_db):
        scan = SeqScan(tiny_db.table("left"))
        with pytest.raises(QueryError):
            Project(scan, ["nope"])


class TestHashJoin:
    def test_inner_join(self, tiny_db):
        left = SeqScan(tiny_db.table("left"), alias="l")
        right = SeqScan(tiny_db.table("right"), alias="r")
        join = HashJoin(left, right, ["l.id"], ["r.ref"])
        assert sorted(join) == [
            (1, "a", 1, 10),
            (1, "a", 1, 11),
            (2, "b", 2, 20),
        ]

    def test_join_counts_build_rows(self, tiny_db):
        left = SeqScan(tiny_db.table("left"))
        right = SeqScan(tiny_db.table("right"), alias="r")
        join = HashJoin(left, right, ["id"], ["r.ref"])
        list(join)
        assert join.build_rows_materialized == 3

    def test_key_arity_mismatch(self, tiny_db):
        left = SeqScan(tiny_db.table("left"))
        right = SeqScan(tiny_db.table("right"), alias="r")
        with pytest.raises(QueryError):
            HashJoin(left, right, ["id"], [])


class TestHashGroupBy:
    def test_group_and_sum(self, tiny_db):
        scan = SeqScan(tiny_db.table("right"))
        out = list(HashGroupBy(scan, ["ref"], [("sum", "value")]))
        assert out == [(1, 21), (2, 20), (9, 90)]

    def test_multiple_aggregates(self, tiny_db):
        scan = SeqScan(tiny_db.table("right"))
        out = list(
            HashGroupBy(scan, ["ref"], [("count", "value"), ("max", "value")])
        )
        assert out == [(1, 2, 11), (2, 1, 20), (9, 1, 90)]

    def test_output_names(self, tiny_db):
        scan = SeqScan(tiny_db.table("right"))
        op = HashGroupBy(scan, ["ref"], [("sum", "value")])
        assert op.names == ("ref", "sum(value)")


class TestLeftDeepPlan:
    def test_matches_reference_consolidation(self, star_db):
        db, dims, fact, fact_rows = star_db
        fact_scan = SeqScan(fact, alias="f")
        dim_scans = [
            (SeqScan(dims[d], alias=f"dim{d}"), f"dim{d}.d{d}", f"f.d{d}")
            for d in range(3)
        ]
        plan = left_deep_consolidation(
            fact_scan,
            dim_scans,
            [f"dim{d}.h{d}1" for d in range(3)],
            "f.volume",
        )
        expected = reference_consolidation(
            fact_rows, [lambda k, d=d: h1(d, k) for d in range(3)]
        )
        assert list(plan) == expected

    def test_needs_a_dimension(self, star_db):
        _, _, fact, _ = star_db
        with pytest.raises(QueryError):
            left_deep_consolidation(SeqScan(fact), [], [], "volume")
