"""Tests for the B-tree selection baseline."""

import pytest

from repro.errors import QueryError
from repro.relational import bitmap_select_consolidate, btree_select_consolidate
from repro.util.stats import Counters

from .conftest import FANOUTS, h1, join_specs


def fact_btree(db, d):
    return db.create_btree_index(f"fact.d{d}.idx", "fact", f"d{d}")


def keys_matching(dims, d, value):
    """Dimension keys whose h-1 attribute equals ``value``."""
    return [
        row[0] for row in dims[d].scan() if h1(d, row[0]) == value
    ]


class TestBTreeSelect:
    def test_matches_bitmap_algorithm(self, star_db):
        db, dims, fact, fact_rows = star_db
        trees = [fact_btree(db, d) for d in range(3)]
        selected = [h1(0, 0), h1(1, 1), h1(2, 0)]
        selections = [
            (trees[d], keys_matching(dims, d, selected[d])) for d in range(3)
        ]
        rows = btree_select_consolidate(fact, join_specs(dims), selections, "volume")

        key_pos = [fact.schema.index_of(f"d{d}") for d in range(3)]
        bitmaps = [
            db.create_bitmap_index(
                f"bm{d}",
                len(fact),
                (h1(d, row[key_pos[d]]) for row in fact.scan()),
            )
            for d in range(3)
        ]
        expected = bitmap_select_consolidate(
            fact,
            join_specs(dims),
            [(bitmaps[d], [selected[d]]) for d in range(3)],
            "volume",
        )
        assert rows == expected

    def test_empty_intersection(self, star_db):
        db, dims, fact, _ = star_db
        tree = fact_btree(db, 0)
        rows = btree_select_consolidate(
            fact, join_specs(dims), [(tree, [9999])], "volume"
        )
        assert rows == []

    def test_counters(self, star_db):
        db, dims, fact, _ = star_db
        tree = fact_btree(db, 0)
        counters = Counters()
        keys = keys_matching(dims, 0, h1(0, 0))
        btree_select_consolidate(
            fact, join_specs(dims), [(tree, keys)], "volume", counters=counters
        )
        assert counters.get("btree_probes") == len(keys)
        assert counters.get("selected_tuples") > 0

    def test_requires_a_selection(self, star_db):
        _, dims, fact, _ = star_db
        with pytest.raises(QueryError):
            btree_select_consolidate(fact, join_specs(dims), [], "volume")

    def test_requires_group_dimensions(self, star_db):
        db, dims, fact, _ = star_db
        tree = fact_btree(db, 0)
        with pytest.raises(QueryError):
            btree_select_consolidate(fact, [], [(tree, [0])], "volume")
