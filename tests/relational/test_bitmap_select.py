"""Tests for bitmap-driven consolidation with selection (§4.5)."""

import pytest

from repro.errors import QueryError
from repro.index import BitmapIndex
from repro.relational import bitmap_select_consolidate, star_join_consolidate
from repro.util.stats import Counters

from .conftest import FANOUTS, h1, join_specs, reference_consolidation


def build_join_bitmap(db, fact, dims, d):
    """Join bitmap index for dimension ``d``'s h-1 attribute."""
    key_pos = fact.schema.index_of(f"d{d}")
    values = (h1(d, row[key_pos]) for row in fact.scan())
    return db.create_bitmap_index(f"fact.h{d}1.bm", len(fact), values)


@pytest.fixture
def bitmaps(star_db):
    db, dims, fact, fact_rows = star_db
    return [build_join_bitmap(db, fact, dims, d) for d in range(3)]


class TestBitmapSelect:
    def test_selection_on_all_dimensions(self, star_db, bitmaps):
        _, dims, fact, fact_rows = star_db
        selected = [h1(0, 0), h1(1, 1), h1(2, 0)]
        rows = bitmap_select_consolidate(
            fact,
            join_specs(dims),
            [(bitmaps[d], [selected[d]]) for d in range(3)],
            "volume",
        )
        surviving = [
            r
            for r in fact_rows
            if all(h1(d, r[d]) == selected[d] for d in range(3))
        ]
        expected = reference_consolidation(
            surviving, [lambda k, d=d: h1(d, k) for d in range(3)]
        )
        assert rows == expected

    def test_empty_selection_returns_no_rows(self, star_db, bitmaps):
        _, dims, fact, _ = star_db
        rows = bitmap_select_consolidate(
            fact,
            join_specs(dims),
            [(bitmaps[0], ["no-such-value"])],
            "volume",
        )
        assert rows == []

    def test_no_selection_equals_star_join(self, star_db, bitmaps):
        _, dims, fact, _ = star_db
        with_bitmaps = bitmap_select_consolidate(
            fact, join_specs(dims), [], "volume"
        )
        plain = star_join_consolidate(fact, join_specs(dims), "volume")
        assert with_bitmaps == plain

    def test_in_list_selection_ors_bitmaps(self, star_db, bitmaps):
        _, dims, fact, fact_rows = star_db
        values = [h1(1, k) for k in range(FANOUTS[1])]  # all values: no-op
        rows = bitmap_select_consolidate(
            fact, join_specs(dims), [(bitmaps[1], values)], "volume"
        )
        assert rows == star_join_consolidate(fact, join_specs(dims), "volume")

    def test_counters_track_selectivity(self, star_db, bitmaps):
        _, dims, fact, fact_rows = star_db
        counters = Counters()
        bitmap_select_consolidate(
            fact,
            join_specs(dims),
            [(bitmaps[0], [h1(0, 0)])],
            "volume",
            counters=counters,
        )
        expected = sum(1 for r in fact_rows if h1(0, r[0]) == h1(0, 0))
        assert counters.get("selected_tuples") == expected
        assert counters.get("bitmaps_fetched") == 1

    def test_length_mismatch_rejected(self, star_db, bitmaps):
        db, dims, fact, _ = star_db
        bad = BitmapIndex(db.fm, "bad", len(fact) + 1)
        with pytest.raises(QueryError):
            bitmap_select_consolidate(
                fact, join_specs(dims), [(bad, ["x"])], "volume"
            )

    def test_group_dimensions_required(self, star_db, bitmaps):
        _, _, fact, _ = star_db
        with pytest.raises(QueryError):
            bitmap_select_consolidate(fact, [], [], "volume")
