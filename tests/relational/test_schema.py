"""Tests for relational schemas."""

import pytest

from repro.errors import SchemaError
from repro.relational import Column, Schema


class TestSchema:
    def test_names_in_order(self):
        schema = Schema([("a", "int32"), ("b", "str:4")])
        assert schema.names == ("a", "b")

    def test_index_of(self):
        schema = Schema([("a", "int32"), ("b", "int64")])
        assert schema.index_of("b") == 1

    def test_unknown_column(self):
        schema = Schema([("a", "int32")])
        with pytest.raises(SchemaError):
            schema.index_of("zz")

    def test_duplicate_names_rejected(self):
        with pytest.raises(SchemaError):
            Schema([("a", "int32"), ("a", "int64")])

    def test_bad_type_rejected(self):
        with pytest.raises(SchemaError):
            Schema([("a", "varchar")])

    def test_record_size(self):
        schema = Schema([("a", "int32"), ("b", "int32"), ("m", "int32")])
        assert schema.record_size == 12

    def test_column_lookup(self):
        schema = Schema([Column("x", "float64")])
        assert schema.column("x").ctype == "float64"

    def test_text_roundtrip(self):
        schema = Schema([("d0", "int32"), ("h01", "str:8"), ("v", "int64")])
        assert Schema.from_text(schema.to_text()) == schema

    def test_from_text_rejects_garbage(self):
        with pytest.raises(SchemaError):
            Schema.from_text("nonsense")

    def test_equality(self):
        assert Schema([("a", "int32")]) == Schema([("a", "int32")])
        assert Schema([("a", "int32")]) != Schema([("a", "int64")])
