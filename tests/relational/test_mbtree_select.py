"""Tests for the skipping multi-attribute B-tree baseline."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.index import BTree
from repro.relational import skip_scan
from repro.storage import BufferPool, FileManager, SimulatedDisk
from repro.util.stats import Counters


def make_fm(page_size=512):
    disk = SimulatedDisk(page_size=page_size)
    return FileManager(BufferPool(disk, capacity_bytes=256 * page_size))


def composite_tree(fm, keys):
    return BTree.bulk_load(fm, "mb", [(k, i) for i, k in enumerate(keys)])


class TestTupleKeys:
    def test_tuple_key_roundtrip(self):
        fm = make_fm()
        tree = BTree.create(fm, "t")
        tree.insert((1, 2, 3), 100)
        tree.insert((1, 2, 4), 200)
        assert tree.search((1, 2, 3)) == [100]
        assert tree.search((9, 9, 9)) == []

    def test_lexicographic_order(self):
        fm = make_fm()
        tree = BTree.create(fm, "t")
        keys = [(1, 9), (0, 5), (1, 0), (0, 9), (2, 0)]
        for i, key in enumerate(keys):
            tree.insert(key, i)
        tree.validate()
        assert [k for k, _ in tree.items()] == sorted(keys)

    def test_mixed_element_types(self):
        fm = make_fm()
        tree = BTree.create(fm, "t")
        tree.insert((1, "apple"), 1)
        tree.insert((1, "banana"), 2)
        assert tree.search((1, "apple")) == [1]

    def test_scalar_key_rejected_in_tuple_tree(self):
        from repro.errors import BTreeError

        fm = make_fm()
        tree = BTree.create(fm, "t")
        tree.insert((1, 2), 1)
        with pytest.raises(BTreeError):
            tree.insert(5, 2)

    def test_nested_tuple_rejected(self):
        from repro.errors import BTreeError

        fm = make_fm()
        tree = BTree.create(fm, "t")
        with pytest.raises(BTreeError):
            tree.insert((1, (2, 3)), 1)

    def test_bulk_load_tuple_keys(self):
        fm = make_fm()
        keys = list(itertools.product(range(8), range(6), range(4)))
        tree = composite_tree(fm, keys)
        tree.validate()
        assert tree.search((3, 2, 1)) == [keys.index((3, 2, 1))]


class TestSkipScan:
    def brute_force(self, keys, allowed):
        return [
            i
            for i, key in enumerate(sorted(keys))
            if all(key[d] in set(allowed[d]) for d in range(len(allowed)))
        ]

    def test_basic_selection(self):
        fm = make_fm()
        keys = sorted(itertools.product(range(6), range(5), range(4)))
        tree = composite_tree(fm, keys)
        allowed = [[1, 4], [0, 2], [3]]
        expected = self.brute_force(keys, allowed)
        assert skip_scan(tree, allowed) == expected

    def test_all_allowed_is_full_scan(self):
        fm = make_fm()
        keys = sorted(itertools.product(range(4), range(4)))
        tree = composite_tree(fm, keys)
        allowed = [list(range(4)), list(range(4))]
        assert skip_scan(tree, allowed) == list(range(16))

    def test_empty_dimension_list(self):
        fm = make_fm()
        keys = sorted(itertools.product(range(3), range(3)))
        tree = composite_tree(fm, keys)
        assert skip_scan(tree, [[1], []]) == []

    def test_no_matches(self):
        fm = make_fm()
        keys = sorted(itertools.product(range(3), range(3)))
        tree = composite_tree(fm, keys)
        assert skip_scan(tree, [[99], [0]]) == []

    def test_sparse_keys(self):
        # not every combination exists — the skip must not invent cells
        fm = make_fm()
        keys = [(0, 0), (0, 3), (2, 1), (2, 3), (4, 0), (4, 4)]
        tree = composite_tree(fm, sorted(keys))
        allowed = [[0, 2, 4], [0, 3]]
        expected = self.brute_force(keys, allowed)
        assert skip_scan(tree, allowed) == expected

    def test_seek_counter_below_full_scan(self):
        fm = make_fm()
        keys = sorted(itertools.product(range(10), range(10), range(10)))
        tree = composite_tree(fm, keys)
        counters = Counters()
        allowed = [[3], [5], list(range(10))]
        hits = skip_scan(tree, allowed, counters)
        assert len(hits) == 10
        # the scan seeks a handful of times instead of walking 1000 keys
        assert counters.get("mbtree_seeks") <= 5
        assert counters.get("mbtree_hits") == 10

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(
            st.tuples(st.integers(0, 6), st.integers(0, 6), st.integers(0, 6)),
            min_size=1,
            max_size=80,
            unique=True,
        ),
        st.lists(st.integers(0, 6), min_size=1, max_size=4, unique=True),
        st.lists(st.integers(0, 6), min_size=1, max_size=4, unique=True),
        st.lists(st.integers(0, 6), min_size=1, max_size=4, unique=True),
    )
    def test_matches_brute_force_property(self, keys, a0, a1, a2):
        fm = make_fm()
        tree = composite_tree(fm, sorted(keys))
        allowed = [a0, a1, a2]
        assert skip_scan(tree, allowed) == self.brute_force(keys, allowed)


class TestEngineBackend:
    @pytest.fixture(scope="class")
    def engine(self):
        from repro.data import (
            SyntheticCubeConfig,
            cube_schema_for,
            generate_dimension_rows,
            generate_fact_rows,
        )
        from repro.olap import OlapEngine

        config = SyntheticCubeConfig(
            name="mb",
            dim_sizes=(8, 6, 10),
            n_valid=200,
            chunk_shape=(4, 3, 5),
            fanout1=3,
            seed=7,
        )
        engine = OlapEngine(page_size=1024, pool_bytes=1024 * 1024)
        engine.load_cube(
            cube_schema_for(config),
            generate_dimension_rows(config),
            generate_fact_rows(config),
            chunk_shape=config.chunk_shape,
            fact_mbtree=True,
        )
        return engine

    def test_matches_bitmap(self, engine):
        from repro.olap import ConsolidationQuery, SelectionPredicate

        query = ConsolidationQuery.build(
            "mb",
            group_by={"dim0": "h01", "dim2": "h21"},
            selections=[
                SelectionPredicate("dim1", "h11", values=("AA1",)),
                SelectionPredicate("dim2", "h21", values=("AA0", "AA2")),
            ],
        )
        mbtree = engine.query(query, backend="mbtree").rows
        bitmap = engine.query(query, backend="bitmap").rows
        assert mbtree == bitmap

    def test_requires_selection(self, engine):
        from repro.errors import PlanError
        from repro.olap import ConsolidationQuery

        query = ConsolidationQuery.build("mb", group_by={"dim0": "h01"})
        with pytest.raises(PlanError):
            engine.query(query, backend="mbtree")

    def test_unavailable_without_flag(self, loaded=None):
        from repro.data import (
            SyntheticCubeConfig,
            cube_schema_for,
            generate_dimension_rows,
            generate_fact_rows,
        )
        from repro.errors import PlanError
        from repro.olap import ConsolidationQuery, OlapEngine, SelectionPredicate

        config = SyntheticCubeConfig(
            name="nomb", dim_sizes=(4, 4), n_valid=8, chunk_shape=(2, 2)
        )
        engine = OlapEngine(page_size=1024, pool_bytes=256 * 1024)
        engine.load_cube(
            cube_schema_for(config),
            generate_dimension_rows(config),
            generate_fact_rows(config),
        )
        query = ConsolidationQuery.build(
            "nomb",
            group_by={"dim0": "h01"},
            selections=[SelectionPredicate("dim1", "h11", values=("AA1",))],
        )
        with pytest.raises(PlanError):
            engine.query(query, backend="mbtree")
