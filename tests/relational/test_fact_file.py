"""Tests for the §4.4 fact file."""

import pytest

from repro.errors import FileError
from repro.relational import FactFile, Schema
from repro.util import Bitset

FACT_SCHEMA = Schema(
    [
        ("d0", "int32"),
        ("d1", "int32"),
        ("d2", "int32"),
        ("d3", "int32"),
        ("volume", "int32"),
    ]
)


def rows(n):
    return [(i % 4, i % 3, i % 5, i % 7, i) for i in range(n)]


class TestFactFile:
    def test_append_and_positional_get(self, fm):
        fact = FactFile.create(fm, "fact", FACT_SCHEMA)
        data = rows(10)
        for row in data:
            assert fact.append(row) == data.index(row)
        assert fact.get(7) == data[7]

    def test_get_out_of_range(self, fm):
        fact = FactFile.create(fm, "fact", FACT_SCHEMA)
        fact.append(rows(1)[0])
        with pytest.raises(FileError):
            fact.get(1)

    def test_scan_order_and_page_spill(self, fm):
        fact = FactFile.create(fm, "fact", FACT_SCHEMA)
        data = rows(500)  # 20-byte records on 1 KiB pages -> ~10 pages
        fact.append_many(data)
        assert list(fact.scan()) == data
        assert fact._file.npages >= 9

    def test_records_per_page_arithmetic(self, fm):
        fact = FactFile.create(fm, "fact", FACT_SCHEMA)
        assert fact.records_per_page == fm.pool.disk.page_size // 20
        data = rows(fact.records_per_page + 1)
        fact.append_many(data)
        # the second page's first tuple is reachable positionally
        assert fact.get(fact.records_per_page) == data[-1]

    def test_no_per_record_overhead(self, fm):
        fact = FactFile.create(fm, "fact", FACT_SCHEMA)
        fact.append_many(rows(1000))
        page = fm.pool.disk.page_size
        data_pages = -(-1000 // fact.records_per_page)
        # footprint = header + extent-rounded data pages, nothing per record
        extent = fact._file.extent_pages
        extents = -(-data_pages // extent)
        assert fact.size_bytes() == page * (1 + extents * extent)

    def test_fetch_bitmap_returns_selected(self, fm):
        fact = FactFile.create(fm, "fact", FACT_SCHEMA)
        data = rows(300)
        fact.append_many(data)
        wanted = [5, 57, 58, 120, 299]
        bits = Bitset.from_indices(300, wanted)
        assert list(fact.fetch_bitmap(bits)) == [data[i] for i in wanted]

    def test_fetch_bitmap_rejects_wrong_length(self, fm):
        fact = FactFile.create(fm, "fact", FACT_SCHEMA)
        fact.append_many(rows(10))
        with pytest.raises(FileError):
            list(fact.fetch_bitmap(Bitset(9)))

    def test_fetch_bitmap_reads_each_page_once(self, fm):
        fact = FactFile.create(fm, "fact", FACT_SCHEMA)
        fact.append_many(rows(200))
        fm.pool.clear()
        fm.pool.disk.reset_stats()
        per_page = fact.records_per_page
        bits = Bitset.from_indices(200, [0, 1, 2, per_page, per_page + 1])
        list(fact.fetch_bitmap(bits))
        # five tuples on two pages: at most a couple of header reads extra
        assert fm.pool.disk.counters.get("pages_read") <= 4

    def test_survives_cold_reopen(self, fm):
        fact = FactFile.create(fm, "fact", FACT_SCHEMA)
        data = rows(42)
        fact.append_many(data)
        fm.pool.clear()
        reopened = FactFile.open(fm, "fact")
        assert len(reopened) == 42
        assert reopened.get(41) == data[41]

    def test_record_larger_than_page_rejected(self, pool):
        from repro.storage import FileManager

        fm = FileManager(pool)
        wide = Schema([("s", f"str:{pool.disk.page_size * 2}")])
        with pytest.raises(FileError):
            FactFile.create(fm, "fact", wide)

    def test_update_in_place(self, fm):
        fact = FactFile.create(fm, "fact", FACT_SCHEMA)
        fact.append_many(rows(20))
        fact.update(7, (9, 9, 9, 9, 999))
        assert fact.get(7) == (9, 9, 9, 9, 999)
        assert len(fact) == 20
        assert fact.get(6) == rows(20)[6]

    def test_update_out_of_range(self, fm):
        fact = FactFile.create(fm, "fact", FACT_SCHEMA)
        fact.append(rows(1)[0])
        with pytest.raises(FileError):
            fact.update(1, rows(1)[0])

    def test_empty_scan(self, fm):
        fact = FactFile.create(fm, "fact", FACT_SCHEMA)
        assert list(fact.scan()) == []
