"""A small star-schema fixture shared by the relational algorithm tests.

Three dimensions (sizes 4, 3, 5), a fact table with one tuple per
selected cell, and a pure-Python reference implementation of
consolidation used as the oracle.
"""

import itertools
import random

import pytest

from repro.relational import Database, DimensionJoinSpec, Schema

DIM_SIZES = (4, 3, 5)
FANOUTS = (2, 3, 2)  # distinct h-1 values per dimension


def h1(dim, key):
    return f"A{dim}{key % FANOUTS[dim]}"


def h2(dim, key):
    return f"B{dim}{(key % FANOUTS[dim]) % 2}"


@pytest.fixture
def star_db():
    db = Database(page_size=1024, pool_bytes=256 * 1024)
    dim_schema = lambda d: Schema(
        [(f"d{d}", "int32"), (f"h{d}1", "str:8"), (f"h{d}2", "str:8")]
    )
    dims = []
    for d, size in enumerate(DIM_SIZES):
        table = db.create_heap_table(f"dim{d}", dim_schema(d))
        table.insert_many([(k, h1(d, k), h2(d, k)) for k in range(size)])
        dims.append(table)

    fact_schema = Schema(
        [("d0", "int32"), ("d1", "int32"), ("d2", "int32"), ("volume", "int32")]
    )
    fact = db.create_fact_table("fact", fact_schema)
    rng = random.Random(42)
    cells = [
        c
        for c in itertools.product(*[range(s) for s in DIM_SIZES])
        if rng.random() < 0.6
    ]
    fact_rows = [c + (rng.randint(1, 100),) for c in cells]
    fact.append_many(fact_rows)
    return db, dims, fact, fact_rows


def join_specs(dims, fact_keys=("d0", "d1", "d2"), level=1):
    return [
        DimensionJoinSpec(dims[d], f"d{d}", fact_keys[d], f"h{d}{level}")
        for d in range(len(dims))
    ]


def reference_consolidation(fact_rows, group_fns, measure_index=3):
    """Oracle: group fact rows by mapped dimension values and sum."""
    groups = {}
    for row in fact_rows:
        key = tuple(fn(row[d]) for d, fn in enumerate(group_fns))
        groups[key] = groups.get(key, 0) + row[measure_index]
    return sorted((k + (v,) for k, v in groups.items()))
