"""Tests for the Starjoin consolidation operator."""

import pytest

from repro.errors import QueryError
from repro.relational import DimensionJoinSpec, star_join_consolidate
from repro.relational.star_join import build_dimension_hash
from repro.util.stats import Counters

from .conftest import h1, h2, join_specs, reference_consolidation


class TestStarJoin:
    def test_matches_reference_on_h1(self, star_db):
        _, dims, fact, fact_rows = star_db
        rows = star_join_consolidate(fact, join_specs(dims), "volume")
        expected = reference_consolidation(
            fact_rows, [lambda k, d=d: h1(d, k) for d in range(3)]
        )
        assert rows == expected

    def test_matches_reference_on_h2(self, star_db):
        _, dims, fact, fact_rows = star_db
        rows = star_join_consolidate(fact, join_specs(dims, level=2), "volume")
        expected = reference_consolidation(
            fact_rows, [lambda k, d=d: h2(d, k) for d in range(3)]
        )
        assert rows == expected

    def test_subset_of_dimensions_aggregates_rest(self, star_db):
        _, dims, fact, fact_rows = star_db
        specs = join_specs(dims)[:2]
        rows = star_join_consolidate(fact, specs, "volume")
        expected = reference_consolidation(
            fact_rows[:], [lambda k: h1(0, k), lambda k: h1(1, k)]
        )
        assert rows == expected

    def test_total_volume_preserved(self, star_db):
        _, dims, fact, fact_rows = star_db
        rows = star_join_consolidate(fact, join_specs(dims), "volume")
        assert sum(r[-1] for r in rows) == sum(r[3] for r in fact_rows)

    def test_count_aggregate(self, star_db):
        _, dims, fact, fact_rows = star_db
        rows = star_join_consolidate(
            fact, join_specs(dims), "volume", aggregate="count"
        )
        assert sum(r[-1] for r in rows) == len(fact_rows)

    def test_counters_populated(self, star_db):
        _, dims, fact, fact_rows = star_db
        counters = Counters()
        star_join_consolidate(fact, join_specs(dims), "volume", counters=counters)
        assert counters.get("fact_tuples_scanned") == len(fact_rows)
        assert counters.get("result_groups") > 0

    def test_dangling_fact_tuples_skipped(self, star_db):
        _, dims, fact, fact_rows = star_db
        fact.append((999, 0, 0, 5))  # d0=999 has no dimension row
        counters = Counters()
        rows = star_join_consolidate(
            fact, join_specs(dims), "volume", counters=counters
        )
        assert counters.get("dangling_fact_tuples") == 1
        assert sum(r[-1] for r in rows) == sum(r[3] for r in fact_rows)

    def test_no_dimensions_rejected(self, star_db):
        _, _, fact, _ = star_db
        with pytest.raises(QueryError):
            star_join_consolidate(fact, [], "volume")

    def test_build_dimension_hash(self, star_db):
        _, dims, _, _ = star_db
        spec = join_specs(dims)[0]
        table = build_dimension_hash(spec)
        assert table[0] == h1(0, 0)
        assert len(table) == len(dims[0])
