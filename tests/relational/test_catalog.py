"""Tests for the Database catalog."""

import pytest

from repro.errors import CatalogError
from repro.relational import Database, Schema

DIM = Schema([("d0", "int32"), ("h01", "str:8")])
FACT = Schema([("d0", "int32"), ("volume", "int32")])


@pytest.fixture
def db():
    return Database(page_size=1024, pool_bytes=64 * 1024)


class TestTables:
    def test_create_and_lookup(self, db):
        heap = db.create_heap_table("dim0", DIM)
        fact = db.create_fact_table("fact", FACT)
        assert db.table("dim0") is heap
        assert db.table("fact") is fact
        assert db.table_names() == ["dim0", "fact"]

    def test_duplicate_name_rejected(self, db):
        db.create_heap_table("t", DIM)
        with pytest.raises(CatalogError):
            db.create_fact_table("t", FACT)

    def test_unknown_table(self, db):
        with pytest.raises(CatalogError):
            db.table("ghost")


class TestIndexes:
    def test_btree_index_maps_to_positions(self, db):
        fact = db.create_fact_table("fact", FACT)
        fact.append_many([(i % 3, i) for i in range(30)])
        tree = db.create_btree_index("fact.d0.idx", "fact", "d0")
        assert tree.search(1) == list(range(1, 30, 3))
        assert db.btree("fact.d0.idx") is tree

    def test_bitmap_index_registered(self, db):
        db.create_fact_table("fact", FACT)
        index = db.create_bitmap_index("fact.h01.bm", 4, ["a", "b", "a", "b"])
        assert db.bitmap("fact.h01.bm") is index
        assert "fact.h01.bm" in db.index_names()

    def test_unknown_index(self, db):
        with pytest.raises(CatalogError):
            db.btree("nope")
        with pytest.raises(CatalogError):
            db.bitmap("nope")

    def test_index_name_collision_with_table(self, db):
        db.create_heap_table("x", DIM)
        with pytest.raises(CatalogError):
            db.create_btree_index("x", "x", "d0")


class TestMeasurement:
    def test_cold_cache_forces_disk_reads(self, db):
        table = db.create_heap_table("dim0", DIM)
        table.insert_many([(i, "a") for i in range(100)])
        db.cold_cache()
        assert db.stats() == {}
        list(table.scan())
        assert db.stats()["pages_read"] > 0

    def test_warm_scan_reads_nothing(self, db):
        table = db.create_heap_table("dim0", DIM)
        table.insert_many([(i, "a") for i in range(100)])
        list(table.scan())  # warm the pool
        db.reset_stats()
        list(table.scan())
        assert db.stats().get("pages_read", 0) == 0

    def test_sim_io_seconds_positive_when_cold(self, db):
        table = db.create_heap_table("dim0", DIM)
        table.insert_many([(i, "a") for i in range(200)])
        db.cold_cache()
        list(table.scan())
        assert db.sim_io_seconds() > 0
