"""Shared fixtures: a small simulated disk / buffer pool / file manager."""

import pytest

from repro.storage import BufferPool, FileManager, SimulatedDisk


@pytest.fixture
def disk():
    return SimulatedDisk(page_size=1024)


@pytest.fixture
def pool(disk):
    return BufferPool(disk, capacity_bytes=64 * 1024)


@pytest.fixture
def fm(pool):
    return FileManager(pool)
