"""Tests for experiment-table rendering."""

import os

import pytest

from repro.bench.report import ExperimentTable
from repro.olap.engine import QueryResult


def result(cost=1.0, io=0.4):
    return QueryResult(
        rows=[("a", 1)],
        backend="array",
        mode="interpreted",
        elapsed_s=cost - io,
        sim_io_s=io,
        stats={"pages_read": 10},
    )


class TestExperimentTable:
    def test_add_and_value(self):
        table = ExperimentTable("t1", "title", "x")
        table.add("array", 50, result(cost=1.5))
        assert table.value("array", 50) == pytest.approx(1.5)

    def test_add_value_raw(self):
        table = ExperimentTable("t1", "title", "x")
        table.add_value("bytes", "dense", 1234)
        assert table.value("bytes", "dense") == 1234

    def test_render_contains_all_cells(self):
        table = ExperimentTable("t1", "My Title", "density", expected="a<b")
        table.add("array", 0.1, result(cost=1.2345))
        table.add("starjoin", 0.1, result(cost=2.5))
        text = table.render()
        assert "My Title" in text
        assert "a<b" in text
        assert "1.2345" in text
        assert "2.5000" in text
        assert "density" in text

    def test_render_missing_cell_is_dash(self):
        table = ExperimentTable("t1", "t", "x")
        table.add("a", 1, result())
        table.add("b", 2, result())
        lines = table.render().splitlines()
        assert any("-" in line and "1" in line for line in lines[4:])

    def test_x_order_is_insertion_order(self):
        table = ExperimentTable("t1", "t", "x")
        table.add("a", 100, result())
        table.add("a", 1, result())
        rows = table.render().splitlines()[-2:]
        assert rows[0].startswith("100")
        assert rows[1].startswith("1")

    def test_save_writes_file(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
        table = ExperimentTable("exp9", "t", "x")
        table.add("a", 1, result())
        path = table.save()
        assert os.path.dirname(path) == str(tmp_path)
        with open(path, encoding="utf-8") as handle:
            assert "exp9" in handle.read()

    def test_series_names(self):
        table = ExperimentTable("t", "t", "x")
        table.add("one", 1, result())
        table.add("two", 1, result())
        assert table.series_names() == ["one", "two"]
