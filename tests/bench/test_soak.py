"""The soak harness: bucketing math, gating rules, one real seeded run."""

import json
from pathlib import Path

import pytest

from repro.bench.soak import (
    INJECTED_RULE,
    _bucketize,
    _gate,
    run_soak,
    write_soak_artifact,
)

REPO_ROOT = Path(__file__).resolve().parents[2]


class TestBucketize:
    def test_events_land_in_their_buckets(self):
        events = [
            (0.1, 0.010, True),
            (0.9, 0.020, False),
            (1.5, 0.100, True),
        ]
        buckets = _bucketize(events, bucket_s=1.0, seconds=3.0)
        assert [b["count"] for b in buckets] == [2, 1, 0]
        assert [b["t_s"] for b in buckets] == [0.0, 1.0, 2.0]
        assert buckets[0]["qps"] == 2.0
        assert buckets[0]["hit_rate"] == 0.5
        assert buckets[1]["p95_s"] == pytest.approx(0.1)
        assert buckets[2]["hit_rate"] == 0.0

    def test_late_stragglers_clamp_into_the_last_bucket(self):
        # a request issued just before the deadline can finish after it
        buckets = _bucketize([(9.99, 0.5, False)], bucket_s=1.0, seconds=5.0)
        assert len(buckets) == 5
        assert buckets[-1]["count"] == 1

    def test_fractional_tail_gets_its_own_bucket(self):
        assert len(_bucketize([], bucket_s=1.0, seconds=2.5)) == 3


def _healthy_payload(**overrides):
    payload = {
        "queries": 100,
        "buckets": [{"count": 100}],
        "timeseries": {"samples_taken": 10},
        "alerts": {"unexpected_rules": [], "injected": None},
        "profiler": {
            "span_samples": 90,
            "other_samples": 10,
            "attributed_fraction": 0.9,
        },
    }
    payload.update(overrides)
    return payload


class TestGate:
    def test_healthy_payload_passes(self):
        failures = []
        _gate(_healthy_payload(), failures)
        assert failures == []

    def test_each_failure_branch(self):
        cases = [
            ({"queries": 0}, "no queries"),
            ({"buckets": [{"count": 0}]}, "p95 series empty"),
            ({"timeseries": {"samples_taken": 3}}, "fewer than 4"),
            (
                {"alerts": {"unexpected_rules": ["x"], "injected": None}},
                "unexpected alert",
            ),
        ]
        for overrides, needle in cases:
            failures = []
            _gate(_healthy_payload(**overrides), failures)
            assert any(needle in f for f in failures), needle

    def test_injected_rule_must_fire_once_and_resolve(self):
        bad_cycles = [
            ({"firings": 0, "resolved": False, "transitions": []}, 3),
            (
                {
                    "firings": 2,
                    "resolved": True,
                    "transitions": ["firing", "resolved", "firing", "resolved"],
                },
                2,
            ),
            (
                {"firings": 1, "resolved": True,
                 "transitions": ["firing", "resolved"]},
                0,
            ),
        ]
        for injected, expected_failures in bad_cycles:
            injected = {"rule": INJECTED_RULE, **injected}
            failures = []
            _gate(
                _healthy_payload(
                    alerts={"unexpected_rules": [], "injected": injected}
                ),
                failures,
            )
            assert len(failures) == expected_failures, injected

    def test_low_attribution_fails_only_when_busy_enough(self):
        low = {
            "span_samples": 1,
            "other_samples": 99,
            "attributed_fraction": 0.01,
        }
        failures = []
        _gate(_healthy_payload(profiler=low), failures)
        assert any("attributed only" in f for f in failures)
        barely_busy = {
            "span_samples": 1,
            "other_samples": 5,
            "attributed_fraction": 0.17,
        }
        failures = []
        _gate(_healthy_payload(profiler=barely_busy), failures)
        assert failures == []


@pytest.mark.slow
class TestSoakRuns:
    def test_injected_breach_lifecycle(self, tmp_path):
        payload = run_soak(
            scale="small", seconds=6.0, seed=0, clients=2,
            inject_breach=True,
        )
        assert payload["failures"] == []
        assert payload["queries"] > 0
        assert any(b["count"] > 0 for b in payload["buckets"])
        injected = payload["alerts"]["injected"]
        assert injected["firings"] == 1
        assert injected["resolved"] is True
        assert injected["transitions"] == ["firing", "resolved"]
        assert payload["alerts"]["unexpected_rules"] == []
        # the artifact round-trips and validates against the shipped schema
        path = tmp_path / "BENCH_soak.json"
        write_soak_artifact(payload, str(path))
        from repro.util.jsonschema_lite import validate

        schema = json.loads(
            (
                REPO_ROOT / "benchmarks" / "schemas" / "bench_soak.schema.json"
            ).read_text(encoding="utf-8")
        )
        validate(json.loads(path.read_text(encoding="utf-8")), schema)

    def test_healthy_path_stays_silent(self):
        payload = run_soak(scale="small", seconds=2.0, seed=1, clients=2)
        assert payload["failures"] == []
        assert payload["alerts"]["injected"] is None
        assert payload["alerts"]["events"] == []
        assert payload["alerts"]["firing_at_end"] == []
