"""Tests for the experiment harness."""

import pytest

from repro.bench import (
    aggregate_stats,
    bench_settings,
    build_cube_engine,
    query1_for,
    query2_for,
    query3_for,
    run_cold,
)
from repro.data import SyntheticCubeConfig

TINY = SyntheticCubeConfig(
    name="tiny",
    dim_sizes=(6, 6, 6, 10),
    n_valid=150,
    chunk_shape=(3, 3, 3, 5),
    fanout1=3,
)


class TestSettings:
    def test_scales_have_settings(self):
        for scale in ("small", "medium", "paper"):
            settings = bench_settings(scale)
            assert settings.page_size > 0
            assert settings.pool_bytes > settings.page_size
            assert settings.disk_model.seek_ms == 10.0

    def test_page_size_grows_with_scale(self):
        assert (
            bench_settings("small").page_size
            < bench_settings("medium").page_size
            < bench_settings("paper").page_size
        )

    def test_env_default_is_medium(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert bench_settings().scale == "medium"

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "small")
        assert bench_settings().scale == "small"


class TestQueries:
    def test_query1_groups_every_dimension(self):
        q = query1_for(TINY)
        assert q.group_dims == ("dim0", "dim1", "dim2", "dim3")
        assert q.selections == ()

    def test_query2_selects_every_dimension(self):
        q = query2_for(TINY)
        assert len(q.selections) == 4
        assert all(s.values == ("AA1",) for s in q.selections)

    def test_query3_drops_the_fourth_dimension(self):
        q = query3_for(TINY)
        assert q.group_dims == ("dim0", "dim1", "dim2")
        assert len(q.selections) == 3


class TestBuildAndRun:
    @pytest.fixture(scope="class")
    def engine(self):
        return build_cube_engine(TINY, bench_settings("small"))

    def test_both_designs_built(self, engine):
        state = engine.cube("tiny")
        assert state.array is not None
        assert state.fact is not None
        assert len(state.fact) == TINY.n_valid

    def test_bitmaps_on_h1_only(self, engine):
        state = engine.cube("tiny")
        assert state.bitmap_attrs == {
            (f"dim{d}", f"h{d}1") for d in range(4)
        }

    def test_run_cold_zeroes_then_measures(self, engine):
        result = run_cold(engine, query1_for(TINY), "array")
        assert result.sim_io_s > 0
        assert result.rows

    def test_backends_agree_on_all_three_queries(self, engine):
        for query in (query1_for(TINY), query2_for(TINY), query3_for(TINY)):
            array = run_cold(engine, query, "array")
            relational = run_cold(
                engine, query, "bitmap" if query.selections else "starjoin"
            )
            assert array.rows == relational.rows

    def test_array_only_build(self):
        engine = build_cube_engine(
            TINY, bench_settings("small"), backends=("array",)
        )
        assert engine.cube("tiny").fact is None

    def test_aggregate_stats_sums_runs(self, engine):
        query = query1_for(TINY)
        a = run_cold(engine, query, "array")
        b = run_cold(engine, query, "array")
        total = aggregate_stats([a, b])
        assert total["pages_read"] == (
            a.stats["pages_read"] + b.stats["pages_read"]
        )
