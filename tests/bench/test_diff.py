"""bench-diff: artifact loading, the p95 gate, and archive rotation."""

import json

import pytest

from repro.bench.diff import (
    DEFAULT_MAX_P95_REGRESS,
    MIN_COMPARABLE_S,
    diff_artifacts,
    load_artifact,
)
from repro.bench.serving_smoke import archive_artifact, latest_artifact


def _artifact(scale="small", p50=0.010, p95=0.020, p99=0.030, **extra):
    payload = {
        "scale": scale,
        "threads": 4,
        "queries": 64,
        "concurrent": {
            "p50_s": p50,
            "p95_s": p95,
            "p99_s": p99,
            "hit_rate": 0.5,
        },
    }
    payload.update(extra)
    return payload


class TestLoadArtifact:
    def test_loads_a_written_artifact(self, tmp_path):
        path = tmp_path / "a.json"
        path.write_text(json.dumps(_artifact()))
        assert load_artifact(str(path))["scale"] == "small"

    def test_rejects_non_artifact_json(self, tmp_path):
        path = tmp_path / "nope.json"
        path.write_text('{"unrelated": true}')
        with pytest.raises(ValueError, match="not a bench-smoke artifact"):
            load_artifact(str(path))

    def test_rejects_non_dict_json(self, tmp_path):
        path = tmp_path / "list.json"
        path.write_text("[1, 2]")
        with pytest.raises(ValueError):
            load_artifact(str(path))

    def test_missing_file_raises_oserror(self, tmp_path):
        with pytest.raises(OSError):
            load_artifact(str(tmp_path / "absent.json"))


class TestDiffGate:
    def test_equal_artifacts_pass(self):
        lines, failures = diff_artifacts(_artifact(), _artifact())
        assert not failures
        assert any("p95 gate" in line and "ok" in line for line in lines)

    def test_small_improvement_passes_and_is_reported(self):
        lines, failures = diff_artifacts(
            _artifact(p95=0.020), _artifact(p95=0.010)
        )
        assert not failures
        assert any("x0.50" in line for line in lines)

    def test_regression_past_limit_fails(self):
        lines, failures = diff_artifacts(
            _artifact(p95=0.010),
            _artifact(p95=0.020),
            max_p95_regress=1.5,
        )
        assert len(failures) == 1
        assert "p95 regressed x2.00" in failures[0]
        assert any(line.startswith("FAIL:") for line in lines)

    def test_default_limit_tolerates_30_percent(self):
        _, failures = diff_artifacts(
            _artifact(p95=0.010),
            _artifact(p95=0.010 * DEFAULT_MAX_P95_REGRESS * 0.99),
        )
        assert not failures

    def test_scale_mismatch_is_a_failure_not_a_gate(self):
        lines, failures = diff_artifacts(
            _artifact(scale="small"), _artifact(scale="medium")
        )
        assert failures and "scale mismatch" in failures[0]
        # comparison stops: no latency ratios for incomparable runs
        assert not any("concurrent.p95_s" in line for line in lines)

    def test_shard_count_mismatch_refuses_to_gate(self):
        lines, failures = diff_artifacts(
            _artifact(shards=1), _artifact(shards=2, executor="thread")
        )
        assert failures and "shard-count mismatch" in failures[0]
        assert not any("concurrent.p95_s" in line for line in lines)

    def test_missing_shards_key_means_single_shard(self):
        # pre-sharding artifacts (no "shards" key) compare as 1-shard
        _, failures = diff_artifacts(_artifact(), _artifact(shards=1))
        assert not failures

    def test_legacy_artifact_notes_instead_of_keyerror(self):
        legacy = _artifact()  # no "shards"/"shard_counters" at all
        modern = _artifact(shards=1, shard_counters={})
        lines, failures = diff_artifacts(legacy, modern)
        assert not failures
        notes = [line for line in lines if "predates shard-aware" in line]
        assert len(notes) == 1 and notes[0].startswith("note: baseline")
        lines, _ = diff_artifacts(modern, legacy)
        assert any(
            "candidate predates shard-aware" in line for line in lines
        )

    def test_both_legacy_artifacts_note_each_side(self):
        lines, failures = diff_artifacts(_artifact(), _artifact())
        assert not failures
        assert (
            sum("predates shard-aware" in line for line in lines) == 2
        )

    def test_matching_shard_counts_still_gate(self):
        _, failures = diff_artifacts(
            _artifact(shards=2, p95=0.010),
            _artifact(shards=2, p95=0.020),
            max_p95_regress=1.5,
        )
        assert len(failures) == 1 and "p95 regressed" in failures[0]

    def test_tiny_baseline_skips_the_gate(self):
        lines, failures = diff_artifacts(
            _artifact(p95=MIN_COMPARABLE_S / 2),
            _artifact(p95=10.0),
        )
        assert not failures
        assert any("skipped" in line for line in lines)

    def test_memory_vintage_notes_instead_of_keyerror(self):
        legacy = _artifact()  # no "memory" key at all
        modern = _artifact(
            shards=1,
            shard_counters={},
            memory={"budget_bytes": 0, "total_resident_bytes": 1000,
                    "stores": {}},
        )
        lines, failures = diff_artifacts(legacy, modern)
        assert not failures
        assert any(
            "predates memory accounting" in line for line in lines
        )
        assert not any("memory.resident_bytes" in line for line in lines)

    def test_memory_line_when_both_sides_have_it(self):
        def with_mem(nbytes):
            return _artifact(
                memory={"budget_bytes": 0,
                        "total_resident_bytes": nbytes,
                        "stores": {}},
            )

        lines, failures = diff_artifacts(with_mem(1_000), with_mem(2_000))
        assert not failures  # informational, never a gate
        mem = next(
            line for line in lines if "memory.resident_bytes" in line
        )
        assert "x2.00" in mem

    def test_fig4_line_only_when_both_have_it(self):
        with_fig4 = _artifact(fig4_cold={"cost_s": 1.0})
        lines, _ = diff_artifacts(with_fig4, with_fig4)
        assert any("fig4_cold.cost_s" in line for line in lines)
        lines, _ = diff_artifacts(_artifact(), with_fig4)
        assert not any("fig4_cold" in line for line in lines)


class TestArchive:
    def test_archive_writes_timestamped_copy(self, tmp_path):
        path = archive_artifact(_artifact(), str(tmp_path))
        name = path.rsplit("/", 1)[-1]
        assert name.startswith("BENCH_serving.small.")
        assert name.endswith(".json")
        assert load_artifact(path)["scale"] == "small"

    def test_same_second_rerun_gets_serial_suffix(self, tmp_path):
        first = archive_artifact(_artifact(), str(tmp_path))
        second = archive_artifact(_artifact(p95=0.5), str(tmp_path))
        assert first != second
        assert load_artifact(first)["concurrent"]["p95_s"] == 0.020
        assert load_artifact(second)["concurrent"]["p95_s"] == 0.5

    def test_latest_artifact_prefers_newest_and_filters_scale(self, tmp_path):
        archive_artifact(_artifact(scale="small"), str(tmp_path))
        newest = archive_artifact(_artifact(scale="small"), str(tmp_path))
        other = archive_artifact(_artifact(scale="medium"), str(tmp_path))
        assert latest_artifact(str(tmp_path), scale="small") == newest
        assert latest_artifact(str(tmp_path), scale="medium") == other
        assert latest_artifact(str(tmp_path)) is not None

    def test_latest_artifact_empty_or_missing_dir(self, tmp_path):
        assert latest_artifact(str(tmp_path)) is None
        assert latest_artifact(str(tmp_path / "nowhere")) is None
