"""bench-trend: archive loading, sparklines, the median-baseline gate."""

import json
import os

from repro.bench.trend import gate_trend, load_trend, render_trend, sparkline


def _artifact(path, scale, p95_s, mtime):
    payload = {
        "scale": scale,
        "concurrent": {
            "p50_s": p95_s / 2,
            "p95_s": p95_s,
            "p99_s": p95_s * 1.2,
            "hit_rate": 0.9,
        },
    }
    path.write_text(json.dumps(payload))
    os.utime(path, (mtime, mtime))


class TestLoadTrend:
    def test_groups_by_scale_ordered_by_mtime(self, tmp_path):
        _artifact(tmp_path / "BENCH_serving.small.b.json", "small", 0.02, 200)
        _artifact(tmp_path / "BENCH_serving.small.a.json", "small", 0.01, 100)
        _artifact(tmp_path / "BENCH_serving.x100.c.json", "x100", 0.05, 150)
        by_scale = load_trend(str(tmp_path))
        assert sorted(by_scale) == ["small", "x100"]
        # oldest first, by mtime — not by file name
        assert [e["file"] for e in by_scale["small"]] == [
            "BENCH_serving.small.a.json",
            "BENCH_serving.small.b.json",
        ]
        assert by_scale["small"][0]["p95_s"] == 0.01

    def test_skips_unreadable_and_shapeless_files(self, tmp_path):
        (tmp_path / "BENCH_serving.small.bad.json").write_text("{not json")
        (tmp_path / "BENCH_serving.small.thin.json").write_text("{}")
        _artifact(tmp_path / "BENCH_serving.small.ok.json", "small", 0.01, 100)
        (tmp_path / "unrelated.json").write_text("{}")
        by_scale = load_trend(str(tmp_path))
        assert [e["file"] for e in by_scale["small"]] == [
            "BENCH_serving.small.ok.json"
        ]

    def test_missing_directory_is_empty(self, tmp_path):
        assert load_trend(str(tmp_path / "nope")) == {}

    def test_legacy_artifacts_load_with_a_note(self, tmp_path):
        # pre-sharding artifacts (no "shards"/"shard_counters") still
        # contribute to the trend, flagged via the notes channel
        _artifact(tmp_path / "BENCH_serving.small.old.json", "small", 0.01, 100)
        notes: list[str] = []
        by_scale = load_trend(str(tmp_path), notes=notes)
        assert [e["file"] for e in by_scale["small"]] == [
            "BENCH_serving.small.old.json"
        ]
        assert by_scale["small"][0]["shards"] == 1
        assert by_scale["small"][0]["resident_bytes"] == 0
        assert len(notes) == 2
        assert "predates shard-aware" in notes[0]
        assert "predates memory accounting" in notes[1]

    def test_memory_aware_artifacts_carry_resident_bytes(self, tmp_path):
        path = tmp_path / "BENCH_serving.small.new.json"
        _artifact(path, "small", 0.01, 100)
        payload = json.loads(path.read_text())
        payload["shards"] = 2
        payload["shard_counters"] = {}
        payload["memory"] = {
            "budget_bytes": 0,
            "total_resident_bytes": 123_456,
            "stores": {},
        }
        path.write_text(json.dumps(payload))
        os.utime(path, (100, 100))
        notes: list[str] = []
        by_scale = load_trend(str(tmp_path), notes=notes)
        assert by_scale["small"][0]["resident_bytes"] == 123_456
        assert notes == []

    def test_skipped_files_are_noted(self, tmp_path):
        (tmp_path / "BENCH_serving.small.bad.json").write_text("{not json")
        notes: list[str] = []
        assert load_trend(str(tmp_path), notes=notes) == {}
        assert len(notes) == 1
        assert notes[0].startswith("skipped BENCH_serving.small.bad.json")


class TestSparkline:
    def test_ramps_low_to_high(self):
        line = sparkline([1.0, 2.0, 3.0, 4.0])
        assert len(line) == 4
        assert line[0] == "▁"
        assert line[-1] == "█"

    def test_flat_series_renders_flat(self):
        assert sparkline([2.0, 2.0, 2.0]) == "▁▁▁"

    def test_width_keeps_the_most_recent_tail(self):
        assert sparkline([9.0, 1.0, 1.0], width=2) == "▁▁"

    def test_empty(self):
        assert sparkline([]) == ""


def _entries(*p95s):
    return [{"p95_s": p} for p in p95s]


class TestGateTrend:
    def test_single_artifact_nothing_to_gate(self):
        line, failed = gate_trend(_entries(0.01), 1.5)
        assert not failed
        assert "fewer than 2" in line

    def test_sub_microsecond_baseline_not_gated(self):
        line, failed = gate_trend(_entries(1e-9, 1e-3), 1.5)
        assert not failed
        assert "below" in line and "floor" in line

    def test_within_limit_passes(self):
        line, failed = gate_trend(_entries(0.010, 0.012, 0.011), 1.5)
        assert not failed
        assert line.startswith("ok")

    def test_regression_beyond_limit_fails(self):
        # median of earlier runs is 10ms; newest is 3x that
        line, failed = gate_trend(_entries(0.010, 0.010, 0.030), 1.5)
        assert failed
        assert line.startswith("FAIL")

    def test_median_baseline_shrugs_off_one_noisy_run(self):
        # one historically-slow outlier must not inflate the baseline
        line, failed = gate_trend(_entries(0.010, 0.500, 0.010, 0.012), 1.5)
        assert not failed


class TestRenderTrend:
    def test_empty_archive(self):
        report, failed = render_trend({})
        assert report == "no archived artifacts found"
        assert not failed

    def test_renders_each_scale_with_verdict(self, tmp_path):
        _artifact(tmp_path / "BENCH_serving.small.a.json", "small", 0.010, 100)
        _artifact(tmp_path / "BENCH_serving.small.b.json", "small", 0.011, 200)
        report, failed = render_trend(load_trend(str(tmp_path)))
        assert not failed
        assert "[small] 2 archived runs" in report
        assert "p95 " in report
        assert "ok   trend:" in report

    def test_failure_in_any_scale_fails_the_report(self, tmp_path):
        _artifact(tmp_path / "BENCH_serving.small.a.json", "small", 0.010, 100)
        _artifact(tmp_path / "BENCH_serving.small.b.json", "small", 0.010, 150)
        _artifact(tmp_path / "BENCH_serving.small.c.json", "small", 0.100, 200)
        report, failed = render_trend(load_trend(str(tmp_path)))
        assert failed
        assert "FAIL trend:" in report
