"""Serving-mode harness runs: warm speedup and concurrent latency."""

import pytest

from repro.bench import (
    bench_settings,
    build_cube_engine,
    query1_for,
    query2_for,
    query3_for,
    run_concurrent,
    run_warm,
)

from .test_harness import TINY


@pytest.fixture(scope="module")
def engine():
    return build_cube_engine(TINY, bench_settings("small"))


class TestRunWarm:
    def test_warm_hits_beat_cold_by_5x(self, engine):
        # the acceptance bar: a result-cache hit skips the scan and the
        # simulated I/O entirely, so even at tiny scale the warm
        # replays must be >= 5x cheaper than the paper-protocol cold run
        report = run_warm(engine, query1_for(TINY), backend="array")
        assert report.hit_rate == 1.0
        assert report.speedup >= 5.0
        assert report.cold.sim_io_s > 0
        for warm in report.warm:
            assert warm.sim_io_s == 0.0
            assert warm.rows == report.cold.rows

    def test_repeats_respected(self, engine):
        report = run_warm(engine, query1_for(TINY), backend="array", repeats=5)
        assert len(report.warm) == 5


class TestRunConcurrent:
    def test_concurrent_rows_match_serial(self, engine):
        queries = [query1_for(TINY), query2_for(TINY), query3_for(TINY)]
        serial = [engine.query(q).rows for q in queries]
        report = run_concurrent(engine, queries, n_threads=4, rounds=2)
        assert report.n_threads == 4
        for per_thread in report.rows_by_thread:
            assert len(per_thread) == 2 * len(queries)
            for index, rows in per_thread:
                assert rows == serial[index]

    def test_latencies_and_hit_rate(self, engine):
        queries = [query1_for(TINY)]
        report = run_concurrent(engine, queries, n_threads=4, rounds=3)
        assert len(report.latencies_s) == 4 * 3
        assert 0.0 < report.hit_rate <= 1.0
        assert report.p50_s <= report.p95_s
        assert report.stats["serve.admitted"] == 12
