"""Smoke tests: every example script runs cleanly at small scale."""

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "examples")
EXAMPLES = sorted(
    f for f in os.listdir(EXAMPLES_DIR) if f.endswith(".py")
)


def test_expected_examples_present():
    assert "quickstart.py" in EXAMPLES
    assert len(EXAMPLES) >= 3


@pytest.mark.parametrize("script", EXAMPLES)
def test_example_runs(script):
    env = dict(os.environ, REPRO_SCALE="small")
    completed = subprocess.run(
        [sys.executable, os.path.join(EXAMPLES_DIR, script)],
        capture_output=True,
        text=True,
        timeout=300,
        env=env,
    )
    assert completed.returncode == 0, completed.stderr[-2000:]
    assert completed.stdout.strip(), f"{script} produced no output"
