#!/usr/bin/env python
"""Query 2 in miniature: the array/bitmap selectivity crossover (§5.6).

Builds one synthetic cube (paper schema: fact(d0..d3, volume) with
hX1/hX2 hierarchies), then sweeps the per-dimension fanout so the
star-join selectivity S = s⁴ falls from 0.0625 to 0.0001, running the
selection query through both the §4.2 array algorithm and the §4.5
bitmap + fact-file algorithm.  Prints the cost of each and what the
planner would have picked.

Run:  python examples/selectivity_sweep.py          (small, seconds)
      REPRO_SCALE=medium python examples/...        (paper-shaped)
"""

from repro.bench import bench_settings, build_cube_engine, query2_for, run_cold
from repro.data import selectivity_configs

settings = bench_settings(None)
print(
    f"scale={settings.scale}  page={settings.page_size}B  "
    f"pool={settings.pool_bytes // 1024}KiB\n"
)
print(
    f"{'fanout':>6} {'S':>9} {'array cost':>11} {'bitmap cost':>12} "
    f"{'winner':>7} {'planner':>8}"
)

configs = selectivity_configs(settings.scale, fourth_dim="small")
for config in configs:
    engine = build_cube_engine(config, settings)
    query = query2_for(config)
    array = run_cold(engine, query, "array")
    bitmap = run_cold(engine, query, "bitmap")
    planned = engine.query(query, backend="auto")
    selectivity = (1 / config.fanout1) ** 4
    winner = "array" if array.cost_s < bitmap.cost_s else "bitmap"
    print(
        f"{config.fanout1:>6} {selectivity:>9.5f} {array.cost_s:>10.3f}s "
        f"{bitmap.cost_s:>11.3f}s {winner:>7} {planned.backend:>8}"
    )
    assert array.rows == bitmap.rows, "backends must agree"

print(
    "\npaper expectation: the array wins at high selectivity; the bitmap\n"
    "+ fact-file algorithm takes over once S drops below ~0.00024 —\n"
    "at S = 0.0001 the bitmap fetches ~dozens of tuples while the array\n"
    "still fetches every candidate chunk."
)
