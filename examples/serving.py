#!/usr/bin/env python
"""Serving: concurrent clients, result/chunk caches, write invalidation.

The engine core is single-threaded by design; ``repro.serve`` wraps it
for concurrent traffic.  This example stands a `QueryService` over a
small synthetic cube and shows the three serving behaviours: repeated
queries answered from the result cache, a write invalidating exactly
the changed cube's entries, and eight client threads sharing one
service without ever observing a stale row.

Run:  python examples/serving.py
"""

from concurrent.futures import ThreadPoolExecutor

from repro import ConsolidationQuery, QueryService, ServiceConfig
from repro.bench import bench_settings, build_cube_engine
from repro.data import SyntheticCubeConfig

config = SyntheticCubeConfig(
    name="traffic",
    dim_sizes=(6, 6, 10),
    n_valid=180,
    chunk_shape=(3, 3, 5),
    fanout1=3,
    seed=2024,
)
engine = build_cube_engine(config, bench_settings("small"))

query = (
    ConsolidationQuery.builder("traffic")
    .group_by("dim0", "h01")
    .group_by("dim1", "h11")
    .where_in("dim2", "h21", "AA1", "AA2")
    .build()
)

# -- 1. repeated queries hit the result cache -------------------------------

service = QueryService(engine, ServiceConfig(max_workers=4, max_in_flight=16))
cold = service.execute(query)
warm = service.execute(query)
print(f"cold miss : backend={cold.backend}  cost={cold.cost_s * 1e3:.2f} ms")
print(
    f"warm hit  : cost={warm.cost_s * 1e3:.4f} ms  "
    f"(result_cache_hit={warm.stats['result_cache_hit']:.0f}, no engine work)"
)

# -- 2. a write bumps the generation and drops the cached entry -------------

generation = engine.cube_generation("traffic")
service.append_facts("traffic", [(0, 0, 0, 500)])
recomputed = service.execute(query)
print(
    f"\nafter write: generation {generation} -> "
    f"{engine.cube_generation('traffic')}, recomputed fresh "
    f"(hit={'result_cache_hit' in recomputed.stats})"
)

# -- 3. eight concurrent clients share one service --------------------------

def client(n):
    return [service.execute(query).rows for _ in range(5)]

with ThreadPoolExecutor(max_workers=8) as pool:
    per_client = list(pool.map(client, range(8)))

reference = service.execute(query).rows
assert all(rows == reference for answers in per_client for rows in answers)
stats = service.stats()
service.close()

hits = stats["result_cache.hits"]
lookups = hits + stats["result_cache.misses"]
print(
    f"\n8 clients x 5 queries: every answer identical to serial; "
    f"hit rate {hits / lookups:.0%}"
)
print(
    f"chunk cache: {stats.get('chunk_cache.hits', 0):.0f} hits / "
    f"{stats.get('chunk_cache.misses', 0):.0f} misses shared across threads"
)
