#!/usr/bin/env python
"""Hierarchy roll-ups on the OLAP Array ADT (§3.4's IndexToIndex arrays).

Uses the paper's retail model: stores roll up store → city → state and
products roll up product → type.  Shows

1. a consolidation to (city, type) materialized as a *new* persisted
   OLAP array (the paper: "the result of a consolidation operation on
   an instance of the OLAP Array ADT is another instance"),
2. a second consolidation over that result array rolling city up to a
   coarser grouping — multi-step refinement over hierarchies,
3. the same answers straight from the relational Starjoin, as a check,
4. a selection ("West region only") through the §4.2 algorithm.

Run:  python examples/retail_rollup.py
"""

import random

from repro import (
    ConsolidationQuery,
    ConsolidationSpec,
    CubeSchema,
    DimensionDef,
    OlapEngine,
    consolidate,
)

rng = random.Random(1998)

# -- model: 12 stores in 6 cities in 3 states; 20 products in 4 types ------

cities = {
    "Madison": "WI", "Milwaukee": "WI",
    "Chicago": "IL", "Springfield": "IL",
    "San Diego": "CA", "Fresno": "CA",
}
regions = {"WI": "Midwest", "IL": "Midwest", "CA": "West"}
store_rows = []
for sid in range(12):
    city = list(cities)[sid % 6]
    state = cities[city]
    store_rows.append((sid, city, state, regions[state]))

types = ["hardware", "clothing", "grocery", "toys"]
product_rows = [(pid, f"product-{pid}", types[pid % 4]) for pid in range(20)]
time_rows = [(tid, 1 + tid % 12, 1 + (tid % 12) // 3) for tid in range(24)]

schema = CubeSchema(
    name="retail",
    dimensions=(
        DimensionDef("product", key="pid", levels=(("pname", "str:16"), ("type", "str:12"))),
        DimensionDef("store", key="sid", levels=(("city", "str:16"), ("state", "str:4"), ("region", "str:8"))),
        DimensionDef("time", key="tid", levels=(("month", "int32"), ("quarter", "int32"))),
    ),
)

facts = [
    (pid, sid, tid, rng.randint(1, 50))
    for pid in range(20)
    for sid in range(12)
    for tid in range(24)
    if rng.random() < 0.15  # a sparse cube, as real sales data is
]

engine = OlapEngine()
engine.load_cube(
    schema,
    dimension_rows={"product": product_rows, "store": store_rows, "time": time_rows},
    fact_rows=facts,
)
print(f"loaded {len(facts)} fact tuples "
      f"({engine.cube('retail').array.density:.1%} dense)\n")

# -- 1. consolidate to (type, city), materialized as a new array -----------

array = engine.cube("retail").array
step1 = consolidate(
    array,
    [
        ConsolidationSpec.level("type"),
        ConsolidationSpec.level("city"),
        ConsolidationSpec.drop(),  # aggregate time away
    ],
    materialize_as="retail.by_type_city",
)
print(f"step 1: {len(step1.rows)} (type, city) groups; result array "
      f"shape {step1.result_array.geometry.shape}")

# -- 2. roll the result up again: city -> total per type --------------------

step2 = consolidate(
    step1.result_array,
    [ConsolidationSpec.key(), ConsolidationSpec.drop()],
)
print("step 2: volume per product type (rolled up from the result array):")
for type_name, volume in step2.rows:
    print(f"    {type_name:<10} {int(volume)}")

# -- 3. cross-check against the relational Starjoin -------------------------

check = engine.query(
    ConsolidationQuery.build("retail", group_by={"product": "type"}),
    backend="starjoin",
)
assert [(t, int(v)) for t, v in step2.rows] == [
    (t, int(v)) for t, v in check.rows
], "array roll-up must equal the relational answer"
print("    (matches the Starjoin operator exactly)\n")

# -- 4. a selection: West-region clothing sales by month --------------------

west = engine.query(
    ConsolidationQuery.builder("retail")
    .group_by("time", "month")
    .where_in("store", "region", "West")
    .where_in("product", "type", "clothing")
    .build(),
    backend="array",
)
print("West-region clothing volume by month (§4.2 algorithm):")
for month, volume in west.rows:
    print(f"    month {month:>2}: {int(volume)}")
