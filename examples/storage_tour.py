#!/usr/bin/env python
"""A tour of the storage substrate: footprints, codecs, recovery.

1. §3.2/§3.3 — build the same sparse cube as a fact file, a dense
   array, an LZW-compressed array and a chunk-offset array, and compare
   real on-disk footprints (every byte goes through the page layer).
2. §4.4 — fact file vs slotted-page heap file overhead.
3. The SHORE-like substrate itself: write through the in-memory WAL,
   simulate a crash, and recover.
4. Durable recovery: a file-backed WAL + checkpoint image survive a
   real process death, and a seeded fault plan tears the final WAL
   record mid-fsync to show the torn tail being detected and discarded.

Run:  python examples/storage_tour.py
"""

import os
import tempfile

from repro import Database, Schema
from repro.bench import bench_settings, build_cube_engine
from repro.data import dataset2
from repro.errors import SimulatedCrash
from repro.storage import (
    BufferPool,
    FaultPlan,
    FaultyDisk,
    FaultyWAL,
    SimulatedDisk,
    WriteAheadLog,
    fault_plan,
    recover,
)

settings = bench_settings(None)
config = dataset2(settings.scale, densities=(0.05,))[0]
print(
    f"cube: {config.dim_sizes}, {config.n_valid} valid cells "
    f"({config.density:.1%} dense), page={settings.page_size}B\n"
)

# -- 1. codec comparison ----------------------------------------------------

print("on-disk bytes for the same cube (paper §3.2/§3.3):")
fact_bytes = None
for codec in ("dense", "lzw-dense", "chunk-offset"):
    engine = build_cube_engine(config, settings, codec=codec)
    report = engine.storage_report(config.name)
    fact_bytes = report["fact_file"]
    print(f"    array[{codec:<12}] chunks: {report['array_chunks']:>9,} B")
print(f"    relational fact file:      {fact_bytes:>9,} B")
print(
    "    -> chunk-offset beats the fact file even at 5% density;\n"
    "       the uncompressed array only wins above density p/(n+p).\n"
)

# -- 2. fact file vs heap file ------------------------------------------------

schema = Schema(
    [("d0", "int32"), ("d1", "int32"), ("volume", "int32")]
)
rows = [(i % 30, i % 40, i) for i in range(5000)]
with Database(page_size=1024, pool_bytes=1024 * 1024) as db:
    fact = db.create_fact_table("flat", schema)
    fact.append_many(rows)
    heap = db.create_heap_table("heap", schema)
    heap.insert_many(rows)
    print("fact file vs slotted-page heap file for 5000 12-byte tuples (§4.4):")
    print(f"    fact file: {fact.size_bytes():>8,} B  (no per-record overhead)")
    print(f"    heap file: {heap.size_bytes():>8,} B  (slot entries + headers)")
    print(f"    positional access: fact.get(4999) = {fact.get(4999)}\n")

# -- 3. WAL + crash recovery ---------------------------------------------------

wal = WriteAheadLog()
disk = SimulatedDisk(page_size=512)
pool = BufferPool(disk, capacity_bytes=64 * 512, wal=wal)

page = pool.new_page()
buffer = pool.get(page)
buffer[:13] = b"committed-row"
pool.mark_dirty(page)
pool.commit()  # after-image reaches the log

page2 = pool.new_page()
pool.get(page2)[:15] = b"uncommitted-row"
pool.mark_dirty(page2)

pool.crash()  # every frame lost, nothing flushed
replayed = recover(disk, wal)
print("WAL crash recovery:")
print(f"    replayed {replayed} committed page(s)")
print(f"    page {page}: {bytes(disk.read_page(page)[:13])!r}  (recovered)")
print(f"    page {page2}: {bytes(disk.read_page(page2)[:15])!r}  (lost, as it must be)\n")

# -- 4. durable recovery + fault injection -------------------------------------

with tempfile.TemporaryDirectory(prefix="repro-tour-") as workdir:
    waldir = os.path.join(workdir, "wal")

    # a database whose WAL segments live on the real filesystem,
    # on fault-injectable disk + log wrappers
    db = Database(
        page_size=512, disk=FaultyDisk(page_size=512), wal=FaultyWAL(waldir)
    )
    table = db.create_heap_table("t", Schema([("k", "int32")]))
    table.insert_many([(i,) for i in range(5)])
    image = db.checkpoint()  # volume image saved, log truncated
    table.insert_many([(i,) for i in range(5, 8)])
    db.commit()  # durable in the log, never flushed to the image

    # a seeded plan tears the final record of the next WAL fsync
    table.insert_many([(99,)])
    try:
        with fault_plan(FaultPlan(seed=7, crash_at="wal.torn_sync")):
            db.commit()
    except SimulatedCrash as crash:
        print(f"durable recovery ({crash}):")
    del db  # the "process" dies without close()

    reopened = Database.open(image, wal_dir=waldir)
    survivors = [row[0] for row in reopened.table("t").scan()]
    print(f"    torn tail detected: {reopened.wal.torn_tail_detected}")
    print(f"    rows after replay:  {survivors}")
    print("    -> checkpoint + committed log records survive; the torn")
    print("       final commit is discarded, never replayed")
    reopened.close()
