#!/usr/bin/env python
"""Beyond the paper's evaluation: CUBE, statistics, partitioned scans.

Three things the paper points at but does not evaluate, all implemented
on the OLAP Array ADT:

1. the **CUBE operator** — all 2ⁿ group-bys in one chunk scan (the
   [ZDN97] companion algorithm);
2. **statistical ADT functions** — variance and correlation computed
   inside the "server" (§3.5's promise);
3. **partitioned consolidation** — the consolidation split over chunk
   ranges and merged exactly (§6's parallelization direction).

Run:  python examples/cube_and_stats.py
"""

import random

from repro.core import (
    ConsolidationSpec,
    compute_cube,
    consolidate,
    consolidate_partitioned,
)
from repro.core.builder import DimensionData, build_olap_array
from repro.storage import BufferPool, FileManager, SimulatedDisk
from repro.util.stats import Counters

rng = random.Random(42)

# -- a 3-D cube: product type x region x quarter ----------------------------

disk = SimulatedDisk(page_size=2048)
fm = FileManager(BufferPool(disk, capacity_bytes=2 * 1024 * 1024))

dimensions = [
    DimensionData(
        "product",
        list(range(30)),
        {"type": [f"type-{p % 5}" for p in range(30)]},
    ),
    DimensionData(
        "store",
        list(range(20)),
        {"region": [("East", "West", "South")[s % 3] for s in range(20)]},
    ),
    DimensionData(
        "time",
        list(range(12)),
        {"quarter": [f"Q{t // 3 + 1}" for t in range(12)]},
    ),
]

# two measures per cell: units sold and revenue (correlated, of course)
facts = []
for p in range(30):
    for s in range(20):
        for t in range(12):
            if rng.random() < 0.25:
                units = rng.randint(1, 40)
                revenue = units * (10 + p % 5) + rng.randint(-5, 5)
                facts.append((p, s, t, units, revenue))

array = build_olap_array(
    fm,
    "sales",
    dimensions,
    facts,
    chunk_shape=(10, 10, 6),
    measure_names=["units", "revenue"],
)
print(f"cube: {array.geometry.shape}, {array.n_valid} valid cells "
      f"({array.density:.1%} dense)\n")

# -- 1. CUBE: every group-by in one pass -------------------------------------

specs = [
    ConsolidationSpec.level("type"),
    ConsolidationSpec.level("region"),
    ConsolidationSpec.level("quarter"),
]
counters = Counters()
cube = compute_cube(array, specs, counters=counters)
print(f"CUBE computed {int(counters.get('group_bys_computed'))} group-bys "
      f"in one scan of {int(counters.get('cells_scanned'))} cells:")
for subset in ((), ("store",), ("product", "time")):
    rows = cube[subset]
    label = " x ".join(subset) if subset else "grand total"
    print(f"    {label:<16} -> {len(rows)} row(s); first: {rows[0]}")
print()

# -- 2. statistics inside the ADT ---------------------------------------------

stats = array.measure_stats()
print("measure statistics (whole cube):")
for measure, values in stats.items():
    print(f"    {measure:<8} mean={values['mean']:8.2f}  var={values['var']:10.2f}")
corr = array.correlation("units", "revenue")
print(f"    corr(units, revenue) = {corr:.4f}  (revenue tracks units)\n")

east_only = [None, (0, 0), None]  # store index 0 is an East store
print(f"corr within one store slab: "
      f"{array.correlation('units', 'revenue', ranges=east_only):.4f}\n")

# -- 3. variance by group, and partitioned == direct --------------------------

by_region = consolidate(
    array,
    [ConsolidationSpec.drop(), ConsolidationSpec.level("region"),
     ConsolidationSpec.drop()],
    aggregate="var",
)
print("variance per region (position-based aggregation, both measures):")
for region, var_units, var_revenue in by_region.rows:
    print(f"    {region:<6} var(units)={var_units:8.2f}  "
          f"var(revenue)={var_revenue:10.2f}")

direct = consolidate(array, specs)
partitioned = consolidate_partitioned(array, specs, n_partitions=4)
assert partitioned.rows == direct.rows
print(f"\npartitioned consolidation over 4 chunk ranges reproduced the "
      f"direct result exactly ({len(direct.rows)} rows).")
