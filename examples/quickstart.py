#!/usr/bin/env python
"""Quickstart: define a cube, load it, and run a consolidation.

Builds the paper's running example — retail sales over product, store
and time dimensions — into both physical designs (the relational star
schema and the OLAP Array ADT) and runs the §4.1 consolidation through
each backend, showing that they agree and what each one cost.

Run:  python examples/quickstart.py
"""

from repro import (
    ConsolidationQuery,
    CubeSchema,
    DimensionDef,
    MeasureDef,
    OlapEngine,
)

# -- 1. The logical model (§2): dimensions with hierarchies + a measure ----

schema = CubeSchema(
    name="sales",
    dimensions=(
        DimensionDef(
            "product",
            key="pid",
            levels=(("pname", "str:16"), ("type", "str:12")),
        ),
        DimensionDef(
            "store",
            key="sid",
            levels=(("city", "str:16"), ("state", "str:8")),
        ),
        DimensionDef("time", key="tid", levels=(("month", "int32"),)),
    ),
    measures=(MeasureDef("volume"),),
)

# -- 2. Dimension and fact data -------------------------------------------

products = [
    (0, "snow shovel", "hardware"),
    (1, "sun hat", "clothing"),
    (2, "beach towel", "clothing"),
    (3, "ice scraper", "hardware"),
]
stores = [
    (0, "Madison", "WI"),
    (1, "Milwaukee", "WI"),
    (2, "San Diego", "CA"),
]
months = [(t, t + 1) for t in range(6)]  # tid -> month number

# A store in Madison is unlikely to sell beach clothing in January (§2):
# the cube is sparse, so only some (product, store, time) cells exist.
facts = [
    (0, 0, 0, 35),  # snow shovels, Madison, January
    (0, 1, 0, 28),
    (3, 0, 0, 50),
    (3, 1, 1, 22),
    (1, 2, 0, 40),  # sun hats sell in San Diego year-round
    (1, 2, 3, 44),
    (2, 2, 3, 61),
    (1, 0, 5, 12),  # ... and in Madison only by June
    (2, 1, 5, 9),
]

# -- 3. Load both physical designs -----------------------------------------

engine = OlapEngine()  # defaults: 8 KiB pages, 16 MB buffer pool
engine.load_cube(
    schema,
    dimension_rows={"product": products, "store": stores, "time": months},
    fact_rows=facts,
)

# -- 4. A consolidation: sales volume by product type and store state ------

query = ConsolidationQuery.build(
    "sales", group_by={"product": "type", "store": "state"}
)

print("sum(volume) GROUP BY product.type, store.state\n")
for backend in ("array", "starjoin", "leftdeep"):
    result = engine.query(query, backend=backend)
    print(f"[{backend:8s}]  cost={result.cost_s * 1000:7.2f} ms  rows:")
    for row in result.rows:
        print(f"    {row[0]:<10} {row[1]:<4} {row[2]}")
    print()

# -- 5. The same query as SQL text -----------------------------------------

sql = """
    select sum(volume), product.type, store.state
    from sales, product, store
    where sales.pid = product.pid and sales.sid = store.sid
    group by type, state
"""
result = engine.sql("sales", sql, backend="auto")
print(f"[sql->auto] planner chose {result.backend!r}; {len(result)} rows")

# -- 6. Point lookups and slices on the array ADT ---------------------------

array = engine.cube("sales").array
cell = array.get_cell((1, 2, 0))  # sun hats, San Diego, January
print(f"\narray.get_cell(sun hat, San Diego, Jan) = {cell[0]}")
print(f"array density: {array.density:.2%} of "
      f"{array.geometry.logical_cells} logical cells")
print("slice time=tid 0:")
for keys, measures in array.slice_dim("time", 0):
    print(f"    {keys} -> {int(measures[0])}")
